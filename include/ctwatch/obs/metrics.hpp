// ctwatch::obs — metrics registry.
//
// Monotonic counters, gauges, and fixed-bucket histograms with quantile
// readout, held in a process-global registry. Handles are pre-registered
// once (name lookup under a mutex) and then shared; after that a hot-path
// event costs one relaxed atomic RMW. The registry renders as a human
// table and as JSON — the machine-readable source of truth the bench
// binaries snapshot next to their artifact output.
//
// Defining CTWATCH_OBS_DISABLED compiles the whole subsystem down to
// empty inline stubs with the identical API: call sites need no #ifdefs
// and the optimizer erases them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ctwatch/obs/histogram.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

namespace ctwatch::obs {

/// logfmt/Prometheus-safe metric name: [a-zA-Z_] first, then
/// [a-zA-Z0-9_.], non-empty. Dots are the ctwatch namespace separator
/// (rendered as '_' in Prometheus exposition). Debug builds assert this
/// on every registry registration.
[[nodiscard]] bool is_valid_metric_name(std::string_view name);

/// Monotonically increasing event count. Thread-safe; increments are
/// relaxed — totals are exact, ordering against other metrics is not.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (current simulated day, queue depth, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper edges plus an
/// implicit +inf overflow bucket. Observation is one bucket search plus
/// three relaxed atomics; quantiles are reconstructed from bucket counts
/// with linear interpolation inside the hit bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  /// q is clamped into [0,1] (NaN reads as 0). Returns the interpolated
  /// value, or 0 when empty; the result is always clamped to the finite
  /// bound range — mass in the overflow bucket reports the largest finite
  /// bound, never a value extrapolated past it.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;                       // sorted upper edges
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` edges starting at `start`, each `factor` times the previous —
/// the usual latency-histogram layout.
std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

/// Times a scope and records microseconds into a histogram (fixed-bucket
/// Histogram or LogLinearHistogram — anything with observe(double)).
/// Compiles to nothing when the subsystem is disabled (no clock reads).
template <typename H = Histogram>
class ScopedTimer {
 public:
  explicit ScopedTimer(H& hist) : hist_(&hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  H* hist_;
  std::chrono::steady_clock::time_point start_;
};

template <typename H>
ScopedTimer(H&) -> ScopedTimer<H>;

/// Name -> metric. Lookup is mutexed; returned references live for the
/// process, so modules resolve their handles once in a local static.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Re-requesting an existing histogram ignores `bounds`. An empty
  /// `bounds` gets the default microsecond latency layout.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});
  /// Auto-ranging log-linear histogram — the hot-path latency type: O(1)
  /// record, mergeable, no bounds to choose. Shares the "histograms"
  /// section of every rendering with the fixed-bucket kind (names must
  /// not collide across the two).
  LogLinearHistogram& latency(const std::string& name);

  /// Human-readable table, one metric per line, sorted by name.
  [[nodiscard]] std::string render_text() const;
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,mean,
  /// p50,p90,p99}}} with names sorted.
  [[nodiscard]] std::string render_json() const;
  /// Prometheus text exposition (version 0.0.4): names with dots mapped
  /// to underscores and prefixed "ctwatch_", histograms rendered as
  /// summaries (quantile-labelled samples plus _sum/_count). What the
  /// ExpoServer serves at /metrics.
  [[nodiscard]] std::string render_prometheus() const;
  /// Zeroes every metric; handles stay valid. Intended for tests.
  void reset();

 private:
  struct DistRow;  // one rendered distribution, either histogram type
  /// Merged, name-sorted snapshot of histograms_ + latencies_. mu_ held.
  [[nodiscard]] std::vector<DistRow> distribution_rows() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LogLinearHistogram>> latencies_;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED — same API, empty inline bodies.

namespace ctwatch::obs {

inline bool is_valid_metric_name(std::string_view) { return true; }

class Counter {
 public:
  void inc(std::uint64_t = 1) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::int64_t) {}
  void add(std::int64_t) {}
  [[nodiscard]] std::int64_t value() const { return 0; }
  void reset() {}
};

class Histogram {
 public:
  void observe(double) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double mean() const { return 0.0; }
  [[nodiscard]] double quantile(double) const { return 0.0; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const { return {}; }
  void reset() {}
};

inline std::vector<double> exponential_bounds(double, double, std::size_t) { return {}; }

template <typename H = Histogram>
class ScopedTimer {
 public:
  explicit ScopedTimer(H&) {}
};

template <typename H>
ScopedTimer(H&) -> ScopedTimer<H>;

class Registry {
 public:
  static Registry& global() {
    static Registry registry;
    return registry;
  }
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<double> = {}) { return histogram_; }
  LogLinearHistogram& latency(const std::string&) { return latency_; }
  [[nodiscard]] std::string render_text() const { return ""; }
  [[nodiscard]] std::string render_json() const {
    return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
  [[nodiscard]] std::string render_prometheus() const { return ""; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
  LogLinearHistogram latency_;
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
