// ctwatch::obs — ExpoServer: live metrics over HTTP.
//
// A deliberately small exposition endpoint answering
//
//   GET /metrics  Prometheus text exposition 0.0.4 (counters, gauges,
//                 and every histogram as a quantile-labelled summary)
//   GET /vars     the registry's JSON rendering
//   GET /trace    the most recent spans as JSON (id/parent/trace/thread)
//   GET /         "ctwatch obs" banner; /healthz for probes
//
// It exists so a running bench or service can be scraped while it works.
// Since the ctwatch::httpd front end landed, this is a thin facade over
// that shared event loop (one HTTP implementation in the tree): the
// header stays dependency-free via a pimpl, the implementation lives in
// src/httpd/expo.cpp, and binaries that use ExpoServer link ct_httpd.
//
// Thread-safety: handlers only read process-global state through the
// registry's and tracer's own locks; start()/stop() may be called from
// any single thread. Under CTWATCH_OBS_DISABLED the server compiles to a
// stub whose start() fails.
#pragma once

#include <cstdint>
#include <string>

#ifndef CTWATCH_OBS_DISABLED

#include <memory>

namespace ctwatch::obs {

class ExpoServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port; read it back with port() after start().
    std::uint16_t port = 0;
    /// Loopback by default: this is an operator endpoint, not a public one.
    std::string bind_address = "127.0.0.1";
  };

  ExpoServer();
  explicit ExpoServer(Options options);
  ~ExpoServer();

  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Binds, listens, and starts the loop thread. False if the socket
  /// could not be set up (port in use, bad address). Idempotent while
  /// running.
  bool start();

  /// Wakes the loop, closes every socket, joins the thread. Safe to call
  /// when not running.
  void stop();

  [[nodiscard]] bool running() const;

  /// Actual bound port (resolves Options::port == 0). 0 before start().
  [[nodiscard]] std::uint16_t port() const;

  /// Requests answered since start (any status). For tests.
  [[nodiscard]] std::uint64_t requests_served() const;

 private:
  struct Impl;  // wraps the shared httpd::Server (src/httpd/expo.cpp)
  std::unique_ptr<Impl> impl_;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

class ExpoServer {
 public:
  struct Options {
    std::uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
  };
  ExpoServer() = default;
  explicit ExpoServer(Options) {}
  bool start() { return false; }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
