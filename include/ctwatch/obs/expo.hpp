// ctwatch::obs — ExpoServer: live metrics over HTTP.
//
// A deliberately small exposition endpoint: one background thread runs a
// poll()-based non-blocking loop over a listening TCP socket and its
// accepted connections, answering
//
//   GET /metrics  Prometheus text exposition 0.0.4 (counters, gauges,
//                 and every histogram as a quantile-labelled summary)
//   GET /vars     the registry's JSON rendering
//   GET /trace    the most recent spans as JSON (id/parent/trace/thread)
//
// It exists so a running bench or service can be scraped while it works —
// and as the seed of the eventual ctwatch::httpd front end (ROADMAP item:
// the CT log HTTP API will grow out of this event loop). No threads per
// connection, no blocking I/O, no dependencies beyond POSIX sockets.
//
// Thread-safety: the loop thread only reads process-global state through
// the registry's and tracer's own locks; start()/stop() may be called
// from any single thread. Under CTWATCH_OBS_DISABLED (or non-POSIX), the
// server compiles to a stub whose start() fails.
#pragma once

#include <cstdint>
#include <string>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <thread>

namespace ctwatch::obs {

class ExpoServer {
 public:
  struct Options {
    /// 0 picks an ephemeral port; read it back with port() after start().
    std::uint16_t port = 0;
    /// Loopback by default: this is an operator endpoint, not a public one.
    std::string bind_address = "127.0.0.1";
  };

  ExpoServer() = default;
  explicit ExpoServer(Options options) : options_(std::move(options)) {}
  ~ExpoServer();

  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Binds, listens, and starts the loop thread. False if the socket
  /// could not be set up (port in use, bad address). Idempotent while
  /// running.
  bool start();

  /// Wakes the loop, closes every socket, joins the thread. Safe to call
  /// when not running.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual bound port (resolves Options::port == 0). 0 before start().
  [[nodiscard]] std::uint16_t port() const { return port_.load(std::memory_order_acquire); }

  /// Requests answered since start (any status). For tests.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  /// Builds the full HTTP response for one parsed request line.
  std::string respond(const std::string& method, const std::string& path, bool keep_alive);

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint16_t> port_{0};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: stop() pokes the poll loop
  std::thread thread_;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

class ExpoServer {
 public:
  struct Options {
    std::uint16_t port = 0;
    std::string bind_address = "127.0.0.1";
  };
  ExpoServer() = default;
  explicit ExpoServer(Options) {}
  bool start() { return false; }
  void stop() {}
  [[nodiscard]] bool running() const { return false; }
  [[nodiscard]] std::uint16_t port() const { return 0; }
  [[nodiscard]] std::uint64_t requests_served() const { return 0; }
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
