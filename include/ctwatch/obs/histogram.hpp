// ctwatch::obs — auto-ranging log-linear latency histogram.
//
// The fixed-bucket Histogram needs its bounds chosen up front, and two
// histograms with different bounds cannot be merged. This one can hold
// any non-negative value without configuration: buckets are log-linear —
// each power-of-two octave is split into kSubBuckets linear sub-buckets —
// so recording is O(1) (a frexp plus two shifts, no bucket search) and
// the relative quantile error is bounded by half a sub-bucket width:
//
//     |q_reported - q_true| / q_true  <=  1 / (2 * kSubBuckets)  ~ 1.6%
//
// Every instance has the same bucket layout, so histograms merge by
// bucket-count addition: per-thread or per-shard recorders collapse into
// one deterministic aggregate regardless of merge order (addition is
// commutative and associative on exact integer counts). That is what the
// par::ShardedAccumulator-style collapse and the /metrics exposition
// both rely on.
//
// Under CTWATCH_OBS_DISABLED the class collapses to inert inline stubs
// with the identical API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <cmath>

namespace ctwatch::obs {

class LogLinearHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave. 32 bounds the relative
  /// quantile error at 1/64.
  static constexpr std::size_t kSubBuckets = 32;
  /// Octaves covered: [1, 2^kOctaves) — for microsecond latencies that is
  /// one microsecond up to ~12.7 days. Larger values clamp into the top
  /// bucket, smaller (and negative / NaN) into the underflow bucket.
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kBucketCount = 2 + kOctaves * kSubBuckets;

  LogLinearHistogram() = default;
  LogLinearHistogram(const LogLinearHistogram&) = delete;
  LogLinearHistogram& operator=(const LogLinearHistogram&) = delete;

  /// O(1), lock-free: three relaxed atomic RMWs.
  void observe(double value) {
    buckets_[index_of(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  /// q outside [0,1] (or NaN) is clamped into [0,1]. Returns the midpoint
  /// of the bucket holding the rank — never a value interpolated past the
  /// recorded range: q=0 reports the lowest occupied bucket, q=1 the
  /// highest. Empty histogram reports 0.
  [[nodiscard]] double quantile(double q) const;

  /// Bucket-count addition; `other` may be concurrently written (its
  /// counts are read relaxed — the usual snapshot semantics).
  void merge_from(const LogLinearHistogram& other);

  void reset();

  /// The bucket index a value lands in (underflow = 0, top clamp =
  /// kBucketCount-1). Exposed for the error-bound tests.
  [[nodiscard]] static std::size_t index_of(double value) {
    if (!(value >= 1.0)) return 0;  // < 1, negative, NaN
    int exp = 0;
    const double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5, 1)
    const std::size_t octave = static_cast<std::size_t>(exp - 1);
    if (octave >= kOctaves) return kBucketCount - 1;
    std::size_t sub = static_cast<std::size_t>((frac * 2.0 - 1.0) * kSubBuckets);
    if (sub >= kSubBuckets) sub = kSubBuckets - 1;
    return 1 + octave * kSubBuckets + sub;
  }

  /// [lower, upper) value range of a bucket; bucket 0 is [0, 1), the top
  /// bucket's upper edge is 2^kOctaves.
  [[nodiscard]] static double bucket_lower(std::size_t index);
  [[nodiscard]] static double bucket_upper(std::size_t index);

  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

class LogLinearHistogram {
 public:
  static constexpr std::size_t kSubBuckets = 32;
  static constexpr std::size_t kOctaves = 40;
  static constexpr std::size_t kBucketCount = 2 + kOctaves * kSubBuckets;

  void observe(double) {}
  [[nodiscard]] std::uint64_t count() const { return 0; }
  [[nodiscard]] double sum() const { return 0.0; }
  [[nodiscard]] double mean() const { return 0.0; }
  [[nodiscard]] double quantile(double) const { return 0.0; }
  void merge_from(const LogLinearHistogram&) {}
  void reset() {}
  [[nodiscard]] static std::size_t index_of(double) { return 0; }
  [[nodiscard]] static double bucket_lower(std::size_t) { return 0.0; }
  [[nodiscard]] static double bucket_upper(std::size_t) { return 0.0; }
  [[nodiscard]] std::uint64_t bucket_count_at(std::size_t) const { return 0; }
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
