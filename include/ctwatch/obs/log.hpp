// ctwatch::obs — structured logger.
//
// level + component + message + key=value fields, rendered as one logfmt
// line. Off by default so test and bench stdout stays clean; enable with
// Logger::global().set_level(...) or the CTWATCH_LOG environment variable
// (trace|debug|info|warn|error). A per-(component,message) rate limit
// keeps per-event diagnostics from flooding when enabled.
//
// With CTWATCH_OBS_DISABLED defined everything collapses to empty inline
// stubs; field expressions are never evaluated into strings.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <functional>
#include <mutex>
#include <type_traits>
#include <unordered_map>

namespace ctwatch::obs {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

[[nodiscard]] const char* to_string(LogLevel level);
/// "debug" -> LogLevel::debug; unknown text -> LogLevel::off.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

/// One key=value pair. String values are quoted on render; numeric and
/// boolean values are not.
struct Field {
  std::string key;
  std::string value;
  bool quoted = true;

  Field(std::string_view k, std::string_view v) : key(k), value(v) {}
  Field(std::string_view k, const char* v) : key(k), value(v) {}
  Field(std::string_view k, const std::string& v) : key(k), value(v) {}
  Field(std::string_view k, bool v) : key(k), value(v ? "true" : "false"), quoted(false) {}
  Field(std::string_view k, double v) : key(k), value(format_double(v)), quoted(false) {}
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  Field(std::string_view k, T v) : key(k), value(std::to_string(v)), quoted(false) {}

 private:
  static std::string format_double(double v);
};

class Logger {
 public:
  static Logger& global();

  void set_level(LogLevel level) { level_.store(static_cast<int>(level), std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    const int configured = level_.load(std::memory_order_relaxed);
    return configured != static_cast<int>(LogLevel::off) && static_cast<int>(level) >= configured;
  }

  /// Replaces the output sink (default: one line to stderr). Pass nullptr
  /// to restore the default.
  void set_sink(std::function<void(const std::string&)> sink);
  /// At most `n` emitted records per (component, message) key; further
  /// records are counted as suppressed. 0 = unlimited (the default).
  void set_rate_limit(std::uint64_t n);

  void log(LogLevel level, std::string_view component, std::string_view message,
           std::initializer_list<Field> fields = {});

  [[nodiscard]] std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  /// Resets counters and rate-limit bookkeeping (tests).
  void reset_counters();

 private:
  Logger();  // reads CTWATCH_LOG

  std::atomic<int> level_{static_cast<int>(LogLevel::off)};
  std::atomic<std::uint64_t> rate_limit_{0};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> suppressed_{0};
  std::mutex mu_;
  std::function<void(const std::string&)> sink_;
  std::unordered_map<std::string, std::uint64_t> per_key_emits_;
};

inline void log_trace(std::string_view component, std::string_view message,
                      std::initializer_list<Field> fields = {}) {
  Logger::global().log(LogLevel::trace, component, message, fields);
}
inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<Field> fields = {}) {
  Logger::global().log(LogLevel::debug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<Field> fields = {}) {
  Logger::global().log(LogLevel::info, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<Field> fields = {}) {
  Logger::global().log(LogLevel::warn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<Field> fields = {}) {
  Logger::global().log(LogLevel::error, component, message, fields);
}

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

inline const char* to_string(LogLevel) { return "off"; }
inline LogLevel parse_log_level(std::string_view) { return LogLevel::off; }

struct Field {
  template <typename T>
  Field(std::string_view, T&&) {}
};

class Logger {
 public:
  static Logger& global() {
    static Logger logger;
    return logger;
  }
  void set_level(LogLevel) {}
  [[nodiscard]] LogLevel level() const { return LogLevel::off; }
  [[nodiscard]] bool enabled(LogLevel) const { return false; }
  template <typename Sink>
  void set_sink(Sink&&) {}
  void set_rate_limit(std::uint64_t) {}
  void log(LogLevel, std::string_view, std::string_view, std::initializer_list<Field> = {}) {}
  [[nodiscard]] std::uint64_t emitted() const { return 0; }
  [[nodiscard]] std::uint64_t suppressed() const { return 0; }
  void reset_counters() {}
};

inline void log_trace(std::string_view, std::string_view, std::initializer_list<Field> = {}) {}
inline void log_debug(std::string_view, std::string_view, std::initializer_list<Field> = {}) {}
inline void log_info(std::string_view, std::string_view, std::initializer_list<Field> = {}) {}
inline void log_warn(std::string_view, std::string_view, std::initializer_list<Field> = {}) {}
inline void log_error(std::string_view, std::string_view, std::initializer_list<Field> = {}) {}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
