// ctwatch::obs — tracing spans with causal cross-thread context.
//
// RAII scoped timers with parent/child nesting tracked per thread. The
// global Tracer is off by default (a Span then costs one relaxed load);
// when enabled — via the API or the CTWATCH_TRACE environment variable —
// finished spans are collected and exportable two ways:
//
//   * chrome_trace_json(): the Trace Event Format, loadable directly in
//     chrome://tracing or Perfetto. Spans whose parent finished on a
//     different thread additionally emit *flow events* (ph "s"/"f"), so
//     work-steals and batch hand-offs render as arrows; and
//   * aggregate_table(): per-span-name count / total / mean / max, the
//     quick "where did the time go" view.
//
// Causality across threads is explicit: every span belongs to a trace
// (the root span mints the trace id) and `current_context()` snapshots
// this thread's (trace id, innermost span id). A captured TraceContext
// restored on another thread via ContextScope makes spans opened there
// children of the capturing span — that is how par::TaskPool carries a
// submission's trace into its workers and logsvc threads one submission
// through submit -> sequencer -> fanout as a single span tree.
//
// Span names should be low-cardinality string literals ("sim.timeline.run");
// variable data belongs in metrics or log fields, not span names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <mutex>

namespace ctwatch::obs {

/// One finished span. Timestamps are microseconds since the first use of
/// the tracer in this process (steady clock).
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t thread_id = 0;  ///< small per-process ordinal, 1-based
  std::uint64_t trace_id = 0;   ///< 1-based; every span in one causal tree shares it
  std::uint32_t id = 0;         ///< 1-based; 0 is "no span"
  std::uint32_t parent_id = 0;  ///< 0 for roots
};

/// A point in a trace that children elsewhere can attach to: the trace id
/// plus the span that will become their parent. Copyable, trivially
/// small — capture it into a task, restore it with ContextScope.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t parent_span = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

/// Snapshot of the calling thread's trace position ({0,0} when no span is
/// open or tracing is disabled).
[[nodiscard]] TraceContext current_context();

/// This thread's small 1-based ordinal — the `tid` spans and flight
/// events are stamped with. Assigned on first use, stable for the
/// thread's lifetime.
[[nodiscard]] std::uint64_t this_thread_ordinal();

/// Restores a captured TraceContext on this thread for the scope's
/// lifetime: spans opened inside become children of ctx.parent_span in
/// ctx.trace_id. Saves and restores whatever context the thread had.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx);
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  std::uint64_t saved_trace_ = 0;
  std::uint32_t saved_span_ = 0;
};

/// A cross-thread parent->child edge derived from a span set: the child
/// started on a different thread than its parent finished on. These are
/// exactly the edges chrome_trace_json renders as flow arrows.
struct FlowLink {
  std::uint32_t parent_id = 0;
  std::uint32_t child_id = 0;
  std::uint64_t trace_id = 0;
};

/// Cross-thread links in `spans` (parent must be present in the set),
/// ordered by child id. Unit-testable without parsing the JSON export.
[[nodiscard]] std::vector<FlowLink> flow_links(const std::vector<SpanRecord>& spans);

class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(SpanRecord record);
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  /// The most recent `limit` finished spans (all when limit == 0).
  [[nodiscard]] std::vector<SpanRecord> recent_spans(std::size_t limit) const;
  [[nodiscard]] std::string chrome_trace_json() const;
  [[nodiscard]] std::string aggregate_table() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;
  void clear();

  // Internal plumbing for Span; not part of the public surface.
  std::uint32_t next_span_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t next_trace_id() { return next_trace_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t now_us() const;

 private:
  Tracer();  // reads CTWATCH_TRACE

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_id_{1};
  std::atomic<std::uint64_t> next_trace_{1};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII span: opens on construction, records on destruction. Nesting is
/// derived from a thread-local stack of live span ids; the trace id is
/// inherited from the thread's context (a root span mints a fresh one).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The context a child captured now would attach to: (trace, this span).
  /// {0,0} when tracing was disabled at construction.
  [[nodiscard]] TraceContext context() const;

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t saved_trace_ = 0;
  std::uint32_t id_ = 0;
  std::uint32_t parent_id_ = 0;
  bool active_ = false;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t thread_id = 0;
  std::uint64_t trace_id = 0;
  std::uint32_t id = 0;
  std::uint32_t parent_id = 0;
};

struct TraceContext {
  [[nodiscard]] bool active() const { return false; }
};

inline TraceContext current_context() { return {}; }

inline std::uint64_t this_thread_ordinal() { return 0; }

class ContextScope {
 public:
  explicit ContextScope(const TraceContext&) {}
};

struct FlowLink {
  std::uint32_t parent_id = 0;
  std::uint32_t child_id = 0;
  std::uint64_t trace_id = 0;
};

inline std::vector<FlowLink> flow_links(const std::vector<SpanRecord>&) { return {}; }

class Tracer {
 public:
  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void record(SpanRecord) {}
  [[nodiscard]] std::vector<SpanRecord> spans() const { return {}; }
  [[nodiscard]] std::vector<SpanRecord> recent_spans(std::size_t) const { return {}; }
  [[nodiscard]] std::string chrome_trace_json() const { return "{\"traceEvents\":[]}"; }
  [[nodiscard]] std::string aggregate_table() const { return ""; }
  bool write_chrome_trace(const std::string&) const { return false; }
  void clear() {}
};

class Span {
 public:
  explicit Span(const char*) {}
  [[nodiscard]] TraceContext context() const { return {}; }
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED

/// Opens a span covering the rest of the enclosing scope.
#define CTWATCH_SPAN_CONCAT2(a, b) a##b
#define CTWATCH_SPAN_CONCAT(a, b) CTWATCH_SPAN_CONCAT2(a, b)
#define CTWATCH_SPAN(name) \
  ::ctwatch::obs::Span CTWATCH_SPAN_CONCAT(ctwatch_span_, __LINE__)(name)
