// ctwatch::obs — tracing spans.
//
// RAII scoped timers with parent/child nesting tracked per thread. The
// global Tracer is off by default (a Span then costs one relaxed load);
// when enabled — via the API or the CTWATCH_TRACE environment variable —
// finished spans are collected and exportable two ways:
//
//   * chrome_trace_json(): the Trace Event Format, loadable directly in
//     chrome://tracing or Perfetto, and
//   * aggregate_table(): per-span-name count / total / mean / max, the
//     quick "where did the time go" view.
//
// Span names should be low-cardinality string literals ("sim.timeline.run");
// variable data belongs in metrics or log fields, not span names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>
#include <chrono>
#include <mutex>

namespace ctwatch::obs {

/// One finished span. Timestamps are microseconds since the first use of
/// the tracer in this process (steady clock).
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t thread_id = 0;  ///< small per-process ordinal, 1-based
  std::uint32_t id = 0;         ///< 1-based; 0 is "no span"
  std::uint32_t parent_id = 0;  ///< 0 for roots
};

class Tracer {
 public:
  static Tracer& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(SpanRecord record);
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  [[nodiscard]] std::string chrome_trace_json() const;
  [[nodiscard]] std::string aggregate_table() const;
  /// Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_chrome_trace(const std::string& path) const;
  void clear();

  // Internal plumbing for Span; not part of the public surface.
  std::uint32_t next_span_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t now_us() const;

 private:
  Tracer();  // reads CTWATCH_TRACE

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint32_t> next_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// RAII span: opens on construction, records on destruction. Nesting is
/// derived from a thread-local stack of live span ids.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::uint64_t start_us_ = 0;
  std::uint32_t id_ = 0;
  std::uint32_t parent_id_ = 0;
  bool active_ = false;
};

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  std::uint64_t thread_id = 0;
  std::uint32_t id = 0;
  std::uint32_t parent_id = 0;
};

class Tracer {
 public:
  static Tracer& global() {
    static Tracer tracer;
    return tracer;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void record(SpanRecord) {}
  [[nodiscard]] std::vector<SpanRecord> spans() const { return {}; }
  [[nodiscard]] std::string chrome_trace_json() const { return "{\"traceEvents\":[]}"; }
  [[nodiscard]] std::string aggregate_table() const { return ""; }
  bool write_chrome_trace(const std::string&) const { return false; }
  void clear() {}
};

class Span {
 public:
  explicit Span(const char*) {}
};

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED

/// Opens a span covering the rest of the enclosing scope.
#define CTWATCH_SPAN_CONCAT2(a, b) a##b
#define CTWATCH_SPAN_CONCAT(a, b) CTWATCH_SPAN_CONCAT2(a, b)
#define CTWATCH_SPAN(name) \
  ::ctwatch::obs::Span CTWATCH_SPAN_CONCAT(ctwatch_span_, __LINE__)(name)
