// ctwatch::obs — flight recorder: the last N events per thread, always on.
//
// Metrics aggregate and spans need the tracer enabled; neither answers
// "what was the process doing right before it went wrong?". The flight
// recorder does: every thread owns a fixed-size ring of small events
// (static-string name + two integer payloads + timestamp), recorded
// wait-free with a handful of relaxed atomics — cheap enough to leave on
// in production builds. The rings are only read when something breaks:
//
//   * a failing gtest assertion (tests install a listener),
//   * a chaos-injected anomaly (the injector notes every fault), or
//   * a signal (install_signal_handler dumps on SIGUSR1/SIGABRT with
//     async-signal-safe writes).
//
// Entries use a per-event seqlock (odd while mid-write) so a dump racing
// a writer skips torn entries instead of reporting garbage, and the whole
// structure stays data-race-free under TSAN. Rings outlive their threads
// (they are leaked like the metrics registry), so a post-mortem dump
// still sees what an exited worker last did.
//
// Under CTWATCH_OBS_DISABLED everything is an inert inline stub.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef CTWATCH_OBS_DISABLED

#include <atomic>

namespace ctwatch::obs {

/// One recorded event, as a dump reads it back.
struct FlightEvent {
  std::uint64_t ts_us = 0;      ///< tracer epoch microseconds
  std::uint64_t thread_id = 0;  ///< per-process ordinal (same space as spans)
  std::uint64_t seq = 0;        ///< global record order (total order across threads)
  const char* name = "";        ///< static string: "component.event"
  std::uint64_t a = 0;          ///< payload, event-specific
  std::uint64_t b = 0;          ///< payload, event-specific
};

class FlightRecorder {
 public:
  /// Events retained per thread.
  static constexpr std::size_t kRingSize = 256;

  static FlightRecorder& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Wait-free on the recording thread. `name` must be a string literal
  /// (or otherwise outlive the process) — it is stored by pointer.
  void record(const char* name, std::uint64_t a = 0, std::uint64_t b = 0);

  /// Merged view across all thread rings, ordered by global sequence; at
  /// most `last_n` newest events (0 = everything retained). Torn entries
  /// (a writer mid-store) are skipped.
  [[nodiscard]] std::vector<FlightEvent> snapshot(std::size_t last_n = 0) const;

  /// Human-readable dump of snapshot(last_n), one event per line.
  [[nodiscard]] std::string dump_text(std::size_t last_n = 64) const;

  /// Writes dump_text to stderr, bracketed with `reason`. The plain
  /// variant allocates; the signal path uses write(2) directly.
  void dump_to_stderr(const char* reason) const;

  /// Installs a handler on SIGUSR1 and SIGABRT that dumps the recorder to
  /// stderr with async-signal-safe writes, then restores the previous
  /// disposition (for SIGABRT) and re-raises. Idempotent.
  static void install_signal_handler();

  /// Events recorded since process start (including overwritten ones).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }

  /// Drops all retained events (tests). Threads keep their rings.
  void clear();

 private:
  /// Threads that can register a ring; later threads fall back to the
  /// overflow ring (shared, still race-free — slots are atomic).
  static constexpr std::size_t kMaxRings = 512;

  // One ring slot. The seqlock makes a concurrent dump skip a slot that a
  // writer is mid-way through instead of reading a torn event.
  struct Slot {
    std::atomic<std::uint64_t> guard{0};  // odd = write in progress
    std::atomic<std::uint64_t> ts_us{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uintptr_t> name{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  struct ThreadRing {
    std::uint64_t thread_id = 0;
    std::atomic<std::uint64_t> head{0};  // next write position
    Slot slots[kRingSize];
  };

  FlightRecorder() = default;
  ThreadRing& ring_for_this_thread();
  void dump_signal_safe(const char* reason) const;  // write(2)-only path
  friend void flight_recorder_signal_dump(int);

  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> next_seq_{1};
  // Lock-free append-only registry so the signal path can walk it without
  // taking a lock. Rings are leaked: they outlive their threads.
  std::atomic<ThreadRing*> rings_[kMaxRings] = {};
  std::atomic<std::size_t> ring_count_{0};
};

/// Convenience: FlightRecorder::global().record(...).
inline void flight_note(const char* name, std::uint64_t a = 0, std::uint64_t b = 0) {
  FlightRecorder::global().record(name, a, b);
}

}  // namespace ctwatch::obs

#else  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

struct FlightEvent {
  std::uint64_t ts_us = 0;
  std::uint64_t thread_id = 0;
  std::uint64_t seq = 0;
  const char* name = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kRingSize = 256;
  static FlightRecorder& global() {
    static FlightRecorder recorder;
    return recorder;
  }
  void set_enabled(bool) {}
  [[nodiscard]] bool enabled() const { return false; }
  void record(const char*, std::uint64_t = 0, std::uint64_t = 0) {}
  [[nodiscard]] std::vector<FlightEvent> snapshot(std::size_t = 0) const { return {}; }
  [[nodiscard]] std::string dump_text(std::size_t = 64) const { return ""; }
  void dump_to_stderr(const char*) const {}
  static void install_signal_handler() {}
  [[nodiscard]] std::uint64_t recorded() const { return 0; }
  void clear() {}
};

inline void flight_note(const char*, std::uint64_t = 0, std::uint64_t = 0) {}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
