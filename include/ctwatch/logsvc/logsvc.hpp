// ctwatch::logsvc — umbrella header.
//
// The concurrent, batched CT log service layer: a bounded submission
// queue with fail-fast backpressure, a sequencer thread sealing batches
// under a merge delay into signed tree heads, a snapshot-based read path
// for proofs and range reads, and a lossy streaming fanout. See
// service.hpp for the architecture sketch and DESIGN.md for rationale.
#pragma once

#include "ctwatch/logsvc/fanout.hpp"
#include "ctwatch/logsvc/queue.hpp"
#include "ctwatch/logsvc/service.hpp"
#include "ctwatch/logsvc/store.hpp"
