// ctwatch::logsvc — umbrella header.
//
// The concurrent, batched CT log service layer: a bounded submission
// queue with fail-fast backpressure, a sequencer thread sealing batches
// under a merge delay into signed tree heads, a snapshot-based read path
// for proofs and range reads, a lossy streaming fanout, and a resilient
// K-of-N multi-log submission client (circuit breakers, hedging,
// backoff). See service.hpp for the architecture sketch and DESIGN.md
// for rationale.
#pragma once

#include "ctwatch/logsvc/fanout.hpp"
#include "ctwatch/logsvc/multilog.hpp"
#include "ctwatch/logsvc/queue.hpp"
#include "ctwatch/logsvc/service.hpp"
#include "ctwatch/logsvc/store.hpp"
