// ctwatch::logsvc — resilient multi-log submission.
//
// Real CAs do not trust one log: Chrome's CT policy demands SCTs from
// multiple independent logs, and the log ecosystem churns (outages,
// disqualifications, the Nimbus incident). So a CA submits each chain to
// N logs to gather K SCTs, and keeps making progress while some of those
// logs misbehave. This is that client:
//
//   submit(chain) ──> pick K targets (skipping open circuit breakers)
//        │                 │
//        │                 ├─ attempt times out / errors ──> exponential
//        │                 │   backoff + jitter, retry (bounded), breaker
//        │                 │   counts consecutive failures ──> open
//        │                 ├─ attempt slow past the hedge threshold ──>
//        │                 │   launch one extra log in parallel
//        │                 └─ SCT arrives ──> count toward the quorum
//        │
//        └─ resolves, always: `quorum` (K SCTs inside the deadline),
//           `degraded` (fewer than K but at least `degraded_floor` — the
//           counted K−1 case), or `failed`. Never silence.
//
// The whole engine runs on *virtual time*: attempts are discrete events
// whose latency comes from the targets (chaos-plan driven for
// SimulatedLogTarget), so a run over millions of submissions is exact,
// fast, and bit-for-bit reproducible from the seeds. Circuit breakers
// persist across submissions — an outage trips them and later
// submissions route around the dead log until its cooldown probe heals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::logsvc {

/// Per-log circuit breaker: closed → (N consecutive failures) → open →
/// (cooldown elapses) → half-open, which admits exactly one probe; the
/// probe's outcome closes or reopens the circuit. All times are virtual.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { closed, open, half_open };

  struct Options {
    int failure_threshold = 3;  ///< consecutive failures that trip the breaker
    std::uint64_t open_cooldown_us = 500'000;  ///< open → half-open delay
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// The state as of `now_us` (open circuits age into half_open lazily).
  [[nodiscard]] State state(std::uint64_t now_us) const {
    if (state_ == State::open && now_us >= opened_at_us_ + options_.open_cooldown_us) {
      return State::half_open;
    }
    return state_;
  }

  /// May a request be sent now? half_open admits a single in-flight probe.
  bool allow(std::uint64_t now_us) {
    switch (state(now_us)) {
      case State::closed:
        return true;
      case State::open:
        return false;
      case State::half_open:
        if (probe_in_flight_) return false;
        state_ = State::half_open;
        probe_in_flight_ = true;
        return true;
    }
    return false;
  }

  void record_success() {
    state_ = State::closed;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
  }

  void record_failure(std::uint64_t now_us) {
    if (state(now_us) == State::half_open) {
      // The probe failed: straight back to open, cooldown restarts.
      probe_in_flight_ = false;
      trip(now_us);
      return;
    }
    if (++consecutive_failures_ >= options_.failure_threshold) trip(now_us);
  }

  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  void trip(std::uint64_t now_us) {
    state_ = State::open;
    opened_at_us_ = now_us;
    consecutive_failures_ = 0;
    ++trips_;
  }

  Options options_;
  State state_ = State::closed;
  int consecutive_failures_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t opened_at_us_ = 0;
  std::uint64_t trips_ = 0;
};

/// What one attempt against one log produced, in virtual time.
struct AttemptResult {
  chaos::FaultKind fault = chaos::FaultKind::none;  ///< none == an SCT came back
  std::uint64_t latency_us = 0;  ///< service latency of this attempt

  [[nodiscard]] bool ok() const { return fault == chaos::FaultKind::none; }
};

/// A submission target: one CT log as the multi-log client sees it.
class LogTarget {
 public:
  virtual ~LogTarget() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  /// One submission attempt at virtual time `now_us`. Deterministic
  /// implementations must derive the outcome only from their own state
  /// and (submission_id, now_us).
  virtual AttemptResult attempt(std::uint64_t submission_id, std::uint64_t now_us) = 0;
};

/// A chaos-plan-driven log: outcome and latency come from evaluating the
/// injector's fault point, so a fleet of these is scripted entirely by
/// `FaultPlan`s (error rates, latency distributions, outage windows).
class SimulatedLogTarget final : public LogTarget {
 public:
  SimulatedLogTarget(std::string name, chaos::FaultInjector& injector, std::string point)
      : name_(std::move(name)), injector_(&injector), point_(std::move(point)) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const std::string& point() const { return point_; }

  AttemptResult attempt(std::uint64_t /*submission_id*/, std::uint64_t now_us) override {
    const chaos::FaultDecision decision = injector_->evaluate(point_, now_us);
    return AttemptResult{decision.kind, decision.latency_us};
  }

 private:
  std::string name_;
  chaos::FaultInjector* injector_;
  std::string point_;
};

enum class QuorumOutcome : std::uint8_t {
  quorum,    ///< gathered K SCTs inside the deadline
  degraded,  ///< fewer than K but at least degraded_floor — counted, usable
  failed,    ///< below the floor — counted failure
};

struct MultiLogOptions {
  std::size_t quorum = 2;          ///< K: SCTs needed for full compliance
  std::size_t degraded_floor = 1;  ///< fewer SCTs than K but >= this => degraded
  std::uint64_t deadline_us = 2'000'000;      ///< per-submission budget
  std::uint64_t attempt_timeout_us = 250'000; ///< give up on one attempt after this
  std::uint64_t hedge_after_us = 60'000;      ///< hedge an extra log past this
  std::size_t max_attempts_per_log = 3;       ///< 1 initial + retries
  std::uint64_t backoff_base_us = 20'000;     ///< first retry delay
  double backoff_factor = 2.0;                ///< exponential growth per retry
  double backoff_jitter = 0.25;               ///< +/- fraction of the delay
  CircuitBreaker::Options breaker{};
  std::uint64_t jitter_seed = 0x0b5e55edULL;  ///< backoff-jitter stream seed
};

/// How one submission resolved. Every submit() returns exactly one of
/// these — the zero-lost-completions contract.
struct SubmitReport {
  QuorumOutcome outcome = QuorumOutcome::failed;
  std::size_t scts = 0;            ///< SCTs gathered
  std::uint64_t latency_us = 0;    ///< virtual time from start to resolution
  std::uint64_t attempts = 0;      ///< attempts launched (initial + retry + hedge)
  std::uint64_t retries = 0;       ///< re-attempts after a failure
  std::uint64_t hedges = 0;        ///< extra logs launched for latency
  std::uint64_t timeouts = 0;      ///< attempts lost to timeouts
  std::uint64_t errors = 0;        ///< attempts answered with an error
  std::uint64_t breaker_skips = 0; ///< launch candidates vetoed by open breakers
};

/// Running totals across submissions (the goodput view).
struct MultiLogTotals {
  std::uint64_t submissions = 0;
  std::uint64_t quorum = 0;
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t errors = 0;
  std::uint64_t breaker_skips = 0;

  /// Every submission resolved to quorum/degraded/failed — never silence.
  [[nodiscard]] std::uint64_t resolved() const { return quorum + degraded + failed; }
  [[nodiscard]] double goodput() const {
    return submissions == 0 ? 0.0
                            : static_cast<double>(quorum) / static_cast<double>(submissions);
  }
};

/// The multi-log submission client. Single-threaded by design: the event
/// engine advances virtual time deterministically, which is what makes
/// `chaos_goodput` runs reproducible counter-for-counter.
class MultiLogSubmitter {
 public:
  /// Targets are borrowed; breakers are created per target.
  MultiLogSubmitter(std::vector<LogTarget*> targets, MultiLogOptions options = {});

  /// Submits one chain starting at virtual time `start_us`; returns when
  /// the submission resolves (in virtual time). Breaker state carries
  /// over to the next call.
  SubmitReport submit(std::uint64_t submission_id, std::uint64_t start_us);

  [[nodiscard]] const MultiLogTotals& totals() const { return totals_; }
  [[nodiscard]] const MultiLogOptions& options() const { return options_; }
  [[nodiscard]] std::size_t target_count() const { return targets_.size(); }
  [[nodiscard]] const CircuitBreaker& breaker(std::size_t i) const { return targets_[i].breaker; }
  [[nodiscard]] std::uint64_t breaker_trips() const;

 private:
  struct TargetState {
    LogTarget* target = nullptr;
    CircuitBreaker breaker;
  };

  std::vector<TargetState> targets_;
  MultiLogOptions options_;
  MultiLogTotals totals_;
  Rng jitter_rng_;
};

}  // namespace ctwatch::logsvc
