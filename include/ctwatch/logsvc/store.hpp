// ctwatch::logsvc — append-only store with wait-free readers.
//
// The storage that lets get-sth / proof / get-entries traffic run without
// ever touching the sequencer's write path. One writer (the sequencer)
// appends into fixed-size chunks and release-publishes the element count
// once a batch is sealed; any number of readers acquire-load the count
// and then address elements below it directly. Elements below the
// published size are immutable, chunks never move (no reallocation, ever),
// so a reader holds no lock and is never invalidated.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "ctwatch/logsvc/queue.hpp"

namespace ctwatch::logsvc {

/// Single-writer / multi-reader append-only sequence of T.
///
/// Writer protocol: any number of append() calls, then one publish().
/// Readers must bound their accesses by size() (or by a tree size derived
/// from it, e.g. a published STH); at(i) for i < size() is race-free.
template <typename T>
class AppendOnlyStore {
 public:
  explicit AppendOnlyStore(std::size_t chunk_bits = 14, std::size_t max_chunks = std::size_t(1) << 15)
      : chunk_bits_(chunk_bits),
        chunk_mask_((std::size_t(1) << chunk_bits) - 1),
        max_chunks_(max_chunks),
        chunks_(std::make_unique<std::atomic<T*>[]>(max_chunks)) {}

  ~AppendOnlyStore() {
    for (std::size_t c = 0; c < max_chunks_; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }

  AppendOnlyStore(const AppendOnlyStore&) = delete;
  AppendOnlyStore& operator=(const AppendOnlyStore&) = delete;

  /// Writer only. Appends one element; not visible to readers until
  /// publish(). Returns PushResult::full (the same typed refusal the
  /// BoundedQueue gives) once every chunk slot is used — capacity is a
  /// resource condition the sequencer must surface per-submission, not an
  /// exception tearing through the seal loop.
  [[nodiscard]] PushResult append(T value) {
    const std::size_t chunk_index = static_cast<std::size_t>(write_pos_ >> chunk_bits_);
    if (chunk_index >= max_chunks_) return PushResult::full;
    T* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new T[std::size_t(1) << chunk_bits_]();
      // Release so that a reader navigating via the chunk pointer (rather
      // than through the size fence) still sees a constructed chunk.
      chunks_[chunk_index].store(chunk, std::memory_order_release);
    }
    chunk[write_pos_ & chunk_mask_] = std::move(value);
    ++write_pos_;
    return PushResult::ok;
  }

  /// Total element capacity (chunks never grow past max_chunks).
  [[nodiscard]] std::uint64_t capacity() const {
    return static_cast<std::uint64_t>(max_chunks_) << chunk_bits_;
  }

  /// Writer only. Release-publishes everything appended so far; the
  /// elements become immutable and visible to readers.
  void publish() { size_.store(write_pos_, std::memory_order_release); }

  /// Writer only: elements appended (published or not).
  [[nodiscard]] std::uint64_t write_pos() const { return write_pos_; }

  /// Published element count (reader fence).
  [[nodiscard]] std::uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Element i; the caller must have established i < size().
  [[nodiscard]] const T& at(std::uint64_t i) const {
    const T* chunk =
        chunks_[static_cast<std::size_t>(i >> chunk_bits_)].load(std::memory_order_acquire);
    return chunk[i & chunk_mask_];
  }

 private:
  const std::size_t chunk_bits_;
  const std::size_t chunk_mask_;
  const std::size_t max_chunks_;
  std::unique_ptr<std::atomic<T*>[]> chunks_;
  std::uint64_t write_pos_ = 0;          // writer-private
  std::atomic<std::uint64_t> size_{0};   // published watermark
};

}  // namespace ctwatch::logsvc
