// ctwatch::logsvc — bounded multi-producer queue with fail-fast overload.
//
// The backpressure primitive of the service layer: producers never block.
// When the queue is at capacity, try_push returns `full` immediately and
// the caller surfaces `overloaded` — the Nimbus lesson (a log that keeps
// absorbing submissions past its capacity ends up issuing bad SCTs)
// turned into an explicit API contract. The single consumer (the
// sequencer) drains in batches and can wait with a deadline, which is how
// the merge-delay window is implemented.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace ctwatch::logsvc {

/// Why a push was refused — "full" is backpressure the producer should
/// surface as overload; "closed" is teardown the producer should surface
/// as shutdown. Conflating the two misattributes teardown races as
/// overload in the metrics.
enum class PushResult : std::uint8_t {
  ok,      ///< item enqueued
  full,    ///< at capacity — backpressure, item untouched
  closed,  ///< queue closed — shutdown, item untouched
};

/// Bounded MPSC queue. Producers call try_push from any thread; the one
/// consumer uses wait_nonempty/wait_nonempty_until + drain. close() wakes
/// the consumer and makes further pushes fail; items already queued are
/// still drainable so shutdown can be graceful.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Fail-fast push; on `full`/`closed` the item is untouched.
  PushResult try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::closed;
      if (items_.size() >= capacity_) return PushResult::full;
      items_.push_back(std::move(item));
    }
    nonempty_.notify_one();
    return PushResult::ok;
  }

  /// Moves up to `max_items` into `out` (appended). Never blocks.
  std::size_t drain(std::vector<T>& out, std::size_t max_items) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t moved = 0;
    while (moved < max_items && !items_.empty()) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    return moved;
  }

  /// Blocks until items are available or the queue is closed. Returns true
  /// when items are available (even after close — drain them), false when
  /// closed and empty (the consumer's exit signal).
  bool wait_nonempty() {
    std::unique_lock<std::mutex> lock(mu_);
    nonempty_.wait(lock, [&] { return !items_.empty() || closed_; });
    return !items_.empty();
  }

  /// As wait_nonempty, but also gives up at `deadline` (returning false if
  /// still empty). Used to cap the merge-delay window.
  bool wait_nonempty_until(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    nonempty_.wait_until(lock, deadline, [&] { return !items_.empty() || closed_; });
    return !items_.empty();
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    nonempty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable nonempty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ctwatch::logsvc
