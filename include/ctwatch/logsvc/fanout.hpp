// ctwatch::logsvc — streaming fanout to subscribers.
//
// The CertStream primitive (`ct::stream`) calls subscribers synchronously
// from the submit path, so one slow consumer stalls the log. Here every
// subscriber gets a bounded ring and its own dispatch thread; the
// sequencer's publish() is a try_push that never blocks. A full ring
// drops the event for that subscriber and counts it — lag is explicit
// and observable instead of propagating backwards into SCT issuance.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/logsvc/queue.hpp"
#include "ctwatch/obs/trace.hpp"

namespace ctwatch::logsvc {

/// What a subscriber sees per integrated entry: enough to follow the log
/// (and verify inclusion later) without shipping certificate bodies.
struct StreamEvent {
  std::uint64_t index = 0;
  std::uint64_t timestamp_ms = 0;
  crypto::Digest leaf_hash{};
  crypto::Digest fingerprint{};
  std::string issuer_cn;
  /// Causal link to the submission's span tree: dispatch spans opened
  /// under this context parent to the sequencer's per-entry span.
  obs::TraceContext trace{};
  /// When publish() offered the event; dispatch latency measures from it.
  std::chrono::steady_clock::time_point published_at{};
};

class StreamFanout {
 public:
  using Callback = std::function<void(const StreamEvent&)>;

  /// `buffer_capacity` is the per-subscriber ring depth.
  explicit StreamFanout(std::size_t buffer_capacity) : capacity_(buffer_capacity) {}
  ~StreamFanout() { stop(); }

  StreamFanout(const StreamFanout&) = delete;
  StreamFanout& operator=(const StreamFanout&) = delete;

  /// Registers a consumer and spawns its dispatch thread. `name` labels
  /// diagnostics only.
  void subscribe(std::string name, Callback callback);

  /// Sequencer side: offers the event to every subscriber. Never blocks;
  /// full rings drop and count.
  void publish(const StreamEvent& event);

  /// Closes all rings, lets dispatchers drain what is buffered, joins.
  void stop();

  [[nodiscard]] std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::size_t subscriber_count() const;

 private:
  struct Subscriber {
    std::string name;
    Callback callback;
    BoundedQueue<StreamEvent> ring;
    std::thread dispatcher;

    Subscriber(std::string n, Callback cb, std::size_t capacity)
        : name(std::move(n)), callback(std::move(cb)), ring(capacity) {}
  };

  void dispatch_loop(Subscriber& subscriber);

  const std::size_t capacity_;
  mutable std::mutex mu_;  // guards subscribers_ (publish vs subscribe)
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
  bool stopped_ = false;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace ctwatch::logsvc
