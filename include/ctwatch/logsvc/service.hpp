// ctwatch::logsvc — a concurrent, batched CT log service.
//
// `ct::CtLog` is the protocol model: single-threaded, integrating every
// leaf the moment it is submitted. Real logs do neither — they absorb
// concurrent submissions into a queue, integrate in batches under a merge
// delay (the MMD), and serve reads from signed-tree-head snapshots. This
// module is that production shape, built from the same ct primitives
// (merkle math, SCT/STH signing inputs, wire serialization):
//
//   submit() ──> BoundedQueue ──> sequencer thread ──> seal batch:
//                (backpressure:      drains under        bulk Merkle
//                 full = fail        the merge-delay     integration,
//                 fast with          window, up to       per-entry SCTs,
//                 `overloaded`)      max_batch           one signed STH
//                                                          │
//            readers (any thread) <── TreeSnapshot <───────┘
//            get-sth / inclusion / consistency / get-entries run against
//            the published snapshot + append-only stores: no lock shared
//            with the write path
//                                                          │
//            StreamFanout ──> per-subscriber ring + thread ┘
//            slow consumers drop (counted), never stall the sequencer
//
// Completion is asynchronous: submit() enqueues and returns; the SCT is
// delivered to the submission's CompletionFn when its batch seals. That
// is what lets a handful of submitter threads keep hundreds of
// submissions in flight (see bench/logsvc_loadgen).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/ct/log.hpp"
#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/logsvc/fanout.hpp"
#include "ctwatch/logsvc/queue.hpp"
#include "ctwatch/logsvc/store.hpp"
#include "ctwatch/obs/trace.hpp"
#include "ctwatch/storage/log_store.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::logsvc {

struct Config {
  std::string name = "logsvc";  ///< log identity; the signing key derives from it
  std::string operator_name;
  crypto::SignatureScheme scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  /// Applies to the validating submit_chain/submit_pre_chain paths; the
  /// raw submit() path trusts its caller (as bulk simulations do).
  bool verify_submissions = true;
  /// Retain SignedEntry bodies in the entry store (get-entries returns
  /// them). Load tests disable this to keep the record slim.
  bool store_bodies = true;
  /// Return the original SCT for a resubmitted certificate.
  bool dedup = true;
  /// Backpressure depth: submissions beyond this fail fast as overloaded.
  std::size_t queue_capacity = std::size_t(1) << 16;
  /// Seal a batch early once it reaches this many submissions.
  std::size_t max_batch = std::size_t(1) << 12;
  /// MMD-style merge delay: how long the sequencer holds a batch open
  /// after its first submission before sealing.
  std::chrono::microseconds merge_delay{1000};
  /// Per-subscriber ring depth for the streaming fanout.
  std::size_t fanout_buffer = std::size_t(1) << 16;
  /// get_entries window cap: a single read returns at most this many
  /// entries regardless of the requested count (RFC 6962 §4.6 lets logs
  /// return fewer than asked; production logs cap near 1000).
  std::uint64_t max_get_entries = 1024;
  /// Optional fault seams (not owned; nullptr disables chaos). The
  /// service consults three points, named under `chaos_prefix`:
  ///   "<prefix>.submit" — faults drop the submission at ingress
  ///                       (returned as SubmitStatus::dropped),
  ///   "<prefix>.seal"   — injected latency stalls the sequencer before
  ///                       it seals a batch (delayed merge),
  ///   "<prefix>.sign"   — per-entry signer failure: the entry is not
  ///                       integrated and its completion carries
  ///                       SubmitStatus::internal_error.
  chaos::FaultInjector* chaos = nullptr;
  std::string chaos_prefix = "logsvc";
  /// Optional durable backing store (not owned; nullptr keeps the
  /// service memory-only, exactly as before). When set, the constructor
  /// ADOPTS the store's recovered state — every recovered entry is
  /// re-integrated and the recovered STH is republished verbatim (the
  /// store must have been opened with the same log name: the recovered
  /// STH's signature is verified against this service's key, and a
  /// mismatch throws). Each sealed batch is then committed (WAL + fsync)
  /// BEFORE its snapshot is published or its SCTs are released, so
  /// get-sth never serves a root the disk cannot prove. The first
  /// storage failure poisons the write path fail-stop: later batches
  /// complete with SubmitStatus::storage_error while reads keep serving
  /// the last durable snapshot.
  storage::LogStore* storage = nullptr;
  /// Storage-backed reads (requires `storage`). When set, adoption keeps
  /// only the recovered WAL tail resident: reads below the recovered
  /// checkpoint fall through to the store's tile cache (proofs, leaf
  /// hashes) and entry segment (get-entries), so reopening a huge log
  /// costs O(WAL tail) memory instead of O(tree). Tradeoffs, which is why
  /// the memory-resident adoption stays the default: the dedup table
  /// covers only the resident tail (a resubmission of a checkpointed
  /// certificate grows the tree instead of re-issuing its SCT), and the
  /// first get-proof-by-hash for a checkpointed leaf pays a one-time
  /// streaming rebuild of the hash -> index map.
  bool paged_reads = false;
};

enum class SubmitStatus : std::uint8_t {
  ok,                ///< accepted: the SCT arrives via the CompletionFn
  rejected_invalid,  ///< chain did not verify / wrong entry kind
  overloaded,        ///< queue full — backpressure (Nimbus incident model)
  shutdown,          ///< service is stopping
  dropped,           ///< chaos: submission lost at ingress (injected fault)
  internal_error,    ///< chaos: signer failed at seal time (via CompletionFn)
  storage_error,     ///< durable commit failed: entry NOT integrated (via CompletionFn)
};

struct SubmitOutcome {
  SubmitStatus status = SubmitStatus::ok;
  std::uint64_t index = 0;  ///< assigned leaf index when status == ok
  std::optional<ct::SignedCertificateTimestamp> sct;
};

/// Invoked exactly once per accepted submission, from the sequencer
/// thread, after the batch's STH snapshot is published (so inclusion can
/// be proven immediately). Must be cheap and must not call back into the
/// service's write path.
using CompletionFn = std::function<void(const SubmitOutcome&)>;

/// An immutable published view of the tree: what every read serves from.
struct TreeSnapshot {
  ct::SignedTreeHead sth;
  std::uint64_t seal_seq = 0;  ///< number of sealed batches behind this head
};

/// One integrated entry as the read path exposes it.
struct EntryRecord {
  std::uint64_t index = 0;
  std::uint64_t timestamp_ms = 0;
  crypto::Digest fingerprint{};
  std::string issuer_cn;
  ct::SignedEntry signed_entry;  ///< body kept only when Config::store_bodies
};

class LogService {
 public:
  /// Starts the sequencer; the service accepts submissions immediately.
  explicit LogService(Config config);
  /// Graceful: equivalent to stop().
  ~LogService();

  LogService(const LogService&) = delete;
  LogService& operator=(const LogService&) = delete;

  /// Seals everything already queued, publishes the final STH, joins the
  /// sequencer and fanout threads. Idempotent. Submissions racing with
  /// stop() fail with `shutdown` or `overloaded`.
  void stop();

  // --- identity ---
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] Bytes public_key() const { return signer_->public_key(); }
  [[nodiscard]] ct::LogId log_id() const;

  // --- write path (any thread) ---

  /// Raw submission: a pre-built SignedEntry plus its certificate
  /// fingerprint (dedup key) and issuer CN. Returns `ok` when queued; the
  /// outcome (SCT + index) arrives via `done` at seal time.
  SubmitStatus submit(ct::SignedEntry entry, const crypto::Digest& fingerprint,
                      std::string issuer_cn, SimTime now, CompletionFn done = {});

  /// add-chain: validates (per Config::verify_submissions) and submits a
  /// final certificate.
  SubmitStatus submit_chain(const x509::Certificate& cert, BytesView issuer_public_key,
                            SimTime now, CompletionFn done = {});
  /// add-pre-chain: validates and submits a precertificate.
  SubmitStatus submit_pre_chain(const x509::Certificate& precert, BytesView issuer_public_key,
                                SimTime now, CompletionFn done = {});

  /// Blocking convenience over submit_chain/submit_pre_chain (picks by
  /// the poison extension): waits through the merge delay for the SCT.
  SubmitOutcome submit_and_wait(const x509::Certificate& cert, BytesView issuer_public_key,
                                SimTime now);

  // --- read path (any thread; never contends with the sequencer) ---

  /// The latest published snapshot (never null; starts as the signed
  /// empty tree).
  [[nodiscard]] std::shared_ptr<const TreeSnapshot> snapshot() const;
  /// get-sth: the latest signed tree head.
  [[nodiscard]] ct::SignedTreeHead get_sth() const { return snapshot()->sth; }

  /// Inclusion proof for `index` in the tree of `tree_size`; `tree_size`
  /// may be any published size (current or stale snapshot).
  [[nodiscard]] std::vector<crypto::Digest> inclusion_proof(std::uint64_t index,
                                                            std::uint64_t tree_size) const;
  /// Consistency proof between two published sizes.
  [[nodiscard]] std::vector<crypto::Digest> consistency_proof(std::uint64_t old_size,
                                                              std::uint64_t new_size) const;
  /// Merkle leaf hash of an integrated entry (what inclusion verifies).
  [[nodiscard]] crypto::Digest leaf_hash_at(std::uint64_t index) const;
  /// get-proof-by-hash support: the leaf index whose Merkle leaf hash is
  /// `leaf_hash`, if integrated (first occurrence wins for duplicates).
  [[nodiscard]] std::optional<std::uint64_t> leaf_index_of(const crypto::Digest& leaf_hash) const;
  /// get-entries [start, start+count), clamped: empty when start is at or
  /// beyond the published size, the window capped at
  /// Config::max_get_entries, and start+count overflow is harmless.
  [[nodiscard]] std::vector<EntryRecord> get_entries(std::uint64_t start,
                                                     std::uint64_t count) const;
  /// Published tree size (== get_sth().tree_size). With paged reads the
  /// resident stores hold only [resident_base_, tree_size).
  [[nodiscard]] std::uint64_t tree_size() const { return resident_base_ + leaves_.size(); }
  /// First leaf index the resident stores hold; everything below is
  /// served from storage. Zero unless Config::paged_reads adopted a
  /// checkpointed store.
  [[nodiscard]] std::uint64_t resident_base() const { return resident_base_; }

  // --- streaming ---

  /// Registers a streaming consumer (own dispatch thread; lossy when its
  /// ring fills — see StreamFanout).
  void subscribe(std::string name, StreamFanout::Callback callback) {
    fanout_.subscribe(std::move(name), std::move(callback));
  }
  [[nodiscard]] const StreamFanout& fanout() const { return fanout_; }

  // --- stats ---
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] std::uint64_t overload_rejections() const {
    return overload_rejections_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sealed_batches() const {
    return sealed_batches_.load(std::memory_order_relaxed);
  }
  /// Submissions refused because the queue was closed (shutdown race) —
  /// distinct from overload so teardown is never misread as backpressure.
  [[nodiscard]] std::uint64_t shutdown_rejections() const {
    return shutdown_rejections_.load(std::memory_order_relaxed);
  }
  /// Chaos accounting: ingress drops and seal-time signer failures. Both
  /// are zero without a fault injector.
  [[nodiscard]] std::uint64_t chaos_dropped() const {
    return chaos_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t signer_failures() const {
    return signer_failures_.load(std::memory_order_relaxed);
  }
  /// Batches refused because the durable commit failed (fail-stop: once
  /// nonzero, every later batch fails too until the store is reopened).
  [[nodiscard]] std::uint64_t storage_failures() const {
    return storage_failures_.load(std::memory_order_relaxed);
  }

  // --- test hooks ---

  /// TEST HOOK: freezes the sequencer (it stops draining), so tests can
  /// deterministically fill the queue to provoke `overloaded`.
  void pause_sequencer_for_test() { paused_.store(true, std::memory_order_relaxed); }
  void resume_sequencer_for_test() { paused_.store(false, std::memory_order_relaxed); }

 private:
  struct Pending {
    ct::SignedEntry entry;
    crypto::Digest fingerprint{};
    std::string issuer_cn;
    std::uint64_t timestamp_ms = 0;
    std::chrono::steady_clock::time_point enqueued_at;
    /// Submitter's trace position: sequencer-side spans parent to the
    /// submit span, stitching the batch hand-off across threads.
    obs::TraceContext trace{};
    CompletionFn done;
  };

  struct DedupValue {
    std::uint64_t index = 0;
    std::uint64_t timestamp_ms = 0;
  };
  struct DigestHash {
    std::size_t operator()(const crypto::Digest& d) const {
      std::size_t out = 0;
      for (std::size_t i = 0; i < sizeof(out); ++i) out = (out << 8) | d[i];
      return out;
    }
  };

  SubmitStatus submit_validated(const x509::Certificate& cert, BytesView issuer_public_key,
                                SimTime now, ct::EntryType type, CompletionFn done);
  void sequencer_main();
  void seal_batch(std::vector<Pending>& batch);
  /// Re-integrates a durable store's recovered state before the
  /// sequencer starts (constructor only; throws on key mismatch).
  void adopt_storage();
  /// Signs a fresh STH over an accumulator state (the live one, or the
  /// probe a batch is about to commit).
  [[nodiscard]] ct::SignedTreeHead sign_sth(const ct::RootAccumulator& accumulator,
                                            std::uint64_t timestamp_ms) const;
  /// Publishes an already-signed STH — the exact object that was
  /// committed to storage (or recovered from it), never a re-signing.
  void publish_snapshot(ct::SignedTreeHead sth);
  [[nodiscard]] ct::SignedCertificateTimestamp sign_sct(std::uint64_t timestamp_ms,
                                                        const ct::SignedEntry& entry) const;
  /// A per-query tile source: pages below the store's durable watermark,
  /// the resident stores above resident_base_. Paged mode only.
  [[nodiscard]] storage::PagedLeafSource paged_source() const;

  Config config_;
  std::unique_ptr<crypto::Signer> signer_;

  BoundedQueue<Pending> queue_;
  AppendOnlyStore<crypto::Digest> leaves_;
  AppendOnlyStore<EntryRecord> entries_;

  // Sequencer-private state (no locking: single thread).
  ct::RootAccumulator accumulator_;
  std::unordered_map<crypto::Digest, DedupValue, DigestHash> dedup_;
  std::uint64_t last_timestamp_ms_ = 0;
  std::uint64_t seal_seq_ = 0;

  mutable std::mutex snapshot_mu_;  // held only for the shared_ptr swap/copy
  std::shared_ptr<const TreeSnapshot> snapshot_;

  // leaf hash -> index, written by the sequencer at seal time, read by
  // get-proof-by-hash. Its own narrow lock: readers never touch the
  // snapshot or queue locks. Covers [resident_base_, tree_size).
  mutable std::mutex leaf_index_mu_;
  std::unordered_map<crypto::Digest, std::uint64_t, DigestHash> leaf_index_;

  /// Paged mode: where the resident stores begin. Set once during
  /// construction (before the sequencer or any reader exists), then
  /// immutable.
  std::uint64_t resident_base_ = 0;
  /// hash -> index for the checkpointed prefix [0, resident_base_),
  /// rebuilt lazily (one streaming pass over the tile pages) on the
  /// first get-proof-by-hash miss against the resident map.
  mutable std::mutex paged_index_mu_;
  mutable bool paged_index_built_ = false;
  mutable std::unordered_map<crypto::Digest, std::uint64_t, DigestHash> paged_index_;

  StreamFanout fanout_;
  std::thread sequencer_;
  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::atomic<std::uint64_t> overload_rejections_{0};
  std::atomic<std::uint64_t> shutdown_rejections_{0};
  std::atomic<std::uint64_t> chaos_dropped_{0};
  std::atomic<std::uint64_t> signer_failures_{0};
  std::atomic<std::uint64_t> storage_failures_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> sealed_batches_{0};
};

}  // namespace ctwatch::logsvc
