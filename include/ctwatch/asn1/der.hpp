// ASN.1 DER encoding and decoding (X.690), the subset X.509 needs.
//
// The §3.4 study depends on byte-level certificate encoding: the real-world
// CA bugs it reproduces (SAN reordering, X.509 extension reordering between
// precertificate and final certificate) only exist at the DER layer, so the
// library encodes certificates for real rather than comparing structs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/util/encoding.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::asn1 {

/// Universal tag numbers (with constructed bit where conventional).
enum : std::uint8_t {
  kTagBoolean = 0x01,
  kTagInteger = 0x02,
  kTagBitString = 0x03,
  kTagOctetString = 0x04,
  kTagNull = 0x05,
  kTagOid = 0x06,
  kTagUtf8String = 0x0c,
  kTagPrintableString = 0x13,
  kTagIa5String = 0x16,
  kTagUtcTime = 0x17,
  kTagGeneralizedTime = 0x18,
  kTagSequence = 0x30,
  kTagSet = 0x31,
};

/// Context-specific tag: [n], primitive or constructed.
constexpr std::uint8_t context_tag(unsigned n, bool constructed) {
  return static_cast<std::uint8_t>(0x80 | (constructed ? 0x20 : 0x00) | (n & 0x1f));
}

/// An object identifier.
struct Oid {
  std::vector<std::uint32_t> arcs;

  /// Parses "1.2.840.10045.4.3.2"-style text. Throws on malformed input.
  static Oid parse(const std::string& dotted);
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Oid&, const Oid&) = default;
  friend auto operator<=>(const Oid&, const Oid&) = default;
};

// ---------- Encoding ----------

/// Encodes a definite length.
Bytes encode_length(std::size_t length);
/// tag + length + value.
Bytes tlv(std::uint8_t tag, BytesView value);

Bytes encode_boolean(bool value);
/// Two's-complement minimal INTEGER from a signed 64-bit value.
Bytes encode_integer(std::int64_t value);
/// INTEGER from an unsigned big-endian magnitude (leading 0x00 added when
/// the high bit is set; leading zeros stripped).
Bytes encode_integer_unsigned(BytesView magnitude);
Bytes encode_octet_string(BytesView value);
/// BIT STRING with zero unused bits.
Bytes encode_bit_string(BytesView value);
Bytes encode_null();
Bytes encode_oid(const Oid& oid);
Bytes encode_utf8_string(const std::string& value);
Bytes encode_printable_string(const std::string& value);
Bytes encode_ia5_string(const std::string& value);
/// UTCTime ("YYMMDDHHMMSSZ") for years in [1950, 2049], per RFC 5280.
Bytes encode_utc_time(SimTime t);
/// GeneralizedTime ("YYYYMMDDHHMMSSZ").
Bytes encode_generalized_time(SimTime t);
/// SEQUENCE of pre-encoded elements, in the given order.
Bytes encode_sequence(const std::vector<Bytes>& elements);
/// SET OF with DER canonical ordering (elements sorted bytewise).
Bytes encode_set_of(std::vector<Bytes> elements);
/// Explicitly tagged [n] wrapper.
Bytes encode_explicit(unsigned n, BytesView inner);

// ---------- Decoding ----------

/// A decoded TLV: `tag`, the value bytes, and the full element (header
/// included) for re-serialization.
struct Tlv {
  std::uint8_t tag = 0;
  BytesView value;
  BytesView raw;

  [[nodiscard]] bool constructed() const { return tag & 0x20; }
};

/// Sequential DER parser over a buffer. Throws std::invalid_argument
/// (with context) on malformed input.
class Parser {
 public:
  explicit Parser(BytesView data) : data_(data) {}
  /// The parser only views its input; constructing from a temporary buffer
  /// would dangle immediately.
  explicit Parser(Bytes&&) = delete;

  [[nodiscard]] bool done() const { return pos_ >= data_.size(); }
  /// Number of bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  /// Reads the next TLV. Throws if input is exhausted or malformed.
  Tlv next();
  /// Reads the next TLV and checks its tag.
  Tlv expect(std::uint8_t tag);
  /// Peeks at the next tag without consuming (0 if done).
  [[nodiscard]] std::uint8_t peek_tag() const;

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Value decoding helpers; each throws std::invalid_argument on mismatch.
bool decode_boolean(const Tlv& tlv);
std::int64_t decode_integer(const Tlv& tlv);
/// Unsigned magnitude of an INTEGER (sign byte stripped); rejects negatives.
Bytes decode_integer_unsigned(const Tlv& tlv);
Oid decode_oid(const Tlv& tlv);
std::string decode_string(const Tlv& tlv);
/// Accepts UTCTime or GeneralizedTime.
SimTime decode_time(const Tlv& tlv);
/// BIT STRING payload; requires zero unused bits.
BytesView decode_bit_string(const Tlv& tlv);

}  // namespace ctwatch::asn1
