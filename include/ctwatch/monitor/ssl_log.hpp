// Bro-style ssl.log writer.
//
// The paper's pipeline runs on Bro (now Zeek) with the authors' SCT
// extension [1]; its unit of output is a TSV log line per TLS connection.
// This writer reproduces that interface so downstream tooling written for
// Bro logs can consume ctwatch's simulated traffic: tee connections into
// it alongside the PassiveMonitor.
#pragma once

#include <ostream>

#include "ctwatch/ct/loglist.hpp"
#include "ctwatch/tls/connection.hpp"

namespace ctwatch::monitor {

/// Writes one TSV line per connection with the SCT fields the authors'
/// Bro extension exposes: counts per delivery channel and per-SCT
/// validation results.
class SslLogWriter {
 public:
  /// `logs` is used to validate SCTs for the validation column.
  SslLogWriter(std::ostream& out, const ct::LogList& logs);

  void process(const tls::ConnectionRecord& connection);

  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream* out_;
  const ct::LogList* logs_;
  std::uint64_t lines_ = 0;
};

}  // namespace ctwatch::monitor
