// A Bro-like passive TLS analyzer with SCT extraction and validation.
//
// Mirrors the paper's measurement pipeline (their extended Bro): every
// connection is reduced to SCT presence per delivery channel, per-log
// usage counters, client-support signaling, and cryptographic validation
// results — including the invalid embedded SCTs that §3.4 traces back to
// CA software bugs. Both the passive study (§3.2) and the active-scan
// study (§3.3) run connections through this same pipeline, exactly as the
// paper does ("we create traffic traces and run these through Bro,
// resulting in the same processing pipeline").
//
// Validation work is cached per certificate (pointer identity): a popular
// server's certificate is analyzed once, then billions of connections to
// it only bump counters — the same optimization a real passive analyzer
// relies on. The cache assumes a certificate pointer keeps designating the
// same (certificate, TLS-SCTs, OCSP-SCTs) triple, which holds for the
// simulated populations.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctwatch/ct/loglist.hpp"
#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/tls/connection.hpp"

namespace ctwatch::monitor {

/// Per-day aggregation (Fig. 2's data points).
struct DailyCounters {
  std::uint64_t connections = 0;
  std::uint64_t with_any_sct = 0;
  std::uint64_t sct_in_cert = 0;
  std::uint64_t sct_in_tls = 0;
  std::uint64_t sct_in_ocsp = 0;
};

/// Per-log usage split by delivery channel (Table 1's rows), counted per
/// connection.
struct LogUsage {
  std::uint64_t cert_scts = 0;
  std::uint64_t tls_scts = 0;
  std::uint64_t ocsp_scts = 0;
};

/// A certificate observed with at least one cryptographically invalid SCT.
struct InvalidSctObservation {
  std::string server_name;   ///< first server seen presenting it
  std::string issuer_cn;
  tls::SctDelivery delivery = tls::SctDelivery::certificate;
  std::string log_name;  ///< "" when the log is unknown
  Bytes certificate_fingerprint;
};

/// Totals over the whole measurement period (§3.2's headline numbers).
struct MonitorTotals {
  std::uint64_t connections = 0;
  std::uint64_t with_any_sct = 0;
  std::uint64_t sct_in_cert = 0;
  std::uint64_t sct_in_tls = 0;
  std::uint64_t sct_in_ocsp = 0;
  std::uint64_t cert_and_tls = 0;  ///< SCT via both cert and TLS extension
  std::uint64_t cert_and_ocsp = 0;
  std::uint64_t tls_and_ocsp = 0;
  std::uint64_t client_signaled = 0;
  std::uint64_t valid_scts = 0;    ///< per connection
  std::uint64_t invalid_scts = 0;  ///< per connection
  std::uint64_t unique_certificates = 0;
  std::uint64_t unique_certs_with_embedded_sct = 0;
};

class PassiveMonitor {
 public:
  /// `logs` provides public keys for validation and names for attribution.
  explicit PassiveMonitor(const ct::LogList& logs) : logs_(&logs) {}

  /// Analyzes one connection.
  void process(const tls::ConnectionRecord& connection);

  /// Analyzes a batch. The per-certificate validation work (the expensive
  /// part) runs in parallel over the ctwatch::par global pool for
  /// certificates not yet in the cache; the stream itself is then
  /// replayed in order through the serial path, so every total, daily
  /// counter, invalid-SCT record and cache hit/miss count is byte-
  /// identical to calling process() on each record — at any thread count.
  void process_batch(std::span<const tls::ConnectionRecord> connections);

  /// Finalizes the in-flight day of the peak-attribution scratch; call
  /// when the input stream ends (drivers do this automatically).
  void flush() { finalize_scratch_day(); }

  [[nodiscard]] const MonitorTotals& totals() const { return totals_; }
  [[nodiscard]] const std::map<std::int64_t, DailyCounters>& daily() const { return daily_; }
  /// Keyed by log name ("<unknown>" for logs absent from the list).
  [[nodiscard]] const std::map<std::string, LogUsage>& log_usage() const { return log_usage_; }
  /// Per day: the server name contributing the most SCT-bearing
  /// connections and its count — the paper traced its Fig. 2 peaks to
  /// graph.facebook.com request storms by exactly this kind of look.
  /// Tracked streaming with a one-day scratch map, so connections must
  /// arrive in (roughly) day order; a late connection for a finalized day
  /// is counted in the daily totals but not re-attributed.
  [[nodiscard]] const std::map<std::int64_t, std::pair<std::string, std::uint64_t>>&
  daily_top_sct_server() const {
    return daily_top_;
  }
  /// One record per (unique certificate, offending SCT).
  [[nodiscard]] const std::vector<InvalidSctObservation>& invalid_observations() const {
    return invalid_;
  }

 private:
  /// Everything derivable from the (certificate, SCT lists) triple alone.
  struct CertAnalysis {
    bool has_cert_sct = false;
    bool has_tls_sct = false;
    bool has_ocsp_sct = false;
    // (log name, valid) per SCT and channel.
    std::vector<std::pair<std::string, bool>> cert_channel;
    std::vector<std::pair<std::string, bool>> tls_channel;
    std::vector<std::pair<std::string, bool>> ocsp_channel;
    /// Invalid-SCT records produced while validating this certificate;
    /// moved into invalid_ when the analysis is adopted — i.e. at the
    /// certificate's *first* connection, exactly where the serial path
    /// records them.
    std::vector<InvalidSctObservation> invalid_observations;
  };

  const CertAnalysis& analyze(const tls::ConnectionRecord& connection);
  /// Pure validation work: no member mutation, safe to run concurrently.
  [[nodiscard]] CertAnalysis compute_analysis(const tls::ConnectionRecord& connection) const;
  /// First-connection bookkeeping (unique-cert totals, invalid_ append)
  /// plus insertion into the cache.
  const CertAnalysis& adopt_analysis(const x509::Certificate* key, CertAnalysis analysis);
  void validate_channel(const tls::SctList& scts, const ct::SignedEntry& entry,
                        const tls::ConnectionRecord& connection, tls::SctDelivery delivery,
                        std::vector<std::pair<std::string, bool>>& out,
                        std::vector<InvalidSctObservation>& invalid_out) const;

  const ct::LogList* logs_;
  MonitorTotals totals_;
  std::map<std::int64_t, DailyCounters> daily_;
  std::map<std::string, LogUsage> log_usage_;
  std::vector<InvalidSctObservation> invalid_;
  std::unordered_map<const x509::Certificate*, CertAnalysis> cache_;
  /// Analyses computed ahead of time by process_batch, waiting for their
  /// certificate's first connection to adopt them into cache_.
  std::unordered_map<const x509::Certificate*, CertAnalysis> pending_;
  // Streaming per-day attribution scratch (see daily_top_sct_server()).
  // Server names are interned once; the scratch counts by 4-byte id, so a
  // request storm to one popular name costs a hash of 4 bytes per hit
  // instead of re-hashing (and initially copying) the name string.
  std::int64_t scratch_day_ = -1;
  // unique_ptr: the table's arenas are address-pinned (non-movable), but
  // the monitor itself is returned by value from driver helpers.
  std::unique_ptr<namepool::LabelTable> server_names_ =
      std::make_unique<namepool::LabelTable>();
  std::unordered_map<namepool::LabelId, std::uint64_t> scratch_counts_;
  std::map<std::int64_t, std::pair<std::string, std::uint64_t>> daily_top_;
  void finalize_scratch_day();
  void note_sct_connection(std::int64_t day, const std::string& server_name);
};

}  // namespace ctwatch::monitor
