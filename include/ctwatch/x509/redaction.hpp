// CT label redaction — the countermeasure the paper points to (its ref.
// [17], the CA/Browser-forum / IETF redaction effort, and Symantec's
// "Deneb" log whose explicit goal was to hide subdomains).
//
// Model (following the expired draft-ietf-trans-rfc6962-bis redaction
// mechanism in spirit): the CA submits a precertificate whose SAN
// subdomain labels are replaced by "?", and marks both certificates with a
// redaction extension. The log — and every CT consumer — only ever sees
// "?.example.com". SCT validation over the *final* certificate re-applies
// the redaction before reconstructing the signed bytes.
//
// The redaction_ablation bench quantifies what this buys: the §4
// enumeration pipeline starves because the leaked labels disappear.
#pragma once

#include "ctwatch/x509/certificate.hpp"

namespace ctwatch::x509 {

/// "www.dev.example.com" -> "?.example.com" style redaction: every label
/// left of the last `keep_labels` (default 2: the registrable domain of a
/// common TLD) collapses into a single "?". Names with nothing to hide are
/// returned unchanged.
std::string redact_dns_name(const std::string& name, std::size_t keep_labels = 2);

/// True if the string is a redacted name ("?." prefix).
bool is_redacted_name(const std::string& name);

/// Marker extension OID (private arc) identifying redacted certificates.
const asn1::Oid& redaction_marker_oid();

/// Returns a copy of `tbs` with every DNS SAN redacted (IP SANs kept).
/// Idempotent; used both by the issuing CA (to build the precertificate)
/// and by validators (to reconstruct what the log signed from the final
/// certificate).
TbsCertificate redacted_tbs(const TbsCertificate& tbs, std::size_t keep_labels = 2);

/// Whether the certificate carries the redaction marker.
bool uses_redaction(const TbsCertificate& tbs);

}  // namespace ctwatch::x509
