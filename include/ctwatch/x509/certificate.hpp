// X.509 certificates: model, DER encoding/decoding, and the
// precertificate machinery of RFC 6962.
//
// The model covers the fields the paper's analyses touch — names, SANs
// (DNS and IP), validity, issuer, and extensions — and encodes them with
// real DER so that the §3.4 bug classes (SAN/extension reordering between
// precertificate and final certificate) exist at the byte level, exactly
// where the real CAs tripped.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctwatch/asn1/der.hpp"
#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/net/ip.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::x509 {

/// Simplified distinguished name: CN, optional O and C.
struct DistinguishedName {
  std::string common_name;
  std::string organization;
  std::string country;

  [[nodiscard]] Bytes encode() const;
  static DistinguishedName decode(BytesView der_name);

  friend bool operator==(const DistinguishedName&, const DistinguishedName&) = default;
};

/// A subjectAltName entry: DNS name or IPv4 address.
struct SanEntry {
  enum class Kind : std::uint8_t { dns, ip };
  Kind kind = Kind::dns;
  std::string dns_name;  // valid when kind == dns
  net::IPv4 ip;          // valid when kind == ip

  static SanEntry dns(std::string name) {
    SanEntry e;
    e.kind = Kind::dns;
    e.dns_name = std::move(name);
    return e;
  }
  static SanEntry address(net::IPv4 ip) {
    SanEntry e;
    e.kind = Kind::ip;
    e.ip = ip;
    return e;
  }

  friend bool operator==(const SanEntry&, const SanEntry&) = default;
};

/// A raw X.509 v3 extension.
struct Extension {
  asn1::Oid oid;
  bool critical = false;
  Bytes value;  ///< DER contents of the extnValue OCTET STRING

  friend bool operator==(const Extension&, const Extension&) = default;
};

/// Encodes a SAN extension value from entries, preserving the given order —
/// order preservation is load-bearing for the GlobalSign bug reproduction.
Bytes encode_san_value(const std::vector<SanEntry>& entries);
/// Decodes a SAN extension value.
std::vector<SanEntry> decode_san_value(BytesView value);

/// The to-be-signed certificate body.
struct TbsCertificate {
  Bytes serial;  ///< unsigned big-endian magnitude
  DistinguishedName issuer;
  DistinguishedName subject;
  SimTime not_before;
  SimTime not_after;
  crypto::SignatureScheme key_scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  Bytes public_key;  ///< scheme-dependent public key bytes
  std::vector<Extension> extensions;  ///< encoded in this exact order

  [[nodiscard]] Bytes encode() const;
  static TbsCertificate decode(BytesView der);

  // -- extension helpers --
  [[nodiscard]] const Extension* find_extension(const asn1::Oid& oid) const;
  [[nodiscard]] bool has_extension(const asn1::Oid& oid) const {
    return find_extension(oid) != nullptr;
  }
  void add_extension(Extension ext) { extensions.push_back(std::move(ext)); }
  /// Removes all extensions with the OID; returns how many were removed.
  std::size_t remove_extension(const asn1::Oid& oid);

  [[nodiscard]] std::vector<SanEntry> san_entries() const;
  /// All DNS names the certificate binds: subject CN when it looks like a
  /// DNS name, plus SAN dNSName entries (deduplicated, order preserved).
  [[nodiscard]] std::vector<std::string> dns_names() const;

  friend bool operator==(const TbsCertificate&, const TbsCertificate&) = default;
};

/// A signed certificate (or precertificate, when the poison is present).
struct Certificate {
  TbsCertificate tbs;
  crypto::SignatureBlob signature;

  [[nodiscard]] Bytes encode() const;
  static Certificate decode(BytesView der);

  /// SHA-256 over the DER encoding.
  [[nodiscard]] crypto::Digest fingerprint() const;

  [[nodiscard]] bool is_precertificate() const;
  /// The embedded SCT list extension value, if present.
  [[nodiscard]] std::optional<Bytes> sct_list_value() const;

  /// Verifies the CA signature given the issuer's public key bytes.
  [[nodiscard]] bool verify(BytesView issuer_public_key) const;

  friend bool operator==(const Certificate&, const Certificate&) = default;
};

/// RFC 6962 §3.2: the TBS bytes covered by an SCT over a precertificate —
/// the certificate's TBS with the poison and SCT-list extensions removed.
/// For a final certificate, this reconstructs what the log signed; any
/// divergence introduced by the CA between precertificate and final
/// certificate (reordered SANs, reordered extensions, swapped names)
/// invalidates the embedded SCT.
Bytes precert_tbs_bytes(const TbsCertificate& tbs);

/// Minimal big-endian serial-number magnitude for a 64-bit value.
Bytes serial_bytes(std::uint64_t serial);

/// DER encoding of an ECDSA signature (SEQUENCE of two INTEGERs) — the
/// form real X.509 certificates carry; the crypto layer's raw form is the
/// fixed 64-byte r||s.
Bytes ecdsa_signature_to_der(const crypto::EcdsaSignature& sig);
/// Parses the DER form back; throws std::invalid_argument when malformed.
crypto::EcdsaSignature ecdsa_signature_from_der(BytesView der);

/// Fluent builder for certificates.
class CertificateBuilder {
 public:
  CertificateBuilder& serial(std::uint64_t serial);
  CertificateBuilder& issuer(DistinguishedName dn);
  CertificateBuilder& subject_cn(std::string cn);
  CertificateBuilder& validity(SimTime not_before, SimTime not_after);
  CertificateBuilder& subject_key(const crypto::Signer& subject_signer);
  CertificateBuilder& add_dns_san(std::string name);
  CertificateBuilder& add_ip_san(net::IPv4 ip);
  /// Marks as a precertificate (adds the critical poison extension).
  CertificateBuilder& poison();
  /// Adds an arbitrary extension.
  CertificateBuilder& extension(Extension ext);

  /// Finalizes the SAN extension (if any SANs were added) and returns the
  /// TBS. The builder can keep being used afterwards.
  [[nodiscard]] TbsCertificate build_tbs() const;
  /// Builds and signs with the issuing CA's key.
  [[nodiscard]] Certificate sign(const crypto::Signer& ca_signer) const;

 private:
  TbsCertificate tbs_;
  std::vector<SanEntry> sans_;
  bool poison_ = false;
};

}  // namespace ctwatch::x509
