// Well-known OIDs used by the certificate layer.
#pragma once

#include "ctwatch/asn1/der.hpp"

namespace ctwatch::x509::oids {

/// id-at-commonName (2.5.4.3)
const asn1::Oid& common_name();
/// id-at-organizationName (2.5.4.10)
const asn1::Oid& organization();
/// id-at-countryName (2.5.4.6)
const asn1::Oid& country();

/// subjectAltName (2.5.29.17)
const asn1::Oid& subject_alt_name();
/// basicConstraints (2.5.29.19)
const asn1::Oid& basic_constraints();
/// keyUsage (2.5.29.15)
const asn1::Oid& key_usage();

/// RFC 6962 precertificate poison (1.3.6.1.4.1.11129.2.4.3)
const asn1::Oid& ct_poison();
/// RFC 6962 embedded SCT list (1.3.6.1.4.1.11129.2.4.2)
const asn1::Oid& ct_sct_list();

/// id-ecPublicKey (1.2.840.10045.2.1)
const asn1::Oid& ec_public_key();
/// prime256v1 / secp256r1 (1.2.840.10045.3.1.7)
const asn1::Oid& p256();
/// ecdsa-with-SHA256 (1.2.840.10045.4.3.2)
const asn1::Oid& ecdsa_with_sha256();
/// Private-arc OID marking the simulated MAC signature scheme.
const asn1::Oid& simulated_signature();

}  // namespace ctwatch::x509::oids
