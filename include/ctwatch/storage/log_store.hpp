// Durable, crash-recoverable log storage for a CT log service.
//
// On-disk layout (all inside one directory, all through storage::Env so
// the deterministic crash model applies):
//
//   wal.log      — CRC-framed entry + seal records since the last
//                  checkpoint. fsyncing a batch's seal frame IS the
//                  durability commit point.
//   tiles.seg    — fixed-size checksummed tile pages of leaf hashes
//                  (append-only, last page wins per tile index).
//   entries.seg  — CRC-framed entry records, the full integrated log
//                  (appended at checkpoint time from the WAL's batches).
//   manifest.log — CRC-framed checkpoint records; the newest valid one
//                  anchors recovery. Written *after* the segment files
//                  are fsync'd, and the WAL is reset only after the
//                  manifest is fsync'd, so every crash window recovers.
//
// Recovery (LogStore::open on an existing directory):
//   1. scan the manifest, take the newest valid checkpoint;
//   2. load + CRC-validate tile pages up to the checkpointed size, and
//      the entry segment's checkpointed prefix;
//   3. fold every leaf hash into a fresh RootAccumulator and require the
//      root to equal the checkpoint STH's root hash — the checkpoint is
//      *cryptographically* verified, not trusted;
//   4. replay the WAL: entries stage by index, each seal folds its batch
//      and must reproduce the sealed root hash exactly;
//   5. entry frames after the last durable seal are unsealed submissions
//      the crash interrupted — counted in the report and discarded (the
//      log never serves a root it cannot prove);
//   6. truncate torn tails so the garbage can never be re-read.
//
// Failure semantics are fail-stop: the first IO error (real or injected)
// poisons the store — every later commit refuses with the sticky error,
// so a leaf index is never written twice into the WAL and the in-memory
// tree can keep serving the last durable state read-only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/storage/codec.hpp"
#include "ctwatch/storage/file.hpp"

namespace ctwatch::storage {

struct LogStoreOptions {
  std::string dir;
  /// Optional fault seams (not owned; nullptr disables chaos).
  chaos::FaultInjector* chaos = nullptr;
  std::string chaos_prefix = "storage";
  /// Checkpoint (tile flush + manifest record + WAL reset) every N
  /// committed batches. 0 means only on close()/explicit checkpoint().
  std::uint32_t checkpoint_interval_batches = 32;
  /// Seeds the crash model's deterministic torn-tail draws.
  std::uint64_t torn_seed = 0x7061676563616368ULL;
};

/// What open() found and did. Every field is also exposed as obs metrics.
struct RecoveryReport {
  bool opened_fresh = false;          ///< no prior state on disk
  std::uint64_t tree_size = 0;        ///< recovered tree size
  std::uint64_t checkpoint_tree_size = 0;  ///< size at the manifest anchor
  std::uint64_t replayed_batches = 0;      ///< WAL seals applied
  std::uint64_t replayed_entries = 0;      ///< WAL entries applied
  std::uint64_t discarded_unsealed = 0;    ///< entries with no durable seal
  std::uint64_t wal_torn_bytes = 0;        ///< truncated from wal.log
  std::uint64_t manifest_torn_bytes = 0;   ///< truncated from manifest.log
  std::uint64_t stale_wal_records = 0;     ///< pre-checkpoint frames skipped
  std::uint64_t recovery_us = 0;
};

/// One sealed batch, handed to commit_batch(). The STH must be signed
/// already: storage persists it verbatim so recovery can serve the exact
/// bytes that were committed (re-signing after a crash would fork the
/// log's own history).
struct BatchCommit {
  std::vector<DurableEntry> entries;  ///< indices contiguous from tree_size()
  ct::SignedTreeHead sth;             ///< tree_size == old size + entries
  std::uint64_t seal_seq = 0;
};

class LogStore {
 public:
  struct Open {
    std::unique_ptr<LogStore> store;  ///< null on failure
    IoError error = IoError::none;
    std::string detail;               ///< human-readable failure context
  };

  /// Opens (creating or recovering) the store. Never throws; a corrupt
  /// or unreadable directory comes back as {nullptr, error, detail}.
  static Open open(LogStoreOptions options);
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Makes one sealed batch durable: entry frames + seal frame into the
  /// WAL, then fsync. On ok, the batch survives any crash. Validates
  /// that the entries extend the tree contiguously and that folding them
  /// reproduces sth.root_hash before writing anything (a mismatch is a
  /// caller bug surfaced as IoError::corrupt, not a disk write).
  /// May run a checkpoint afterwards per checkpoint_interval_batches; a
  /// checkpoint failure after a successful commit still returns ok (the
  /// batch IS durable) but poisons the store for later commits.
  IoResult commit_batch(const BatchCommit& batch);

  /// Flushes tiles + entry segment, appends a manifest checkpoint, and
  /// resets the WAL. Safe at any batch boundary.
  IoResult checkpoint();

  /// Checkpoint + release file handles. The store refuses writes after.
  IoResult close();

  /// True once any IO error has latched; the sticky error explains why.
  [[nodiscard]] bool failed() const { return last_error_ != IoError::none; }
  [[nodiscard]] IoError last_error() const { return last_error_; }

  [[nodiscard]] std::uint64_t tree_size() const { return accumulator_.size(); }
  [[nodiscard]] std::uint64_t seal_seq() const { return seal_seq_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }

  /// The last durable STH (nullopt on a fresh, still-empty store).
  [[nodiscard]] const std::optional<ct::SignedTreeHead>& durable_sth() const { return sth_; }
  [[nodiscard]] const ct::RootAccumulator& accumulator() const { return accumulator_; }
  [[nodiscard]] std::uint64_t last_timestamp_ms() const { return last_timestamp_ms_; }

  /// The recovered entries [0, tree_size), in index order. Destructive:
  /// the service adopts them into its own stores once, at startup.
  std::vector<DurableEntry> take_recovered_entries() { return std::move(recovered_entries_); }

  /// The underlying Env — harnesses use it for the crash hook
  /// (Env::crash_now) and the write-op ordinal clock (Env::write_ops).
  [[nodiscard]] Env& env() { return *env_; }

 private:
  LogStore(LogStoreOptions options, std::unique_ptr<Env> env)
      : options_(std::move(options)), env_(std::move(env)) {}

  /// Recovery pipeline (see file comment). Fills every member; returns
  /// none on success, with `detail` explaining any failure.
  IoError recover(std::string& detail);

  IoResult fail_with(IoError error);
  IoResult write_dirty_tiles();

  LogStoreOptions options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<File> wal_;
  std::unique_ptr<File> tiles_;
  std::unique_ptr<File> entries_;
  std::unique_ptr<File> manifest_;

  IoError last_error_ = IoError::none;
  bool closed_ = false;

  ct::RootAccumulator accumulator_;
  std::vector<crypto::Digest> leaves_;  ///< all leaf hashes (tile source)
  std::optional<ct::SignedTreeHead> sth_;
  std::uint64_t seal_seq_ = 0;
  std::uint64_t last_timestamp_ms_ = 0;

  std::uint64_t tiles_persisted_leaves_ = 0;  ///< leaves covered by tiles.seg
  Bytes entry_frames_pending_;  ///< framed entry records awaiting entries.seg
  std::uint32_t batches_since_checkpoint_ = 0;

  RecoveryReport recovery_;
  std::vector<DurableEntry> recovered_entries_;
};

}  // namespace ctwatch::storage
