// Durable, crash-recoverable log storage for a CT log service.
//
// On-disk layout (all inside one directory, all through storage::Env so
// the deterministic crash model applies):
//
//   wal.log      — CRC-framed entry + seal records since the last
//                  checkpoint. fsyncing a batch's seal frame IS the
//                  durability commit point.
//   tiles.seg    — fixed-size checksummed tile pages of leaf hashes and
//                  interior hashes (append-only, last page wins per
//                  (level, tile index); upper levels only written full).
//   entries.seg  — CRC-framed entry records, the full integrated log
//                  (appended at checkpoint time from the WAL's batches).
//   manifest.log — CRC-framed checkpoint records; the newest valid one
//                  anchors recovery. Written *after* the segment files
//                  are fsync'd, and the WAL is reset only after the
//                  manifest is fsync'd, so every crash window recovers.
//
// Memory model: the store is OUT OF CORE. Only the unsealed tail is
// resident — the leaves past the last checkpoint's tile floor plus the
// WAL's replayed entries; everything checkpointed is served by pread
// through a sharded tile cache (leaf hashes, proof subtree roots) and a
// sparse-indexed segment reader (entry records). Recovery streams the
// segments in O(page) memory, so reopening a store costs O(WAL tail)
// residency regardless of tree size.
//
// Recovery (LogStore::open on an existing directory):
//   1. scan the manifest, take the newest valid checkpoint;
//   2. stream tiles.seg, CRC-validating every page into a (level, tile)
//      -> offset directory; require complete level-0 coverage of the
//      checkpointed tree and complete full upper pages;
//   3. verify the checkpoint *cryptographically*: in `full` mode every
//      leaf hash is re-folded (streaming, O(page) memory) and every
//      upper tile entry recomputed, and the root + frontier must equal
//      the checkpoint's; in `structural` mode the frontier is restored
//      directly (O(log n)) after its shape and root are checked — for
//      reopening huge stores where a full refold is a deliberate,
//      flagged tradeoff;
//   4. stream entries.seg, CRC-checking frames and seeding the sparse
//      entry index (full mode also cross-checks each record against the
//      tile leaves);
//   5. replay the WAL: entries stage by index, each seal folds its batch
//      and must reproduce the sealed root hash exactly; entries after
//      the last durable seal are discarded, visibly;
//   6. truncate torn tails so the garbage can never be re-read.
//
// Failure semantics are fail-stop: the first IO error (real or injected)
// poisons the store — every later commit refuses with the sticky error,
// so a leaf index is never written twice into the WAL and the in-memory
// tree can keep serving the last durable state read-only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/storage/codec.hpp"
#include "ctwatch/storage/file.hpp"
#include "ctwatch/storage/segment_reader.hpp"
#include "ctwatch/storage/tile_cache.hpp"

namespace ctwatch::storage {

struct LogStoreOptions {
  std::string dir;
  /// Optional fault seams (not owned; nullptr disables chaos).
  chaos::FaultInjector* chaos = nullptr;
  std::string chaos_prefix = "storage";
  /// Checkpoint (tile flush + manifest record + WAL reset) every N
  /// committed batches. 0 means only on close()/explicit checkpoint().
  std::uint32_t checkpoint_interval_batches = 32;
  /// Seeds the crash model's deterministic torn-tail draws.
  std::uint64_t torn_seed = 0x7061676563616368ULL;

  /// How hard recovery re-verifies the checkpoint. `full` re-folds every
  /// leaf (O(n) time, O(page) memory). `structural` restores the frontier
  /// and trusts page CRCs (O(tail) time) — for reopening stores whose
  /// full refold was already done by the writer that checkpointed them.
  enum class Verify { full, structural };
  Verify recovery_verify = Verify::full;

  /// Byte budget / sharding for the tile page cache (the read path's
  /// only O(size)-free memory knob).
  std::size_t tile_cache_bytes = std::size_t{64} << 20;
  unsigned tile_cache_shards = 8;
  /// One entry-segment index mark per this many records.
  std::uint64_t entry_index_stride = 64;
};

/// What open() found and did. Every field is also exposed as obs metrics.
struct RecoveryReport {
  bool opened_fresh = false;          ///< no prior state on disk
  std::uint64_t tree_size = 0;        ///< recovered tree size
  std::uint64_t checkpoint_tree_size = 0;  ///< size at the manifest anchor
  std::uint64_t replayed_batches = 0;      ///< WAL seals applied
  std::uint64_t replayed_entries = 0;      ///< WAL entries applied
  std::uint64_t discarded_unsealed = 0;    ///< entries with no durable seal
  std::uint64_t wal_torn_bytes = 0;        ///< truncated from wal.log
  std::uint64_t manifest_torn_bytes = 0;   ///< truncated from manifest.log
  std::uint64_t stale_wal_records = 0;     ///< pre-checkpoint frames skipped
  std::uint64_t tile_pages_scanned = 0;    ///< pages CRC-checked in tiles.seg
  std::uint64_t tile_pages_invalid = 0;    ///< superseded/garbage pages skipped
  std::uint64_t recovery_us = 0;
};

/// One sealed batch, handed to commit_batch(). The STH must be signed
/// already: storage persists it verbatim so recovery can serve the exact
/// bytes that were committed (re-signing after a crash would fork the
/// log's own history).
struct BatchCommit {
  std::vector<DurableEntry> entries;  ///< indices contiguous from tree_size()
  ct::SignedTreeHead sth;             ///< tree_size == old size + entries
  std::uint64_t seal_seq = 0;
};

class LogStore {
 public:
  struct Open {
    std::unique_ptr<LogStore> store;  ///< null on failure
    IoError error = IoError::none;
    std::string detail;               ///< human-readable failure context
  };

  /// Opens (creating or recovering) the store. Never throws; a corrupt
  /// or unreadable directory comes back as {nullptr, error, detail}.
  static Open open(LogStoreOptions options);
  ~LogStore();

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Makes one sealed batch durable: entry frames + seal frame into the
  /// WAL, then fsync. On ok, the batch survives any crash. Validates
  /// that the entries extend the tree contiguously and that folding them
  /// reproduces sth.root_hash before writing anything (a mismatch is a
  /// caller bug surfaced as IoError::corrupt, not a disk write).
  /// May run a checkpoint afterwards per checkpoint_interval_batches; a
  /// checkpoint failure after a successful commit still returns ok (the
  /// batch IS durable) but poisons the store for later commits.
  IoResult commit_batch(const BatchCommit& batch);

  /// Flushes tiles + entry segment, appends a manifest checkpoint, and
  /// resets the WAL. Safe at any batch boundary. On success the resident
  /// tail shrinks to the last partial tile — everything else is paged.
  IoResult checkpoint();

  /// Checkpoint + release write handles. The store refuses writes after;
  /// the read path (tile cache, entry reader) keeps serving.
  IoResult close();

  /// True once any IO error has latched; the sticky error explains why.
  [[nodiscard]] bool failed() const { return last_error_ != IoError::none; }
  [[nodiscard]] IoError last_error() const { return last_error_; }

  [[nodiscard]] std::uint64_t tree_size() const { return accumulator_.size(); }
  [[nodiscard]] std::uint64_t seal_seq() const { return seal_seq_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }

  /// The last durable STH (nullopt on a fresh, still-empty store).
  [[nodiscard]] const std::optional<ct::SignedTreeHead>& durable_sth() const { return sth_; }
  [[nodiscard]] const ct::RootAccumulator& accumulator() const { return accumulator_; }
  [[nodiscard]] std::uint64_t last_timestamp_ms() const { return last_timestamp_ms_; }

  // --- the paged read path ---

  /// Leaves covered by durable, directory-published tile pages. Proofs
  /// resolve subtrees below this watermark from the cache; [tail_base,
  /// tree_size) is resident.
  [[nodiscard]] std::uint64_t paged_leaves() const { return directory_->paged_leaves(); }
  /// Entry records servable from entries.seg: [0, paged_entries).
  [[nodiscard]] std::uint64_t paged_entries() const { return reader_->entries(); }
  /// First resident leaf index (tile floor of the persistence watermark).
  [[nodiscard]] std::uint64_t tail_base() const { return tail_base_; }
  /// Resident leaf hashes — the O(tail) bound tests assert on.
  [[nodiscard]] std::uint64_t resident_leaves() const { return tail_leaves_.size(); }
  /// Leaf hash at `index` (must be >= tail_base()). Paged indices go
  /// through the cache or stream_paged_leaves instead.
  [[nodiscard]] crypto::Digest tail_leaf(std::uint64_t index) const {
    return tail_leaves_.at(static_cast<std::size_t>(index - tail_base_));
  }

  [[nodiscard]] TileCache& tile_cache() { return *cache_; }
  [[nodiscard]] SegmentReader& entry_reader() { return *reader_; }

  /// Decodes entries [start, start+count) of entries.seg into `out`
  /// (appended). Only the paged prefix: start+count <= paged_entries().
  IoError read_entries(std::uint64_t start, std::uint64_t count,
                       std::vector<DurableEntry>& out) const {
    return reader_->read(start, count, out);
  }

  /// The WAL-tail entries recovery replayed — [checkpoint_tree_size,
  /// tree_size at open), the only entries not yet in entries.seg.
  /// O(WAL tail), never O(tree).
  [[nodiscard]] const std::vector<DurableEntry>& wal_tail() const { return wal_tail_entries_; }
  /// Destructive variant: the service adopts them once, at startup.
  std::vector<DurableEntry> take_wal_tail() { return std::move(wal_tail_entries_); }

  /// Streams leaf hashes [begin, end) (end <= paged_leaves()) through
  /// `fn` in tile-page chunks: fn(first_index, hashes, count). `fn`
  /// returning false stops the stream early (still IoError::none).
  IoError stream_paged_leaves(
      std::uint64_t begin, std::uint64_t end,
      const std::function<bool(std::uint64_t, const crypto::Digest*, std::uint64_t)>& fn);

  /// A proof source over this store's pages + resident tail. Valid while
  /// the store lives; construct one per query.
  [[nodiscard]] PagedLeafSource leaf_source();

  /// The underlying Env — harnesses use it for the crash hook
  /// (Env::crash_now) and the write-op ordinal clock (Env::write_ops).
  [[nodiscard]] Env& env() { return *env_; }

 private:
  LogStore(LogStoreOptions options, std::unique_ptr<Env> env)
      : options_(std::move(options)), env_(std::move(env)) {}

  /// Recovery pipeline (see file comment). Fills every member; returns
  /// none on success, with `detail` explaining any failure.
  IoError recover(std::string& detail);

  IoResult fail_with(IoError error);

  /// One tile page appended this checkpoint, to publish post-sync.
  struct PendingTile {
    unsigned level;
    std::uint64_t tile;
    std::uint64_t offset;
    std::uint32_t count;
  };
  IoResult write_dirty_tiles(std::vector<PendingTile>& written);
  /// Feeds one completed perfect-subtree root into the upper-tile
  /// cascade, appending any level that fills to 256.
  IoResult cascade_entry(unsigned level, const crypto::Digest& digest,
                         std::vector<PendingTile>& written, Bytes& page);

  LogStoreOptions options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<File> wal_;
  std::unique_ptr<File> tiles_;
  std::unique_ptr<File> entries_;
  std::unique_ptr<File> manifest_;

  IoError last_error_ = IoError::none;
  bool closed_ = false;

  ct::RootAccumulator accumulator_;
  std::vector<crypto::Digest> tail_leaves_;  ///< [tail_base_, tree_size)
  std::uint64_t tail_base_ = 0;              ///< tile floor of the watermark
  std::optional<ct::SignedTreeHead> sth_;
  std::uint64_t seal_seq_ = 0;
  std::uint64_t last_timestamp_ms_ = 0;

  std::uint64_t tiles_persisted_leaves_ = 0;  ///< leaves covered by tiles.seg
  /// Partial upper-tile entries per level (index 0 unused) and full
  /// pages already written per level — the cascade's cursor.
  std::vector<std::vector<crypto::Digest>> upper_pending_;
  std::vector<std::uint64_t> upper_written_;
  Bytes entry_frames_pending_;  ///< framed entry records awaiting entries.seg
  /// (index, offset within entry_frames_pending_) for every future index
  /// mark — only indices at the stride, so O(pending / stride).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> pending_entry_marks_;
  std::uint32_t batches_since_checkpoint_ = 0;

  /// Read-path state. The directory and cache are shared with any
  /// outstanding PagedLeafSource pins.
  std::shared_ptr<TileDirectory> directory_;
  std::shared_ptr<const RandomReadFile> tile_read_;
  std::shared_ptr<const RandomReadFile> entry_read_;
  std::unique_ptr<TileCache> cache_;
  std::unique_ptr<SegmentReader> reader_;

  RecoveryReport recovery_;
  std::vector<DurableEntry> wal_tail_entries_;  ///< replayed, not yet in entries.seg
};

}  // namespace ctwatch::storage
