// Checksummed fixed-size Merkle tiles (subtree pages).
//
// The leaf-hash store is paged: tile t holds leaf hashes
// [t*256, t*256+256) — a perfect depth-8 subtree's worth, the same page
// geometry the C2SP tlog-tiles layout and certificate-transparency-go
// use. Pages are a fixed 8212 bytes on disk:
//
//   [u32 magic][u32 masked crc][u64 tile_index][u16 count][u16 zero]
//   [256 x 32-byte leaf hashes, unused slots zero]
//
// The tile segment file is append-only: a *partial* tail tile is written
// again (fuller) at each checkpoint, and recovery keeps the LAST valid
// page for each tile index — "last wins" turns in-place update, the
// classic crash hazard, into append-plus-supersede. Every page is
// validated by CRC on load; a missing or short tile below the manifest's
// tree size is a hard corruption (checkpointed pages were fsync'd before
// the manifest record that references them, so a crash cannot produce
// it — only disk damage can).
//
// This page format is deliberately proof-shaped: one tile is the leaf
// level of a 256-wide subtree, so a future out-of-core read path can mmap
// the segment and serve inclusion proofs touching O(log n / 8) pages.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/storage/file.hpp"

namespace ctwatch::storage {

inline constexpr std::uint64_t kTileLeaves = 256;           ///< leaves per tile (depth-8 subtree)
inline constexpr std::uint32_t kTileMagic = 0x43545431;     ///< "CTT1"
inline constexpr std::size_t kTilePageBytes = 20 + kTileLeaves * 32;

/// Serializes one tile page. `count` in [1, kTileLeaves]; `leaves` holds
/// `count` digests for tile `tile_index`.
void encode_tile_page(Bytes& out, std::uint64_t tile_index,
                      const crypto::Digest* leaves, std::uint64_t count);

struct TilePage {
  std::uint64_t tile_index = 0;
  std::uint64_t count = 0;
  std::vector<crypto::Digest> leaves;
};

/// Decodes + CRC-validates one page; nullopt if invalid.
std::optional<TilePage> decode_tile_page(BytesView page);

struct TileLoad {
  std::vector<crypto::Digest> leaves;  ///< [0, tree_size) on success
  std::uint64_t pages_read = 0;
  std::uint64_t pages_invalid = 0;     ///< CRC/structure failures skipped
  IoError error = IoError::none;       ///< corrupt when coverage is incomplete
};

/// Reassembles the first `tree_size` leaves from a tile segment image
/// (reading at most `limit_bytes` of it — the manifest's recorded segment
/// size, so garbage past the checkpoint is never parsed). Later pages for
/// the same tile index supersede earlier ones.
TileLoad load_tiles(BytesView segment, std::uint64_t limit_bytes, std::uint64_t tree_size);

}  // namespace ctwatch::storage
