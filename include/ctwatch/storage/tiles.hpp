// Checksummed fixed-size Merkle tiles (subtree pages).
//
// The hash store is paged: a level-0 tile t holds leaf hashes
// [t*256, t*256+256) — a perfect depth-8 subtree's worth, the same page
// geometry the C2SP tlog-tiles layout and certificate-transparency-go
// use. Pages are a fixed 8212 bytes on disk:
//
//   [u32 magic][u32 masked crc][u64 tile_index][u16 count][u8 level][u8 zero]
//   [256 x 32-byte hashes, unused slots zero]
//
// Levels above 0 hold interior hashes: entry i of a level-L tile t is
// the root of the perfect subtree over leaves
// [(t*256+i) * 256^L, (t*256+i+1) * 256^L) — so an inclusion proof walks
// O(log n / 8) pages instead of a resident tree. Upper-level pages are
// only ever written FULL (partial upper entries are derived data the
// writer keeps in memory and recovery recomputes from the level below),
// which keeps the last-wins rule confined to level 0. The level byte
// occupies a header slot that was always written as zero before — old
// segments decode as all-level-0, byte-identically.
//
// The tile segment file is append-only: a *partial* tail tile (level 0)
// is written again (fuller) at each checkpoint, and recovery keeps the
// LAST valid page for each (level, tile index) — "last wins" turns
// in-place update, the classic crash hazard, into append-plus-supersede.
// Every page is validated by CRC on load; a missing or short tile below
// the manifest's tree size is a hard corruption (checkpointed pages were
// fsync'd before the manifest record that references them, so a crash
// cannot produce it — only disk damage can).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/storage/file.hpp"

namespace ctwatch::storage {

inline constexpr std::uint64_t kTileLeaves = 256;           ///< leaves per tile (depth-8 subtree)
inline constexpr std::uint32_t kTileMagic = 0x43545431;     ///< "CTT1"
inline constexpr std::size_t kTilePageBytes = 20 + kTileLeaves * 32;

/// Serializes one tile page. `count` in [1, kTileLeaves]; `leaves` holds
/// `count` digests for tile `tile_index` at `level` (0 = leaf hashes).
void encode_tile_page(Bytes& out, std::uint64_t tile_index,
                      const crypto::Digest* leaves, std::uint64_t count,
                      unsigned level = 0);

struct TilePage {
  std::uint64_t tile_index = 0;
  std::uint64_t count = 0;
  unsigned level = 0;
  std::vector<crypto::Digest> leaves;  ///< hashes (interior when level > 0)
};

/// Decodes + CRC-validates one page; nullopt if invalid.
std::optional<TilePage> decode_tile_page(BytesView page);

struct TileLoad {
  std::vector<crypto::Digest> leaves;  ///< [0, tree_size) on success
  std::uint64_t pages_read = 0;
  std::uint64_t pages_invalid = 0;     ///< CRC/structure failures skipped
  IoError error = IoError::none;       ///< corrupt when coverage is incomplete
};

/// Reassembles the first `tree_size` leaves from a tile segment image
/// (reading at most `limit_bytes` of it — the manifest's recorded segment
/// size, so garbage past the checkpoint is never parsed). Later pages for
/// the same tile index supersede earlier ones; upper-level pages are
/// skipped (they are derived data, not leaves).
TileLoad load_tiles(BytesView segment, std::uint64_t limit_bytes, std::uint64_t tree_size);

}  // namespace ctwatch::storage
