// Payload codecs for the storage layer's three record types.
//
// TLS-presentation-language style (big-endian, length-prefixed opaques)
// via ct::wire, matching the rest of the RFC 6962 serialization in the
// tree. Decoders are strict and non-throwing: any structural problem
// returns nullopt, which recovery treats exactly like a CRC failure on
// the enclosing frame (the record never happened).
//
//  entry      — one integrated leaf: index, timestamp, leaf hash,
//               fingerprint, issuer CN, and optionally the SignedEntry
//               body (omitted when Config::store_bodies is off; the leaf
//               hash field keeps recovery possible without it).
//  seal       — a batch commit: the freshly signed STH plus the sealed
//               range. fsyncing this frame IS the durability commit
//               point for the batch.
//  checkpoint — manifest record: the STH, the accumulator frontier, and
//               how many bytes of each segment file the checkpoint
//               covers. The newest valid checkpoint anchors recovery.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/ct/sct.hpp"
#include "ctwatch/util/encoding.hpp"

namespace ctwatch::storage {

struct DurableEntry {
  std::uint64_t index = 0;
  std::uint64_t timestamp_ms = 0;
  crypto::Digest leaf_hash{};
  crypto::Digest fingerprint{};
  std::string issuer_cn;
  bool has_body = false;
  ct::SignedEntry entry;  ///< meaningful only when has_body
};

struct SealRecord {
  std::uint64_t first_index = 0;  ///< first leaf this batch appended
  std::uint64_t seal_seq = 0;
  ct::SignedTreeHead sth;         ///< tree_size is the post-batch size
};

struct CheckpointRecord {
  ct::SignedTreeHead sth;
  std::vector<crypto::Digest> frontier;  ///< accumulator state at sth.tree_size
  std::uint64_t seal_seq = 0;
  std::uint64_t last_timestamp_ms = 0;
  std::uint64_t tile_bytes = 0;    ///< valid prefix of the tile segment
  std::uint64_t entry_bytes = 0;   ///< valid prefix of the entry segment
};

Bytes encode_entry(const DurableEntry& entry);
std::optional<DurableEntry> decode_entry(BytesView payload);

Bytes encode_seal(const SealRecord& seal);
std::optional<SealRecord> decode_seal(BytesView payload);

Bytes encode_checkpoint(const CheckpointRecord& checkpoint);
std::optional<CheckpointRecord> decode_checkpoint(BytesView payload);

}  // namespace ctwatch::storage
