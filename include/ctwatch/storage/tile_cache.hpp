// The out-of-core tile read path: directory + sharded LRU page cache.
//
// TileDirectory maps (level, tile index) -> byte offset in tiles.seg.
// Recovery builds it with one streaming CRC scan of the segment (the
// append-only last-wins layout means later pages supersede earlier ones);
// the writer extends it at each checkpoint, AFTER the pages it references
// are fsync'd — a directory entry always points at durable, CRC-valid
// bytes, which is what lets readers pread without coordinating with the
// writer.
//
// TileCache is a sharded, ref-counted LRU over those pages:
//
//   * get(level, tile, min_count) returns a pinned shared_ptr page — the
//     page stays valid while any reference is held, even if the LRU
//     evicts it meanwhile (eviction drops the cache's reference; the
//     memory is freed when the last reader lets go). No reader ever
//     observes a page being reused under it.
//   * a cached page whose count is below min_count is stale — a partial
//     tail tile superseded by a fuller rewrite — and is reloaded through
//     the directory (which always names the newest page).
//   * every load CRC-verifies the page (decode_tile_page) and checks it
//     is the page the directory promised; any mismatch returns null and
//     the caller surfaces corruption.
//   * shards bound lock contention: key -> shard by hash; each shard is
//     an independent mutex + LRU list + map with budget/shard bytes.
//
// Observability: storage.tile_cache.{hits,misses,evictions} counters,
// {bytes,pinned} gauges, and a fetch-latency histogram — all live on
// /metrics via the global registry.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ctwatch/ct/tiled.hpp"
#include "ctwatch/storage/tiles.hpp"

namespace ctwatch::storage {

/// (level, tile) -> location in tiles.seg. Thread-safe: readers look up
/// on cache misses; the single writer records at checkpoint time.
class TileDirectory {
 public:
  struct Location {
    std::uint64_t offset = 0;  ///< byte offset of the page in tiles.seg
    std::uint32_t count = 0;   ///< entries in that page
  };

  [[nodiscard]] std::optional<Location> lookup(unsigned level, std::uint64_t tile) const;

  /// Records (or supersedes — last wins) one page. Writer only, and only
  /// after the page's bytes are durable.
  void record(unsigned level, std::uint64_t tile, std::uint64_t offset, std::uint32_t count);

  /// Leaves covered by level-0 pages: the paged/resident boundary the
  /// proof math short-circuits against. Monotone; published by the
  /// writer after the covering checkpoint is durable.
  [[nodiscard]] std::uint64_t paged_leaves() const {
    return paged_leaves_.load(std::memory_order_acquire);
  }
  void set_paged_leaves(std::uint64_t leaves) {
    paged_leaves_.store(leaves, std::memory_order_release);
  }

  /// Full level-L pages recorded so far (the writer's cascade cursor).
  [[nodiscard]] std::uint64_t pages_at_level(unsigned level) const;
  [[nodiscard]] unsigned levels() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<Location>> levels_;  ///< dense per level, offset+1 (0 = absent)
  std::atomic<std::uint64_t> paged_leaves_{0};
};

struct TileCacheOptions {
  std::size_t byte_budget = std::size_t{64} << 20;  ///< across all shards
  unsigned shards = 8;
};

class TileCache {
 public:
  using PagePtr = std::shared_ptr<const TilePage>;

  TileCache(std::shared_ptr<const RandomReadFile> file,
            std::shared_ptr<const TileDirectory> directory, TileCacheOptions options);
  ~TileCache();

  TileCache(const TileCache&) = delete;
  TileCache& operator=(const TileCache&) = delete;

  /// The page at (level, tile) holding at least `min_count` entries,
  /// pinned. Null when the directory has no (sufficient) page or the
  /// load fails CRC/IO — the caller decides whether that is a recursion
  /// fallthrough (upper levels) or corruption (level 0 below the
  /// watermark).
  PagePtr get(unsigned level, std::uint64_t tile, std::uint64_t min_count);

  [[nodiscard]] const TileDirectory& directory() const { return *directory_; }

  // --- stats (also exported as obs metrics) ---
  [[nodiscard]] std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Bytes currently held by the cache's own references.
  [[nodiscard]] std::uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  /// Page references currently handed out and not yet released.
  [[nodiscard]] std::int64_t pinned() const { return pinned_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    std::mutex mu;
    std::list<std::uint64_t> lru;  ///< most recent at front
    struct Entry {
      std::shared_ptr<const TilePage> page;
      std::list<std::uint64_t>::iterator pos;
    };
    std::unordered_map<std::uint64_t, Entry> pages;
    std::size_t bytes = 0;
  };

  [[nodiscard]] PagePtr pin(std::shared_ptr<const TilePage> page);
  [[nodiscard]] std::shared_ptr<const TilePage> load(unsigned level, std::uint64_t tile,
                                                     const TileDirectory::Location& loc);

  std::shared_ptr<const RandomReadFile> file_;
  std::shared_ptr<const TileDirectory> directory_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::int64_t> pinned_{0};
};

/// Bridges ct::TileSource (the tiled proof math) to a TileCache plus a
/// resident-tail accessor. One per query, stack-constructed: every page
/// it returns stays pinned until the source dies, so TilePageViews are
/// valid across the whole proof; the paged watermark is snapshotted at
/// construction so a concurrent checkpoint cannot shear one query.
///
/// `tail(i)` serves any index the pages cannot — the unsealed resident
/// tail. The math only reaches it for i at or past the watermark (or
/// after a page *below* the watermark failed to load, which the tail fn
/// should surface by throwing: the httpd layer maps that to a 500).
class PagedLeafSource : public ct::TileSource {
 public:
  using TailFn = std::function<crypto::Digest(std::uint64_t)>;

  PagedLeafSource(TileCache& cache, std::uint64_t paged_leaves, TailFn tail)
      : cache_(cache), paged_(paged_leaves), tail_(std::move(tail)) {}

  [[nodiscard]] std::uint64_t paged_leaves() const override { return paged_; }
  bool page(unsigned level, std::uint64_t tile, std::uint64_t min_count,
            ct::TilePageView& out) override;
  crypto::Digest leaf(std::uint64_t index) override { return tail_(index); }

  /// Distinct pages fetched from the cache so far — what one proof cost.
  [[nodiscard]] std::uint64_t page_fetches() const { return fetches_; }

 private:
  TileCache& cache_;
  std::uint64_t paged_;
  TailFn tail_;
  std::unordered_map<std::uint64_t, TileCache::PagePtr> held_;  ///< pins per (level,tile)
  std::uint64_t fetches_ = 0;
};

}  // namespace ctwatch::storage
