// Sparse-indexed entry reads from entries.seg, without residency.
//
// The entry segment is a WAL-framed append stream of DurableEntry
// records in index order. Frames are variable length (issuer CNs,
// optional bodies), so random access needs an index — but a dense one
// would be another O(n) resident structure. Instead:
//
//   * FrameCursor streams frames from any byte offset, validating each
//     with the exact wal_scan rules (length sanity, CRC, known type),
//     through a fixed-size pread buffer — recovery scans the whole
//     segment in O(buffer) memory, and point reads scan only the gap
//     from the nearest index mark.
//   * SegmentReader keeps one (entry index -> byte offset) mark per
//     `index_stride` frames (64 by default: ~16 B per 64 entries, a few
//     MiB per 10⁹). read(start, count) seeks to the floor mark and
//     decodes forward, skipping at most stride-1 frames.
//
// The index grows append-only: recovery seeds it for the checkpointed
// prefix, the writer extends it at each checkpoint after fsync. Readers
// and the writer synchronize on one mutex around the mark vector; the
// preads themselves are lock-free.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "ctwatch/storage/codec.hpp"
#include "ctwatch/storage/file.hpp"
#include "ctwatch/storage/wal.hpp"

namespace ctwatch::storage {

/// Streams WAL frames from a RandomReadFile byte range via buffered
/// preads. Single-threaded use; construct per scan.
class FrameCursor {
 public:
  enum class Status {
    ok,       ///< a frame was produced
    end,      ///< clean end of the range
    corrupt,  ///< invalid frame (bad length/CRC/type) before range end
    io,       ///< pread failure
  };

  /// Scans [begin, end) of `file`. The range must end on a frame
  /// boundary for Status::end — a trailing partial frame is `corrupt`
  /// (callers scanning durable, checkpoint-covered bytes treat that as
  /// hard corruption; WAL-tail semantics stay in wal_scan).
  FrameCursor(const RandomReadFile& file, std::uint64_t begin, std::uint64_t end,
              std::size_t buffer_bytes = std::size_t{1} << 20);

  /// Advances to the next frame. On `ok`, `type` and `payload` describe
  /// it; `payload` is valid until the next call.
  Status next(RecordType& type, Bytes& payload);

  /// Byte offset of the frame `next` would read — i.e. just past the
  /// last frame returned.
  [[nodiscard]] std::uint64_t offset() const { return next_frame_; }

 private:
  /// Ensures [next_frame_, next_frame_+n) is in buffer_; false on IO error.
  bool ensure(std::size_t n);

  const RandomReadFile& file_;
  std::uint64_t end_;
  std::uint64_t next_frame_;    ///< absolute offset of the next frame
  std::uint64_t buffer_base_ = 0;
  Bytes buffer_;
  std::size_t buffer_cap_;
};

/// Random access to DurableEntry records by index. Thread-safe.
class SegmentReader {
 public:
  SegmentReader(std::shared_ptr<const RandomReadFile> file, std::uint64_t index_stride = 64);

  /// Registers "entry `index` starts at byte `offset`". Marks must
  /// arrive in increasing index order (recovery, then checkpoints).
  void add_mark(std::uint64_t index, std::uint64_t offset);

  /// Extends the readable prefix: `entries` records occupying the first
  /// `bytes` of the segment are durable. Published after fsync.
  void set_coverage(std::uint64_t entries, std::uint64_t bytes);

  [[nodiscard]] std::uint64_t entries() const;
  [[nodiscard]] std::uint64_t index_stride() const { return stride_; }

  /// Decodes entries [start, start+count) into `out` (appended).
  /// Returns IoError::none on success; `corrupt` on any framing/decode/
  /// index mismatch inside the covered range; `io` on pread failure.
  /// Ranges beyond coverage() are the caller's bug -> corrupt.
  IoError read(std::uint64_t start, std::uint64_t count,
               std::vector<DurableEntry>& out) const;

 private:
  struct Mark {
    std::uint64_t index;
    std::uint64_t offset;
  };

  std::shared_ptr<const RandomReadFile> file_;
  std::uint64_t stride_;
  mutable std::mutex mu_;
  std::vector<Mark> marks_;        ///< sorted by index
  std::uint64_t entries_ = 0;      ///< covered entry count
  std::uint64_t bytes_ = 0;        ///< covered byte count
};

}  // namespace ctwatch::storage
