// ctwatch::storage — error-typed, EINTR-safe file primitives with a
// deterministic crash model.
//
// Everything durable goes through an `Env`: a directory of files plus a
// *process model* of the page cache. `File::append` buffers bytes the way
// a kernel would; `File::sync` is the only operation that makes them
// durable (flush + fsync); a clean close flushes without the durability
// guarantee (the OS would get around to it). This split is what makes
// crashes testable: when the chaos engine fires the `storage.crash` fault
// point, the Env "kills the process" — every file keeps its synced bytes
// plus a *deterministic prefix* of its unsynced tail (in-order writeback,
// possibly torn mid-record), and every subsequent operation on the Env
// fails with `IoError::crashed`. Reopening the directory through a fresh
// Env is exactly what recovery after a real SIGKILL sees.
//
// Chaos fault points, evaluated once per physical write/sync operation
// with the Env-wide op ordinal as virtual time (so an OutageWindow
// [k, 2^63) is "crash at write ordinal k" — deterministic crash-point
// injection with no new chaos machinery):
//   "storage.crash" — kill the process model at this op,
//   "storage.write" — this append fails with IoError::io (fail-stop),
//   "storage.fsync" — this sync fails with IoError::io.
//
// All real syscalls (open/write/fsync/ftruncate/read/close/unlink) retry
// EINTR and short writes; errors surface as typed IoResults, never
// errno-squinting at call sites and never exceptions on the IO path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/util/encoding.hpp"

namespace ctwatch::storage {

enum class IoError : std::uint8_t {
  none,     ///< success
  io,       ///< syscall failure or injected write/fsync fault (fail-stop)
  crashed,  ///< the Env's process model has crashed; reopen to recover
  corrupt,  ///< checksum/structure validation failed on read
  exhausted,///< a fixed capacity (store chunks, tile span) ran out
};

const char* to_string(IoError error);

struct IoResult {
  IoError error = IoError::none;

  [[nodiscard]] bool ok() const { return error == IoError::none; }
  static IoResult success() { return IoResult{}; }
  static IoResult fail(IoError error) { return IoResult{error}; }
};

class File;
class RandomReadFile;

/// A directory of files plus the crash/fault model. One Env per open
/// store; recovery constructs a fresh Env over the same directory.
/// Single-threaded by contract (the sequencer owns the write path).
class Env {
 public:
  struct Options {
    std::string dir;
    /// Optional fault seams (not owned; nullptr disables chaos).
    chaos::FaultInjector* chaos = nullptr;
    std::string chaos_prefix = "storage";
    /// Seeds the deterministic torn-tail prefix draws at crash time.
    std::uint64_t torn_seed = 0x7061676563616368ULL;  // "pagecach"
  };

  /// Creates the directory if needed. Returns nullptr (with `error` set
  /// when non-null) if the directory cannot be created or opened.
  static std::unique_ptr<Env> open(Options options, IoError* error = nullptr);
  ~Env();

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  [[nodiscard]] const std::string& dir() const { return options_.dir; }

  /// True once the process model has crashed; every operation on this Env
  /// (and its Files) fails with IoError::crashed from then on.
  [[nodiscard]] bool crashed() const { return crashed_; }

  /// Physical write/sync operations so far — the crash-ordinal clock.
  [[nodiscard]] std::uint64_t write_ops() const { return op_counter_; }

  /// Harness hook (tests, bench/storage_churn): kill the process model
  /// NOW, exactly as the "storage.crash" fault point would — every file
  /// keeps its synced bytes plus a deterministic prefix of its unsynced
  /// tail, and every later operation fails with IoError::crashed.
  void crash_now();

  /// Opens (creating if absent) a file for appending, truncating the
  /// on-disk image to `logical_size` first — recovery uses this to cut a
  /// torn tail before resuming appends. Pass the current on-disk size to
  /// keep everything. Returns nullptr on failure.
  std::unique_ptr<File> open_append(const std::string& name, std::uint64_t logical_size,
                                    IoError* error = nullptr);

  /// Reads the whole on-disk file. A missing file reads as empty bytes
  /// with success (recovery treats absent and empty alike).
  IoResult read_file(const std::string& name, Bytes& out) const;

  /// Opens a shared random-read handle (pread). Reads are NOT physical
  /// write ops: they never advance the crash-ordinal clock, and they keep
  /// working after the process model crashes — the read path serves the
  /// last durable state while the write path fail-stops. Thread-safe:
  /// any number of readers may read_at concurrently. Returns nullptr if
  /// the file cannot be opened (a missing file is an error here — callers
  /// only read segments that open_append already created).
  std::shared_ptr<RandomReadFile> open_read(const std::string& name,
                                            IoError* error = nullptr) const;

  [[nodiscard]] bool exists(const std::string& name) const;
  [[nodiscard]] std::uint64_t file_size(const std::string& name) const;

  /// Unlinks the file (fsyncs the directory so the removal is durable).
  /// Removing a missing file succeeds.
  IoResult remove(const std::string& name);

 private:
  friend class File;

  explicit Env(Options options) : options_(std::move(options)) {}

  [[nodiscard]] std::string path_of(const std::string& name) const;

  /// Evaluates the crash/fault points for one physical op. Returns the
  /// fault to surface (none/io) after possibly crashing the Env.
  IoError evaluate_op(const char* kind);

  IoResult sync_dir();

  Options options_;
  bool crashed_ = false;
  std::uint64_t op_counter_ = 0;
  std::vector<File*> open_files_;  // registration for crash_now; not owned
};

/// An append-only file handle with page-cache semantics (see the file
/// comment). Obtained from Env::open_append; at most one live handle per
/// file name.
class File {
 public:
  ~File();
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Buffers `data` at the logical end of file. Fails fast with
  /// IoError::crashed after a crash, IoError::io on an injected write
  /// fault (nothing buffered in that case).
  IoResult append(BytesView data);

  /// Flushes buffered bytes to disk and fsyncs: on return (ok), every
  /// byte appended so far survives any later crash.
  IoResult sync();

  /// Bytes guaranteed durable (through the last successful sync).
  [[nodiscard]] std::uint64_t durable_size() const { return synced_size_; }
  /// Logical size (durable + buffered).
  [[nodiscard]] std::uint64_t size() const { return synced_size_ + pending_.size(); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Env;

  File(Env& env, std::string name, int fd, std::uint64_t disk_size)
      : env_(env), name_(std::move(name)), fd_(fd), synced_size_(disk_size) {}

  /// Writes `pending_[0:n)` to the real file at the current end and
  /// drops those bytes from the buffer. Does not fsync.
  IoResult flush_prefix(std::size_t n);

  Env& env_;
  std::string name_;
  int fd_ = -1;
  std::uint64_t synced_size_ = 0;  ///< bytes in the on-disk image
  Bytes pending_;                  ///< appended since last flush ("page cache")
};

/// A read-only random-access handle over one file's on-disk image.
/// pread-based: no shared file offset, so concurrent readers need no
/// locking. Only bytes a checkpoint has fsync'd are meaningful to read
/// through this handle (the writer's unsynced tail lives in File's
/// buffer, not on disk — the page-cache model makes that visible).
class RandomReadFile {
 public:
  ~RandomReadFile();
  RandomReadFile(const RandomReadFile&) = delete;
  RandomReadFile& operator=(const RandomReadFile&) = delete;

  /// Reads exactly [offset, offset + out.size()) from the on-disk image.
  /// A short read (EOF inside the range) surfaces as IoError::corrupt —
  /// callers only ask for byte ranges a durable manifest vouches for.
  IoResult read_at(std::uint64_t offset, std::uint8_t* out, std::size_t n) const;

  /// On-disk size at open time (the durable image recovery scanned).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Env;
  RandomReadFile(std::string name, int fd, std::uint64_t size)
      : name_(std::move(name)), fd_(fd), size_(size) {}

  std::string name_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace ctwatch::storage
