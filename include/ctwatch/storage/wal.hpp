// Write-ahead-log record framing with torn-tail detection.
//
// Every frame is length-prefixed and checksummed:
//
//   [u32 length][u32 masked crc32c(type||payload)][u8 type][payload]
//
// `length` counts the type byte plus payload (so a frame occupies
// 8 + length bytes). Big-endian, like the rest of the RFC 6962 wire
// code. The scan rules make recovery unambiguous:
//
//  * a frame whose header runs past the buffer, whose length is zero or
//    absurd, or whose CRC does not match is a *torn tail* — everything
//    from its first byte on is discarded (and the caller truncates the
//    file there so the garbage can never be re-read as data);
//  * frames before the torn point are exactly the committed prefix.
//
// A mid-file corruption is indistinguishable from a torn tail by design:
// the WAL is a single writer's append stream, so the first bad frame ends
// the trustworthy prefix either way. (Checkpointed data is different —
// tile pages carry their own CRCs and are validated page by page.)
//
// The same framing is used for the manifest (a WAL of checkpoint
// records), which is how a crash mid-checkpoint falls back to the
// previous checkpoint for free.
#pragma once

#include <cstdint>
#include <vector>

#include "ctwatch/storage/file.hpp"

namespace ctwatch::storage {

enum class RecordType : std::uint8_t {
  entry = 1,       ///< one integrated log entry (WAL)
  seal = 2,        ///< batch commit: the STH this batch sealed (WAL)
  checkpoint = 3,  ///< durable-state snapshot pointer (manifest)
};

/// A sanity ceiling on frame length: no record the storage layer writes
/// comes near this, so anything larger is framing garbage, not data.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 26;  // 64 MiB

/// Appends one framed record to `file` (buffered until File::sync).
IoResult wal_append(File& file, RecordType type, BytesView payload);

/// Serializes a frame into `out` (the entry-segment writer reuses WAL
/// framing without owning a File).
void wal_frame(Bytes& out, RecordType type, BytesView payload);

struct WalRecord {
  RecordType type = RecordType::entry;
  BytesView payload;  ///< view into the scanned buffer
};

struct WalScan {
  std::vector<WalRecord> records;  ///< valid committed prefix, in order
  std::uint64_t valid_bytes = 0;   ///< offset of the first torn/corrupt byte
  std::uint64_t torn_bytes = 0;    ///< bytes discarded after valid_bytes
};

/// Scans a WAL image, stopping at the first frame that fails validation.
/// Never throws; the records reference `data`, which must outlive them.
WalScan wal_scan(BytesView data);

}  // namespace ctwatch::storage
