// CRC32C (Castagnoli) — the checksum guarding every durable byte.
//
// Every record the storage layer writes (WAL frames, tile pages, manifest
// checkpoints) carries a CRC32C over its payload, which is what lets
// recovery distinguish "torn tail from a crash" (expected, truncate)
// from "bit rot inside committed data" (refuse to serve). CRC32C is the
// conventional choice for this job (iSCSI, ext4, LevelDB/RocksDB): better
// error-detection spread than CRC32 and hardware support on modern x86 —
// this implementation is portable slice-by-8 software, fast enough that
// checksumming never shows up next to SHA-256 in a profile.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ctwatch/util/encoding.hpp"

namespace ctwatch::storage {

/// CRC32C over `data`, continuing from `seed` (pass the previous return
/// value to checksum a logical record split across buffers). The empty
/// input returns the seed unchanged.
std::uint32_t crc32c(BytesView data, std::uint32_t seed = 0);

/// Masked CRC for stored checksums: a CRC over data that itself contains
/// CRCs is weak (CRC is linear); storing a rotated+offset form breaks the
/// accidental-match pattern. Same trick as LevelDB.
inline std::uint32_t crc32c_mask(std::uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline std::uint32_t crc32c_unmask(std::uint32_t masked) {
  const std::uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace ctwatch::storage
