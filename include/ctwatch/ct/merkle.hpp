// RFC 6962 Merkle hash trees.
//
// Leaf hash:  MTH({d}) = SHA-256(0x00 || d)
// Node hash:  SHA-256(0x01 || left || right)
// Inclusion (audit) and consistency proofs follow RFC 6962 §2.1.
//
// The tree is what makes a CT log's append-only promise *checkable*: the
// auditor in this library verifies consistency between successive signed
// tree heads and the tests actively tamper with histories to confirm
// detection.
//
// Root and proof computation is written once, as templates over a leaf
// accessor (index -> leaf hash), so that `MerkleTree` (contiguous vector
// storage) and `logsvc`'s concurrent chunked leaf store share the exact
// same RFC 6962 math instead of duplicating it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"

namespace ctwatch::ct {

using crypto::Digest;

/// Hash of a leaf's serialized content.
Digest leaf_hash(BytesView data);
/// Interior node hash.
Digest node_hash(const Digest& left, const Digest& right);

/// SHA-256 of the empty string: the root of the empty tree per RFC 6962.
Digest empty_tree_root();

namespace detail {
/// Largest power of two strictly less than n (n >= 2).
std::uint64_t merkle_split_point(std::uint64_t n);
}  // namespace detail

/// MTH(D[begin:end]) over any leaf accessor `leaf(index) -> Digest`.
/// Requires end > begin.
template <typename LeafFn>
Digest merkle_range_root(const LeafFn& leaf, std::uint64_t begin, std::uint64_t end) {
  const std::uint64_t n = end - begin;
  if (n == 1) return leaf(begin);
  const std::uint64_t k = detail::merkle_split_point(n);
  return node_hash(merkle_range_root(leaf, begin, begin + k),
                   merkle_range_root(leaf, begin + k, end));
}

/// MTH of the first `n` leaves; the empty-tree root when n == 0.
template <typename LeafFn>
Digest merkle_root_of(const LeafFn& leaf, std::uint64_t n) {
  if (n == 0) return empty_tree_root();
  return merkle_range_root(leaf, 0, n);
}

/// PATH(m, D[0:tree_size]) per RFC 6962 §2.1.1 — the audit path proving
/// leaf `index` is in the tree of size `tree_size`. The caller must have
/// bounds-checked index < tree_size <= leaf count.
template <typename LeafFn>
std::vector<Digest> merkle_inclusion_path(const LeafFn& leaf, std::uint64_t index,
                                          std::uint64_t tree_size) {
  // Iterative over the recursion, collecting siblings root-to-leaf.
  std::uint64_t begin = 0, end = tree_size, m = index;
  std::vector<Digest> reversed;
  while (end - begin > 1) {
    const std::uint64_t k = detail::merkle_split_point(end - begin);
    if (m < begin + k) {
      reversed.push_back(merkle_range_root(leaf, begin + k, end));
      end = begin + k;
    } else {
      reversed.push_back(merkle_range_root(leaf, begin, begin + k));
      begin += k;
    }
  }
  return {reversed.rbegin(), reversed.rend()};
}

/// PROOF(old_size, D[0:new_size]) per RFC 6962 §2.1.2. The caller must
/// have bounds-checked old_size <= new_size <= leaf count.
template <typename LeafFn>
std::vector<Digest> merkle_consistency_path(const LeafFn& leaf, std::uint64_t old_size,
                                            std::uint64_t new_size) {
  if (old_size == new_size || old_size == 0) return {};
  struct Helper {
    const LeafFn& leaf;
    std::vector<Digest> subproof(std::uint64_t m, std::uint64_t begin, std::uint64_t end,
                                 bool whole) const {
      const std::uint64_t n = end - begin;
      if (m == n) {
        if (whole) return {};
        return {merkle_range_root(leaf, begin, end)};
      }
      const std::uint64_t k = detail::merkle_split_point(n);
      std::vector<Digest> out;
      if (m <= k) {
        out = subproof(m, begin, begin + k, whole);
        out.push_back(merkle_range_root(leaf, begin + k, end));
      } else {
        out = subproof(m - k, begin + k, end, false);
        out.push_back(merkle_range_root(leaf, begin, begin + k));
      }
      return out;
    }
  };
  return Helper{leaf}.subproof(old_size, 0, new_size, true);
}

/// Incremental RFC 6962 root: the binary counter of perfect-subtree
/// hashes, one stack slot per set bit of the size. O(log n) amortized per
/// leaf, O(log n) per root readout, O(log n) space — the piece a
/// high-throughput sequencer needs without retaining a second copy of
/// every leaf.
class RootAccumulator {
 public:
  /// Folds one more leaf hash into the running root.
  void add(const Digest& leaf);

  [[nodiscard]] std::uint64_t size() const { return size_; }
  [[nodiscard]] Digest root() const;

  /// The frontier: the perfect-subtree hashes, largest subtree first —
  /// exactly one per set bit of size(). This is the whole mutable state
  /// of the accumulator; ctwatch::storage serializes it into checkpoint
  /// records so recovery restores the tree head in O(log n) instead of
  /// rehashing every leaf.
  [[nodiscard]] const std::vector<Digest>& frontier() const { return stack_; }

  /// Rebuilds an accumulator from a serialized frontier. Returns nullopt
  /// unless the hash count matches popcount(size) — the shape every
  /// valid frontier must have (the caller still owes a root check
  /// against a trusted STH before serving anything from it).
  static std::optional<RootAccumulator> from_frontier(std::vector<Digest> frontier,
                                                      std::uint64_t size);

 private:
  std::vector<Digest> stack_;  // perfect-subtree hashes, largest first
  std::uint64_t size_ = 0;
};

/// An append-only Merkle tree over pre-hashed leaves.
///
/// Appends are O(log n) amortized (via RootAccumulator); proofs and
/// historic roots are computed by recursion over the stored leaf hashes.
class MerkleTree {
 public:
  /// Appends a leaf (already leaf-hashed) and returns its index.
  std::uint64_t append(const Digest& leaf);
  /// Convenience: hashes and appends raw leaf data.
  std::uint64_t append_data(BytesView data) { return append(leaf_hash(data)); }
  /// Bulk append: integrates a sealed batch of leaf hashes in one call and
  /// returns the index of the first. Equivalent to appending in order.
  std::uint64_t append_batch(std::span<const Digest> leaves);

  [[nodiscard]] std::uint64_t size() const { return leaves_.size(); }

  /// Root of the current tree. The empty tree's root is SHA-256 of the
  /// empty string, per RFC 6962.
  [[nodiscard]] Digest root() const { return accumulator_.root(); }
  /// Root of the first `n` leaves (n <= size()).
  [[nodiscard]] Digest root_at(std::uint64_t n) const;

  /// Audit path proving leaf `index` is in the tree of size `tree_size`.
  [[nodiscard]] std::vector<Digest> inclusion_proof(std::uint64_t index,
                                                    std::uint64_t tree_size) const;
  /// Consistency proof between tree sizes `old_size` <= `new_size`.
  [[nodiscard]] std::vector<Digest> consistency_proof(std::uint64_t old_size,
                                                      std::uint64_t new_size) const;

  [[nodiscard]] const Digest& leaf(std::uint64_t index) const { return leaves_.at(index); }

 private:
  std::vector<Digest> leaves_;
  RootAccumulator accumulator_;
};

/// Verifies an RFC 6962 inclusion proof.
bool verify_inclusion(const Digest& leaf, std::uint64_t index, std::uint64_t tree_size,
                      const std::vector<Digest>& proof, const Digest& root);

/// Verifies an RFC 6962 consistency proof.
bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size, const Digest& old_root,
                        const Digest& new_root, const std::vector<Digest>& proof);

}  // namespace ctwatch::ct
