// RFC 6962 Merkle hash trees.
//
// Leaf hash:  MTH({d}) = SHA-256(0x00 || d)
// Node hash:  SHA-256(0x01 || left || right)
// Inclusion (audit) and consistency proofs follow RFC 6962 §2.1.
//
// The tree is what makes a CT log's append-only promise *checkable*: the
// auditor in this library verifies consistency between successive signed
// tree heads and the tests actively tamper with histories to confirm
// detection.
#pragma once

#include <cstdint>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"

namespace ctwatch::ct {

using crypto::Digest;

/// Hash of a leaf's serialized content.
Digest leaf_hash(BytesView data);
/// Interior node hash.
Digest node_hash(const Digest& left, const Digest& right);

/// An append-only Merkle tree over pre-hashed leaves.
///
/// Appends are O(log n) amortized (binary-counter of perfect subtrees);
/// proofs and historic roots are computed by recursion over the stored
/// leaf hashes.
class MerkleTree {
 public:
  /// Appends a leaf (already leaf-hashed) and returns its index.
  std::uint64_t append(const Digest& leaf);
  /// Convenience: hashes and appends raw leaf data.
  std::uint64_t append_data(BytesView data) { return append(leaf_hash(data)); }

  [[nodiscard]] std::uint64_t size() const { return leaves_.size(); }

  /// Root of the current tree. The empty tree's root is SHA-256 of the
  /// empty string, per RFC 6962.
  [[nodiscard]] Digest root() const;
  /// Root of the first `n` leaves (n <= size()).
  [[nodiscard]] Digest root_at(std::uint64_t n) const;

  /// Audit path proving leaf `index` is in the tree of size `tree_size`.
  [[nodiscard]] std::vector<Digest> inclusion_proof(std::uint64_t index,
                                                    std::uint64_t tree_size) const;
  /// Consistency proof between tree sizes `old_size` <= `new_size`.
  [[nodiscard]] std::vector<Digest> consistency_proof(std::uint64_t old_size,
                                                      std::uint64_t new_size) const;

  [[nodiscard]] const Digest& leaf(std::uint64_t index) const { return leaves_.at(index); }

 private:
  [[nodiscard]] Digest subtree_root(std::uint64_t begin, std::uint64_t end) const;

  std::vector<Digest> leaves_;
  // Incremental root state: perfect-subtree hashes, one per set bit of size.
  std::vector<Digest> stack_;
};

/// Verifies an RFC 6962 inclusion proof.
bool verify_inclusion(const Digest& leaf, std::uint64_t index, std::uint64_t tree_size,
                      const std::vector<Digest>& proof, const Digest& root);

/// Verifies an RFC 6962 consistency proof.
bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size, const Digest& old_root,
                        const Digest& new_root, const std::vector<Digest>& proof);

}  // namespace ctwatch::ct
