// Tile-addressed RFC 6962 proof math — O(log n) page fetches.
//
// The resident proof path (merkle.hpp) recurses over an in-memory leaf
// vector: every proof touches O(n) leaves. At paper scale (10⁸–10⁹
// entries) the leaves live in checksummed 256-wide tile pages on disk,
// with upper-level tiles holding the roots of perfect 256^L-leaf
// subtrees. This header computes the SAME recursion, but short-circuits
// every perfect subtree that a persisted tile entry already names:
//
//   MTH(D[i·2^j : (i+1)·2^j])  =  fold of 2^(j mod 8) adjacent entries
//                                 of the level-(j/8) tile — one page —
//
// so an inclusion path at size n resolves from ~log2(n) tile entries
// spread over O(log n / 8) distinct pages, plus the resident tail. When
// a subtree is not fully covered by pages (it crosses the persistence
// watermark, or the upper level is still partial), the recursion falls
// through to the children and ultimately to TileSource::leaf — which is
// why the output is byte-identical to merkle_* by construction: every
// short-circuit replaces a subtree root with the same value the
// recursion would have computed.
//
// TileSource is the seam between this math and ctwatch::storage: the
// storage adapter pins cache pages for the source's lifetime, serves the
// unsealed tail from resident memory, and counts page fetches for the
// proof_page_fetches histogram.
#pragma once

#include <cstdint>
#include <vector>

#include "ctwatch/crypto/sha256.hpp"

namespace ctwatch::ct {

using crypto::Digest;

/// A borrowed view of one tile page's hash array. Valid for as long as
/// the TileSource that produced it (sources pin pages they hand out).
struct TilePageView {
  const Digest* entries = nullptr;
  std::uint64_t count = 0;
};

/// Where tiled proofs get their hashes. One source per query (cheap,
/// stack-constructed); implementations pin every page they return until
/// they are destroyed, so views stay valid across the whole proof.
class TileSource {
 public:
  virtual ~TileSource() = default;

  /// Leaves covered by persisted tile pages — the paged prefix. Captured
  /// once per query by the implementation; the math only consults pages
  /// for subtrees entirely below this watermark.
  [[nodiscard]] virtual std::uint64_t paged_leaves() const = 0;

  /// The page at (level, tile) with at least `min_count` entries, if
  /// available. Returning false is always safe — the math recurses into
  /// the level below instead (absent upper level, stale partial page).
  virtual bool page(unsigned level, std::uint64_t tile, std::uint64_t min_count,
                    TilePageView& out) = 0;

  /// Fallback leaf accessor for any index the pages cannot serve (the
  /// resident tail, or — if a level-0 page vanished below the watermark —
  /// an error the implementation may surface by throwing).
  virtual Digest leaf(std::uint64_t index) = 0;
};

/// Root of the balanced tree over `count` adjacent perfect-subtree roots
/// (count a power of two; count == 1 returns the entry itself). The fold
/// the tile cascade and the proof math share: entry i of a level-L tile
/// is fold_perfect over 256 entries of the level below.
Digest fold_perfect(const Digest* entries, std::uint64_t count);

/// MTH(D[begin:end]) — byte-identical to merkle_range_root.
Digest tiled_range_root(TileSource& source, std::uint64_t begin, std::uint64_t end);

/// MTH of the first n leaves (empty-tree root when n == 0) — byte-identical
/// to merkle_root_of.
Digest tiled_root(TileSource& source, std::uint64_t n);

/// PATH(m, D[0:tree_size]) — byte-identical to merkle_inclusion_path.
/// The caller must have bounds-checked index < tree_size.
std::vector<Digest> tiled_inclusion_path(TileSource& source, std::uint64_t index,
                                         std::uint64_t tree_size);

/// PROOF(old_size, D[0:new_size]) — byte-identical to
/// merkle_consistency_path. The caller must have bounds-checked
/// old_size <= new_size.
std::vector<Digest> tiled_consistency_path(TileSource& source, std::uint64_t old_size,
                                           std::uint64_t new_size);

}  // namespace ctwatch::ct
