// An RFC 6962 CT log server.
//
// Supports add-chain / add-pre-chain submissions with cryptographic
// validation, immediate Merkle integration, SCT issuance, signed tree
// heads, inclusion/consistency proofs, get-entries range reads, and
// streaming subscribers (the primitive behind CertStream-style monitors).
//
// Capacity modelling: the paper documents the Nimbus incident — mass
// submission overwhelmed a log into issuing bad SCTs and risking
// disqualification. A log can therefore be given a rate capacity; beyond
// it submissions fail with `overloaded`, which the simulator uses for the
// load-balance analysis of Fig. 1c.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ctwatch/ct/merkle.hpp"
#include "ctwatch/ct/sct.hpp"
#include "ctwatch/util/time.hpp"

namespace ctwatch::ct {

/// One integrated log entry.
struct LogEntry {
  std::uint64_t index = 0;
  std::uint64_t timestamp_ms = 0;
  SignedEntry signed_entry;
  x509::Certificate certificate;  ///< as submitted (precert keeps its poison)
  std::string issuer_cn;          ///< convenience for the §2 analyses
  crypto::Digest fingerprint{};   ///< SHA-256 of the submitted DER; kept even
                                  ///< in slim mode so cross-log entries of
                                  ///< one certificate can be deduplicated
};

/// The serialized MerkleTreeLeaf for an entry (RFC 6962 §3.4).
Bytes merkle_leaf_bytes(std::uint64_t timestamp_ms, const SignedEntry& entry);

struct LogConfig {
  std::string name;           ///< e.g. "Google Pilot"
  std::string operator_name;  ///< e.g. "Google"
  std::string url;            ///< e.g. "ct.googleapis.com/pilot"
  crypto::SignatureScheme scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  /// Reject submissions whose CA signature does not verify. Bulk
  /// simulations may disable this for speed (documented substitution).
  bool verify_submissions = true;
  /// Submissions per hour the log can absorb; 0 = unlimited.
  std::uint64_t capacity_per_hour = 0;
  /// Retain full entry bodies (certificate + signed entry). Bulk timeline
  /// simulations disable this and keep only (index, time, issuer) — the
  /// Merkle tree always keeps every leaf hash either way. Deduplication
  /// requires bodies and is disabled alongside.
  bool store_bodies = true;
};

enum class SubmitStatus : std::uint8_t {
  ok,
  rejected_invalid,  ///< chain did not verify
  overloaded,        ///< capacity exceeded (Nimbus incident model)
};

struct SubmitResult {
  SubmitStatus status = SubmitStatus::ok;
  std::optional<SignedCertificateTimestamp> sct;
};

class CtLog {
 public:
  /// The signing key is derived from the log's name (reproducible).
  explicit CtLog(LogConfig config);

  [[nodiscard]] const LogConfig& config() const { return config_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] Bytes public_key() const { return signer_->public_key(); }
  [[nodiscard]] LogId log_id() const;

  /// add-chain (final certificate). `issuer_public_key` is the issuing
  /// CA's key for chain validation.
  SubmitResult add_chain(const x509::Certificate& cert, BytesView issuer_public_key, SimTime now);
  /// add-pre-chain (precertificate). Rejects inputs without the poison.
  SubmitResult add_pre_chain(const x509::Certificate& precert, BytesView issuer_public_key,
                             SimTime now);

  [[nodiscard]] std::uint64_t tree_size() const { return tree_.size(); }
  [[nodiscard]] const std::vector<LogEntry>& entries() const { return entries_; }
  /// get-entries [start, start+count).
  [[nodiscard]] std::vector<LogEntry> get_entries(std::uint64_t start, std::uint64_t count) const;

  /// Signs the current tree head.
  [[nodiscard]] SignedTreeHead get_sth(SimTime now) const;
  [[nodiscard]] std::vector<Digest> get_inclusion_proof(std::uint64_t index,
                                                        std::uint64_t tree_size) const;
  [[nodiscard]] std::vector<Digest> get_consistency_proof(std::uint64_t old_size,
                                                          std::uint64_t new_size) const;

  /// Streaming subscription; the callback fires for every accepted entry.
  using Subscriber = std::function<void(const CtLog&, const LogEntry&)>;
  void subscribe(Subscriber subscriber) { subscribers_.push_back(std::move(subscriber)); }

  /// Submissions rejected for overload so far (the Fig. 1c load analysis).
  [[nodiscard]] std::uint64_t overload_rejections() const { return overload_rejections_; }

  /// TEST HOOK: corrupts the Merkle leaf at `index` in place, simulating a
  /// log that rewrote history. Subsequent proofs/roots will betray it.
  void corrupt_leaf_for_test(std::uint64_t index);

 private:
  SubmitResult submit(const x509::Certificate& cert, BytesView issuer_public_key, SimTime now,
                      EntryType type);

  LogConfig config_;
  std::unique_ptr<crypto::Signer> signer_;
  MerkleTree tree_;
  std::vector<LogEntry> entries_;
  std::map<Bytes, std::uint64_t> dedup_;  ///< fingerprint -> entry index
  std::vector<Subscriber> subscribers_;
  // Per-hour submission counts for capacity enforcement. A map (rather
  // than a single sliding window) because simulations may submit out of
  // chronological order within a day.
  std::map<std::int64_t, std::uint64_t> hourly_submissions_;
  std::uint64_t overload_rejections_ = 0;
};

}  // namespace ctwatch::ct
