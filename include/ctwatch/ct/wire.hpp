// TLS-presentation-language style byte serialization (RFC 6962 uses TLS
// framing for SCTs, tree heads and log entries).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "ctwatch/util/encoding.hpp"

namespace ctwatch::ct::wire {

inline void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

inline void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u24(Bytes& out, std::uint32_t v) {
  if (v > 0xffffff) throw std::invalid_argument("wire::put_u24: value too large");
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

inline void put_u64(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline void put_bytes(Bytes& out, BytesView data) {
  out.insert(out.end(), data.begin(), data.end());
}

/// Length-prefixed opaque vector with a u16 length.
inline void put_opaque16(Bytes& out, BytesView data) {
  if (data.size() > 0xffff) throw std::invalid_argument("wire::put_opaque16: too large");
  put_u16(out, static_cast<std::uint16_t>(data.size()));
  put_bytes(out, data);
}

/// Length-prefixed opaque vector with a u24 length (certificates).
inline void put_opaque24(Bytes& out, BytesView data) {
  put_u24(out, static_cast<std::uint32_t>(data.size()));
  put_bytes(out, data);
}

/// Sequential reader; throws std::invalid_argument on underrun.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  [[nodiscard]] bool done() const { return pos_ >= data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const BytesView b = take(2);
    return static_cast<std::uint16_t>(b[0] << 8 | b[1]);
  }
  std::uint32_t u24() {
    const BytesView b = take(3);
    return static_cast<std::uint32_t>(b[0]) << 16 | static_cast<std::uint32_t>(b[1]) << 8 | b[2];
  }
  std::uint32_t u32() {
    const BytesView b = take(4);
    return static_cast<std::uint32_t>(b[0]) << 24 | static_cast<std::uint32_t>(b[1]) << 16 |
           static_cast<std::uint32_t>(b[2]) << 8 | b[3];
  }
  std::uint64_t u64() {
    const BytesView b = take(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = v << 8 | b[static_cast<std::size_t>(i)];
    return v;
  }
  BytesView bytes(std::size_t n) { return take(n); }
  BytesView opaque16() { return take(u16()); }
  BytesView opaque24() { return take(u24()); }

 private:
  BytesView take(std::size_t n) {
    if (pos_ + n > data_.size()) throw std::invalid_argument("wire::Reader: underrun");
    const BytesView out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace ctwatch::ct::wire
