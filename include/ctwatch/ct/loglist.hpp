// The browser-side view of the CT ecosystem: the list of recognized logs
// and the Chrome CT policy.
//
// The paper's Table 1 annotates each log with its Chrome inclusion date;
// the policy model implements the "diversely operated log entries"
// requirement Chrome enforced from 2018-04: enough SCTs for the
// certificate's lifetime, with at least one Google and one non-Google log.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ctwatch/ct/log.hpp"

namespace ctwatch::ct {

struct LogListEntry {
  LogId id{};
  std::string name;
  std::string operator_name;
  Bytes public_key;
  SimTime chrome_inclusion;                 ///< when Chrome started trusting it
  std::optional<SimTime> disqualified;      ///< when Chrome stopped, if ever
  bool google_operated = false;

  [[nodiscard]] bool qualified_at(SimTime t) const {
    return t >= chrome_inclusion && (!disqualified || t < *disqualified);
  }
};

class LogList {
 public:
  void add(LogListEntry entry) { entries_.push_back(std::move(entry)); }
  /// Registers a live log object.
  void add_log(const CtLog& log, SimTime chrome_inclusion, bool google_operated);

  [[nodiscard]] const LogListEntry* find(const LogId& id) const;
  [[nodiscard]] const LogListEntry* find_by_name(const std::string& name) const;
  [[nodiscard]] const std::vector<LogListEntry>& entries() const { return entries_; }

  void disqualify(const LogId& id, SimTime when);

 private:
  std::vector<LogListEntry> entries_;
};

/// Operational health check: disqualifies logs whose overload rejections
/// exceed the threshold — the community reaction the paper describes for
/// the Nimbus incident ("resulting in a disqualification discussion").
/// Returns the names of the logs disqualified by this call.
std::vector<std::string> disqualify_overloaded_logs(LogList& list,
                                                    const std::vector<CtLog*>& logs,
                                                    std::uint64_t rejection_threshold,
                                                    SimTime when);

/// Chrome CT policy verdict for one certificate.
struct PolicyVerdict {
  bool compliant = false;
  std::size_t valid_scts = 0;
  std::size_t required_scts = 0;
  bool has_google = false;
  bool has_non_google = false;
  std::string reason;  ///< human-readable when non-compliant
};

/// Number of SCTs Chrome requires for a certificate lifetime (policy as of
/// 2018): <15 months: 2; 15–27: 3; 27–39: 4; longer: 5.
std::size_t required_sct_count(SimTime not_before, SimTime not_after);

/// Chrome's strict CT enforcement date (2018-04-18): only certificates
/// *issued on or after* this date must comply; older certificates are
/// grandfathered — which is why Fig. 2 stays flat right through April 2018
/// ("we assume this picture will change ... with gradual certificate
/// replacement").
SimTime chrome_enforcement_date();

/// True if Chrome would require CT compliance from this certificate at
/// time `now`: enforcement has begun and the certificate was issued after
/// the deadline.
bool chrome_requires_ct(SimTime not_before, SimTime now);

/// Evaluates the Chrome CT policy over the SCTs presented for a
/// certificate. `entry` must be the SignedEntry the SCTs were issued over;
/// each SCT is validated cryptographically against its log's key.
PolicyVerdict evaluate_chrome_policy(const std::vector<SignedCertificateTimestamp>& scts,
                                     const SignedEntry& entry, const LogList& logs, SimTime now,
                                     SimTime not_before, SimTime not_after);

}  // namespace ctwatch::ct
