// Signed Certificate Timestamps and Signed Tree Heads (RFC 6962).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "ctwatch/crypto/signature.hpp"
#include "ctwatch/x509/certificate.hpp"

namespace ctwatch::ct {

using LogId = std::array<std::uint8_t, 32>;  ///< SHA-256 of the log's public key

enum class EntryType : std::uint16_t {
  x509_entry = 0,     ///< a final certificate
  precert_entry = 1,  ///< a precertificate (issuer key hash + TBS)
};

/// The per-entry payload an SCT's signature covers.
struct SignedEntry {
  EntryType type = EntryType::x509_entry;
  /// x509_entry: the full certificate DER. precert_entry: the defanged TBS.
  Bytes data;
  /// precert_entry only: SHA-256 of the issuing CA's public key.
  crypto::Digest issuer_key_hash{};
};

/// Builds the SignedEntry for a final certificate.
SignedEntry make_x509_entry(const x509::Certificate& cert);
/// Builds the SignedEntry for a precertificate (poison/SCT-list stripped
/// TBS + issuer key hash). Also used to *reconstruct* what a log signed
/// from a final certificate when validating embedded SCTs.
SignedEntry make_precert_entry(const x509::Certificate& cert, BytesView issuer_public_key);

/// A Signed Certificate Timestamp: the log's inclusion promise.
struct SignedCertificateTimestamp {
  std::uint8_t version = 0;  ///< v1
  LogId log_id{};
  std::uint64_t timestamp_ms = 0;  ///< milliseconds since the Unix epoch
  Bytes extensions;
  crypto::SignatureBlob signature;

  /// TLS-style serialization (used inside the X.509 SCT-list extension and
  /// the TLS SCT extension).
  [[nodiscard]] Bytes serialize() const;
  static SignedCertificateTimestamp deserialize(BytesView data);

  friend bool operator==(const SignedCertificateTimestamp&,
                         const SignedCertificateTimestamp&) = default;
};

/// The exact byte string an SCT signature covers (RFC 6962 §3.2
/// digitally-signed struct).
Bytes sct_signing_input(const SignedCertificateTimestamp& sct, const SignedEntry& entry);

/// Verifies an SCT over an entry with the issuing log's public key bytes.
bool verify_sct(const SignedCertificateTimestamp& sct, const SignedEntry& entry,
                BytesView log_public_key);

/// Serializes a list of SCTs as a SignedCertificateTimestampList.
Bytes serialize_sct_list(const std::vector<SignedCertificateTimestamp>& scts);
/// Parses a SignedCertificateTimestampList; throws on malformed input.
std::vector<SignedCertificateTimestamp> parse_sct_list(BytesView data);

/// A Signed Tree Head.
struct SignedTreeHead {
  std::uint64_t tree_size = 0;
  std::uint64_t timestamp_ms = 0;
  crypto::Digest root_hash{};
  crypto::SignatureBlob signature;

  friend bool operator==(const SignedTreeHead&, const SignedTreeHead&) = default;
};

/// The byte string an STH signature covers (RFC 6962 §3.5 TreeHeadSignature).
Bytes sth_signing_input(const SignedTreeHead& sth);
bool verify_sth(const SignedTreeHead& sth, BytesView log_public_key);

}  // namespace ctwatch::ct
