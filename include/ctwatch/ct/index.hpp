// Search and notification services over CT logs.
//
// Two facilities the paper's ecosystem discussion references:
//
//  * `LogIndex` — a crt.sh-style queryable index across logs: look up
//    certificates by exact DNS name, by registrable domain, or by issuer
//    CN. (The paper's ref. [2] recommends querying crt.sh/censys.io when
//    targeting single domains; §5 uses bulk search over names.)
//
//  * `DomainWatcher` — a Facebook/CertSpotter-style notification service
//    (the paper's refs. [12], [23]): operators register their registrable
//    domains and get called back the moment a certificate for any name
//    under them is logged — including lookalike detection hooks.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ctwatch/ct/stream.hpp"
#include "ctwatch/dns/psl.hpp"

namespace ctwatch::ct {

/// A lightweight reference to an indexed log entry.
struct IndexedEntry {
  std::string log_name;
  std::uint64_t index = 0;
  std::uint64_t timestamp_ms = 0;
  std::string subject_cn;
  std::string issuer_cn;
  std::vector<std::string> dns_names;
  bool precertificate = false;
};

class LogIndex {
 public:
  explicit LogIndex(const dns::PublicSuffixList& psl) : psl_(&psl) {}

  /// Indexes a log's existing entries (requires store_bodies).
  void index_log(const CtLog& log);
  /// Live indexing: subscribes to the log and indexes future entries too.
  void attach(CtLog& log);

  /// Certificates carrying exactly this DNS name.
  [[nodiscard]] std::vector<IndexedEntry> by_name(const std::string& fqdn) const;
  /// Certificates carrying any name under this registrable domain
  /// (the crt.sh "%.example.com" query).
  [[nodiscard]] std::vector<IndexedEntry> by_registrable_domain(
      const std::string& domain) const;
  /// Certificates by issuer CN.
  [[nodiscard]] std::vector<IndexedEntry> by_issuer(const std::string& issuer_cn) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  void add_entry(const CtLog& log, const LogEntry& entry);

  const dns::PublicSuffixList* psl_;
  std::vector<IndexedEntry> entries_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::string, std::vector<std::size_t>> by_registrable_;
  std::map<std::string, std::vector<std::size_t>> by_issuer_;
};

/// Notification service: register registrable domains, receive a callback
/// for every newly logged certificate naming something under them.
class DomainWatcher {
 public:
  using Callback = std::function<void(const std::string& watched_domain,
                                      const IndexedEntry& entry)>;

  explicit DomainWatcher(const dns::PublicSuffixList& psl) : psl_(&psl) {}

  /// Follows a log's new entries.
  void attach(CtLog& log);
  /// Watches a registrable domain ("example.org").
  void watch(const std::string& registrable_domain, Callback callback);

  [[nodiscard]] std::uint64_t notifications_sent() const { return notifications_; }

 private:
  const dns::PublicSuffixList* psl_;
  std::map<std::string, std::vector<Callback>> watches_;
  std::uint64_t notifications_ = 0;
};

}  // namespace ctwatch::ct
