// Log auditing: checks that a log honors its append-only promise.
//
// An auditor remembers the last signed tree head it saw per log and, on
// each audit round, verifies (i) the new STH signature and (ii) a
// consistency proof from the old tree to the new one. A log that rewrites
// history cannot produce a valid proof — the tests exercise this by
// corrupting a log's tree between audits.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "ctwatch/ct/log.hpp"

namespace ctwatch::ct {

struct AuditOutcome {
  bool ok = false;
  std::string problem;  ///< empty when ok
  SignedTreeHead sth;   ///< the newly observed head
};

class LogAuditor {
 public:
  /// Fetches the log's current STH and verifies signature + consistency
  /// with the previously recorded head (if any). Records the new head on
  /// success.
  AuditOutcome audit(const CtLog& log, SimTime now);

  /// Verifies that entry `index` is included in the given (already
  /// signature-checked) tree head.
  static bool check_inclusion(const CtLog& log, std::uint64_t index, const SignedTreeHead& sth);

  [[nodiscard]] std::size_t tracked_logs() const { return last_sth_.size(); }

 private:
  std::map<std::string, SignedTreeHead> last_sth_;  // keyed by log name
};

/// Locates the log entry an SCT promises (by its Merkle leaf hash).
/// Requires the log to have been the SCT's issuer and the entry the SCT
/// was issued over. Returns std::nullopt if the promise was not honored.
std::optional<std::uint64_t> find_promised_entry(const CtLog& log,
                                                 const SignedCertificateTimestamp& sct,
                                                 const SignedEntry& entry);

/// Full SCT audit, as a monitor would do after the MMD: verify the SCT
/// signature, locate the promised entry, and verify its inclusion proof
/// against a fresh (signature-checked) tree head.
bool audit_sct_inclusion(const CtLog& log, const SignedCertificateTimestamp& sct,
                         const SignedEntry& entry, SimTime now);

}  // namespace ctwatch::ct
