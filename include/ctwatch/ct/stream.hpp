// Log-following primitives for third-party monitors.
//
// The honeypot study distinguishes two monitoring styles it observed in
// the wild: near-real-time stream processing ("e.g., CertStream") and
// batched polling. `CertStream` multiplexes live subscription over many
// logs; `BatchPoller` reads a log's new entries since its last visit.
#pragma once

#include <functional>
#include <vector>

#include "ctwatch/ct/log.hpp"

namespace ctwatch::ct {

/// Fan-out of live log entries to consumers, CertStream style.
class CertStream {
 public:
  using Callback = std::function<void(const CtLog&, const LogEntry&)>;

  /// Subscribes to a log; all registered callbacks (present and future)
  /// receive its entries.
  void attach(CtLog& log);
  /// Registers a consumer.
  void on_entry(Callback callback) { callbacks_.push_back(std::move(callback)); }

  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  std::vector<Callback> callbacks_;
  std::uint64_t delivered_ = 0;
};

/// Cursor-based poller over one log (get-entries since last poll).
class BatchPoller {
 public:
  explicit BatchPoller(const CtLog& log) : log_(&log) {}

  /// Entries appended since the previous poll.
  std::vector<LogEntry> poll();
  [[nodiscard]] std::uint64_t cursor() const { return cursor_; }

 private:
  const CtLog* log_;
  std::uint64_t cursor_ = 0;
};

}  // namespace ctwatch::ct
