#include "ctwatch/x509/redaction.hpp"

#include "ctwatch/util/strings.hpp"
#include "ctwatch/x509/oids.hpp"

namespace ctwatch::x509 {

std::string redact_dns_name(const std::string& name, std::size_t keep_labels) {
  const std::vector<std::string> labels = split(name, '.');
  if (labels.size() <= keep_labels) return name;
  std::string out = "?";
  for (std::size_t i = labels.size() - keep_labels; i < labels.size(); ++i) {
    out += "." + labels[i];
  }
  return out;
}

bool is_redacted_name(const std::string& name) { return name.rfind("?.", 0) == 0; }

const asn1::Oid& redaction_marker_oid() {
  static const asn1::Oid oid = asn1::Oid::parse("1.3.6.1.4.1.53177.1.2");
  return oid;
}

TbsCertificate redacted_tbs(const TbsCertificate& tbs, std::size_t keep_labels) {
  TbsCertificate out = tbs;
  for (auto& ext : out.extensions) {
    if (ext.oid != oids::subject_alt_name()) continue;
    std::vector<SanEntry> entries = decode_san_value(ext.value);
    for (SanEntry& entry : entries) {
      if (entry.kind == SanEntry::Kind::dns) {
        entry.dns_name = redact_dns_name(entry.dns_name, keep_labels);
      }
    }
    ext.value = encode_san_value(entries);
  }
  if (!out.subject.common_name.empty() && out.subject.common_name.find('.') != std::string::npos) {
    out.subject.common_name = redact_dns_name(out.subject.common_name, keep_labels);
  }
  return out;
}

bool uses_redaction(const TbsCertificate& tbs) {
  return tbs.has_extension(redaction_marker_oid());
}

}  // namespace ctwatch::x509
