#include "ctwatch/x509/certificate.hpp"

#include <algorithm>
#include <stdexcept>

#include "ctwatch/crypto/sha256.hpp"
#include "ctwatch/x509/oids.hpp"

namespace ctwatch::x509 {

namespace {

Bytes encode_rdn(const asn1::Oid& oid, const Bytes& encoded_value) {
  return asn1::encode_set_of({asn1::encode_sequence({asn1::encode_oid(oid), encoded_value})});
}

// AlgorithmIdentifier for a signature scheme.
Bytes encode_sig_alg(crypto::SignatureScheme scheme) {
  switch (scheme) {
    case crypto::SignatureScheme::ecdsa_p256_sha256:
      return asn1::encode_sequence({asn1::encode_oid(oids::ecdsa_with_sha256())});
    case crypto::SignatureScheme::hmac_sha256_simulated:
      return asn1::encode_sequence({asn1::encode_oid(oids::simulated_signature())});
  }
  throw std::invalid_argument("encode_sig_alg: unknown scheme");
}

crypto::SignatureScheme decode_sig_alg(BytesView der) {
  asn1::Parser parser(der);
  const asn1::Tlv seq = parser.expect(asn1::kTagSequence);
  asn1::Parser inner(seq.value);
  const asn1::Oid oid = asn1::decode_oid(inner.expect(asn1::kTagOid));
  if (oid == oids::ecdsa_with_sha256()) return crypto::SignatureScheme::ecdsa_p256_sha256;
  if (oid == oids::simulated_signature()) return crypto::SignatureScheme::hmac_sha256_simulated;
  throw std::invalid_argument("decode_sig_alg: unknown algorithm " + oid.to_string());
}

Bytes encode_spki(crypto::SignatureScheme scheme, BytesView public_key) {
  std::vector<Bytes> alg;
  switch (scheme) {
    case crypto::SignatureScheme::ecdsa_p256_sha256:
      alg = {asn1::encode_oid(oids::ec_public_key()), asn1::encode_oid(oids::p256())};
      break;
    case crypto::SignatureScheme::hmac_sha256_simulated:
      alg = {asn1::encode_oid(oids::simulated_signature())};
      break;
  }
  return asn1::encode_sequence({asn1::encode_sequence(alg), asn1::encode_bit_string(public_key)});
}

void decode_spki(BytesView der, crypto::SignatureScheme& scheme, Bytes& public_key) {
  asn1::Parser parser(der);
  asn1::Parser spki(parser.expect(asn1::kTagSequence).value);
  const asn1::Tlv alg = spki.expect(asn1::kTagSequence);
  asn1::Parser alg_parser(alg.value);
  const asn1::Oid oid = asn1::decode_oid(alg_parser.expect(asn1::kTagOid));
  if (oid == oids::ec_public_key()) {
    scheme = crypto::SignatureScheme::ecdsa_p256_sha256;
  } else if (oid == oids::simulated_signature()) {
    scheme = crypto::SignatureScheme::hmac_sha256_simulated;
  } else {
    throw std::invalid_argument("decode_spki: unknown key algorithm " + oid.to_string());
  }
  const BytesView key = asn1::decode_bit_string(spki.expect(asn1::kTagBitString));
  public_key.assign(key.begin(), key.end());
}

Bytes encode_extension(const Extension& ext) {
  std::vector<Bytes> parts;
  parts.push_back(asn1::encode_oid(ext.oid));
  if (ext.critical) parts.push_back(asn1::encode_boolean(true));  // DEFAULT FALSE omitted
  parts.push_back(asn1::encode_octet_string(ext.value));
  return asn1::encode_sequence(parts);
}

Extension decode_extension(const asn1::Tlv& tlv) {
  if (tlv.tag != asn1::kTagSequence) throw std::invalid_argument("extension: not a SEQUENCE");
  asn1::Parser parser(tlv.value);
  Extension ext;
  ext.oid = asn1::decode_oid(parser.expect(asn1::kTagOid));
  if (parser.peek_tag() == asn1::kTagBoolean) {
    ext.critical = asn1::decode_boolean(parser.next());
  }
  const asn1::Tlv value = parser.expect(asn1::kTagOctetString);
  ext.value.assign(value.value.begin(), value.value.end());
  return ext;
}

}  // namespace

Bytes DistinguishedName::encode() const {
  std::vector<Bytes> rdns;
  if (!country.empty()) {
    rdns.push_back(encode_rdn(oids::country(), asn1::encode_printable_string(country)));
  }
  if (!organization.empty()) {
    rdns.push_back(encode_rdn(oids::organization(), asn1::encode_utf8_string(organization)));
  }
  if (!common_name.empty()) {
    rdns.push_back(encode_rdn(oids::common_name(), asn1::encode_utf8_string(common_name)));
  }
  return asn1::encode_sequence(rdns);
}

DistinguishedName DistinguishedName::decode(BytesView der_name) {
  asn1::Parser parser(der_name);
  asn1::Parser rdns(parser.expect(asn1::kTagSequence).value);
  DistinguishedName dn;
  while (!rdns.done()) {
    asn1::Parser set(rdns.expect(asn1::kTagSet).value);
    asn1::Parser atv(set.expect(asn1::kTagSequence).value);
    const asn1::Oid oid = asn1::decode_oid(atv.expect(asn1::kTagOid));
    const std::string value = asn1::decode_string(atv.next());
    if (oid == oids::common_name()) {
      dn.common_name = value;
    } else if (oid == oids::organization()) {
      dn.organization = value;
    } else if (oid == oids::country()) {
      dn.country = value;
    }
    // Unknown attributes are ignored.
  }
  return dn;
}

Bytes encode_san_value(const std::vector<SanEntry>& entries) {
  std::vector<Bytes> names;
  for (const SanEntry& entry : entries) {
    switch (entry.kind) {
      case SanEntry::Kind::dns:
        names.push_back(asn1::tlv(asn1::context_tag(2, false), to_bytes(entry.dns_name)));
        break;
      case SanEntry::Kind::ip: {
        const std::uint32_t v = entry.ip.value();
        const std::uint8_t raw[4] = {static_cast<std::uint8_t>(v >> 24),
                                     static_cast<std::uint8_t>(v >> 16),
                                     static_cast<std::uint8_t>(v >> 8),
                                     static_cast<std::uint8_t>(v)};
        names.push_back(asn1::tlv(asn1::context_tag(7, false), BytesView{raw, 4}));
        break;
      }
    }
  }
  return asn1::encode_sequence(names);
}

std::vector<SanEntry> decode_san_value(BytesView value) {
  asn1::Parser parser(value);
  asn1::Parser names(parser.expect(asn1::kTagSequence).value);
  std::vector<SanEntry> out;
  while (!names.done()) {
    const asn1::Tlv name = names.next();
    if (name.tag == asn1::context_tag(2, false)) {
      out.push_back(SanEntry::dns(to_string(name.value)));
    } else if (name.tag == asn1::context_tag(7, false)) {
      if (name.value.size() != 4) continue;  // IPv6 SANs are not modeled
      out.push_back(SanEntry::address(
          net::IPv4(name.value[0], name.value[1], name.value[2], name.value[3])));
    }
    // Other GeneralName choices ignored.
  }
  return out;
}

Bytes TbsCertificate::encode() const {
  std::vector<Bytes> fields;
  fields.push_back(asn1::encode_explicit(0, asn1::encode_integer(2)));  // v3
  fields.push_back(asn1::encode_integer_unsigned(serial));
  fields.push_back(encode_sig_alg(key_scheme));
  fields.push_back(issuer.encode());
  fields.push_back(
      asn1::encode_sequence({asn1::encode_utc_time(not_before), asn1::encode_utc_time(not_after)}));
  fields.push_back(subject.encode());
  fields.push_back(encode_spki(key_scheme, public_key));
  if (!extensions.empty()) {
    std::vector<Bytes> exts;
    exts.reserve(extensions.size());
    for (const Extension& ext : extensions) exts.push_back(encode_extension(ext));
    fields.push_back(asn1::encode_explicit(3, asn1::encode_sequence(exts)));
  }
  return asn1::encode_sequence(fields);
}

TbsCertificate TbsCertificate::decode(BytesView der) {
  asn1::Parser outer(der);
  asn1::Parser parser(outer.expect(asn1::kTagSequence).value);
  TbsCertificate tbs;

  const asn1::Tlv version = parser.expect(asn1::context_tag(0, true));
  {
    asn1::Parser v(version.value);
    if (asn1::decode_integer(v.expect(asn1::kTagInteger)) != 2) {
      throw std::invalid_argument("TbsCertificate: only v3 supported");
    }
  }
  tbs.serial = asn1::decode_integer_unsigned(parser.expect(asn1::kTagInteger));
  const asn1::Tlv sig_alg = parser.expect(asn1::kTagSequence);
  (void)decode_sig_alg(sig_alg.raw);  // validated; key_scheme comes from the SPKI
  tbs.issuer = DistinguishedName::decode(parser.expect(asn1::kTagSequence).raw);
  {
    asn1::Parser validity(parser.expect(asn1::kTagSequence).value);
    tbs.not_before = asn1::decode_time(validity.next());
    tbs.not_after = asn1::decode_time(validity.next());
  }
  tbs.subject = DistinguishedName::decode(parser.expect(asn1::kTagSequence).raw);
  decode_spki(parser.expect(asn1::kTagSequence).raw, tbs.key_scheme, tbs.public_key);
  if (!parser.done() && parser.peek_tag() == asn1::context_tag(3, true)) {
    asn1::Parser wrapper(parser.next().value);
    asn1::Parser exts(wrapper.expect(asn1::kTagSequence).value);
    while (!exts.done()) tbs.extensions.push_back(decode_extension(exts.next()));
  }
  return tbs;
}

const Extension* TbsCertificate::find_extension(const asn1::Oid& oid) const {
  for (const Extension& ext : extensions) {
    if (ext.oid == oid) return &ext;
  }
  return nullptr;
}

std::size_t TbsCertificate::remove_extension(const asn1::Oid& oid) {
  const auto it = std::remove_if(extensions.begin(), extensions.end(),
                                 [&](const Extension& e) { return e.oid == oid; });
  const auto removed = static_cast<std::size_t>(extensions.end() - it);
  extensions.erase(it, extensions.end());
  return removed;
}

std::vector<SanEntry> TbsCertificate::san_entries() const {
  const Extension* san = find_extension(oids::subject_alt_name());
  if (san == nullptr) return {};
  return decode_san_value(san->value);
}

std::vector<std::string> TbsCertificate::dns_names() const {
  std::vector<std::string> out;
  auto push_unique = [&out](const std::string& name) {
    if (std::find(out.begin(), out.end(), name) == out.end()) out.push_back(name);
  };
  if (!subject.common_name.empty() && subject.common_name.find('.') != std::string::npos &&
      subject.common_name.find(' ') == std::string::npos) {
    push_unique(subject.common_name);
  }
  for (const SanEntry& entry : san_entries()) {
    if (entry.kind == SanEntry::Kind::dns) push_unique(entry.dns_name);
  }
  return out;
}

Bytes Certificate::encode() const {
  return asn1::encode_sequence(
      {tbs.encode(), encode_sig_alg(signature.scheme), asn1::encode_bit_string(signature.data)});
}

Certificate Certificate::decode(BytesView der) {
  asn1::Parser outer(der);
  asn1::Parser parser(outer.expect(asn1::kTagSequence).value);
  Certificate cert;
  const asn1::Tlv tbs = parser.expect(asn1::kTagSequence);
  cert.tbs = TbsCertificate::decode(tbs.raw);
  cert.signature.scheme = decode_sig_alg(parser.expect(asn1::kTagSequence).raw);
  const BytesView sig = asn1::decode_bit_string(parser.expect(asn1::kTagBitString));
  cert.signature.data.assign(sig.begin(), sig.end());
  return cert;
}

crypto::Digest Certificate::fingerprint() const { return crypto::Sha256::hash(encode()); }

bool Certificate::is_precertificate() const { return tbs.has_extension(oids::ct_poison()); }

std::optional<Bytes> Certificate::sct_list_value() const {
  const Extension* ext = tbs.find_extension(oids::ct_sct_list());
  if (ext == nullptr) return std::nullopt;
  return ext->value;
}

bool Certificate::verify(BytesView issuer_public_key) const {
  return crypto::verify_signature(issuer_public_key, tbs.encode(), signature);
}

Bytes precert_tbs_bytes(const TbsCertificate& tbs) {
  TbsCertificate stripped = tbs;
  stripped.remove_extension(oids::ct_poison());
  stripped.remove_extension(oids::ct_sct_list());
  return stripped.encode();
}

Bytes serial_bytes(std::uint64_t serial) {
  // Minimal big-endian magnitude, so struct equality survives the DER
  // round trip (the INTEGER encoding strips leading zeros).
  Bytes magnitude;
  for (int shift = 56; shift >= 0; shift -= 8) {
    const auto byte = static_cast<std::uint8_t>(serial >> shift);
    if (magnitude.empty() && byte == 0 && shift != 0) continue;
    magnitude.push_back(byte);
  }
  return magnitude;
}

CertificateBuilder& CertificateBuilder::serial(std::uint64_t serial) {
  tbs_.serial = serial_bytes(serial);
  return *this;
}

Bytes ecdsa_signature_to_der(const crypto::EcdsaSignature& sig) {
  return asn1::encode_sequence({asn1::encode_integer_unsigned(sig.r.to_bytes()),
                                asn1::encode_integer_unsigned(sig.s.to_bytes())});
}

crypto::EcdsaSignature ecdsa_signature_from_der(BytesView der) {
  asn1::Parser outer(der);
  asn1::Parser seq(outer.expect(asn1::kTagSequence).value);
  const Bytes r = asn1::decode_integer_unsigned(seq.expect(asn1::kTagInteger));
  const Bytes s = asn1::decode_integer_unsigned(seq.expect(asn1::kTagInteger));
  if (!seq.done() || !outer.done()) {
    throw std::invalid_argument("ecdsa_signature_from_der: trailing data");
  }
  if (r.size() > 32 || s.size() > 32) {
    throw std::invalid_argument("ecdsa_signature_from_der: integer too wide for P-256");
  }
  crypto::EcdsaSignature sig;
  sig.r = crypto::U256::from_bytes_truncated(r);
  sig.s = crypto::U256::from_bytes_truncated(s);
  return sig;
}

CertificateBuilder& CertificateBuilder::issuer(DistinguishedName dn) {
  tbs_.issuer = std::move(dn);
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_cn(std::string cn) {
  tbs_.subject.common_name = std::move(cn);
  return *this;
}

CertificateBuilder& CertificateBuilder::validity(SimTime not_before, SimTime not_after) {
  tbs_.not_before = not_before;
  tbs_.not_after = not_after;
  return *this;
}

CertificateBuilder& CertificateBuilder::subject_key(const crypto::Signer& subject_signer) {
  tbs_.key_scheme = subject_signer.scheme();
  tbs_.public_key = subject_signer.public_key();
  return *this;
}

CertificateBuilder& CertificateBuilder::add_dns_san(std::string name) {
  sans_.push_back(SanEntry::dns(std::move(name)));
  return *this;
}

CertificateBuilder& CertificateBuilder::add_ip_san(net::IPv4 ip) {
  sans_.push_back(SanEntry::address(ip));
  return *this;
}

CertificateBuilder& CertificateBuilder::poison() {
  poison_ = true;
  return *this;
}

CertificateBuilder& CertificateBuilder::extension(Extension ext) {
  tbs_.add_extension(std::move(ext));
  return *this;
}

TbsCertificate CertificateBuilder::build_tbs() const {
  TbsCertificate tbs = tbs_;
  if (!sans_.empty()) {
    tbs.add_extension(Extension{oids::subject_alt_name(), false, encode_san_value(sans_)});
  }
  if (poison_) {
    tbs.add_extension(Extension{oids::ct_poison(), true, asn1::encode_null()});
  }
  if (tbs.public_key.empty()) {
    throw std::logic_error("CertificateBuilder: subject_key() not set");
  }
  return tbs;
}

Certificate CertificateBuilder::sign(const crypto::Signer& ca_signer) const {
  Certificate cert;
  cert.tbs = build_tbs();
  // The certificate's signature algorithm is the CA's scheme; the subject
  // key scheme may differ (a real-world mix the decoder tolerates).
  cert.signature = ca_signer.sign(cert.tbs.encode());
  return cert;
}

}  // namespace ctwatch::x509
