#include "ctwatch/x509/oids.hpp"

namespace ctwatch::x509::oids {

// Each function keeps its own static so returned references stay valid.
#define CTWATCH_DEFINE_OID(fn, dotted)              \
  const asn1::Oid& fn() {                           \
    static const asn1::Oid oid = asn1::Oid::parse(dotted); \
    return oid;                                     \
  }

CTWATCH_DEFINE_OID(common_name, "2.5.4.3")
CTWATCH_DEFINE_OID(organization, "2.5.4.10")
CTWATCH_DEFINE_OID(country, "2.5.4.6")
CTWATCH_DEFINE_OID(subject_alt_name, "2.5.29.17")
CTWATCH_DEFINE_OID(basic_constraints, "2.5.29.19")
CTWATCH_DEFINE_OID(key_usage, "2.5.29.15")
CTWATCH_DEFINE_OID(ct_poison, "1.3.6.1.4.1.11129.2.4.3")
CTWATCH_DEFINE_OID(ct_sct_list, "1.3.6.1.4.1.11129.2.4.2")
CTWATCH_DEFINE_OID(ec_public_key, "1.2.840.10045.2.1")
CTWATCH_DEFINE_OID(p256, "1.2.840.10045.3.1.7")
CTWATCH_DEFINE_OID(ecdsa_with_sha256, "1.2.840.10045.4.3.2")
CTWATCH_DEFINE_OID(simulated_signature, "1.3.6.1.4.1.53177.1.1")

#undef CTWATCH_DEFINE_OID

}  // namespace ctwatch::x509::oids
