#include "ctwatch/ct/stream.hpp"

namespace ctwatch::ct {

void CertStream::attach(CtLog& log) {
  log.subscribe([this](const CtLog& source, const LogEntry& entry) {
    ++delivered_;
    for (const Callback& callback : callbacks_) callback(source, entry);
  });
}

std::vector<LogEntry> BatchPoller::poll() {
  const std::uint64_t size = log_->tree_size();
  std::vector<LogEntry> out = log_->get_entries(cursor_, size - cursor_);
  cursor_ = size;
  return out;
}

}  // namespace ctwatch::ct
