#include "ctwatch/ct/index.hpp"

#include <set>

#include "ctwatch/dns/name.hpp"

namespace ctwatch::ct {

void LogIndex::index_log(const CtLog& log) {
  for (const LogEntry& entry : log.entries()) add_entry(log, entry);
}

void LogIndex::attach(CtLog& log) {
  index_log(log);
  log.subscribe(
      [this](const CtLog& source, const LogEntry& entry) { add_entry(source, entry); });
}

void LogIndex::add_entry(const CtLog& log, const LogEntry& entry) {
  IndexedEntry indexed;
  indexed.log_name = log.name();
  indexed.index = entry.index;
  indexed.timestamp_ms = entry.timestamp_ms;
  indexed.subject_cn = entry.certificate.tbs.subject.common_name;
  indexed.issuer_cn = entry.issuer_cn;
  indexed.dns_names = entry.certificate.tbs.dns_names();
  indexed.precertificate = entry.certificate.is_precertificate();

  const std::size_t slot = entries_.size();
  std::set<std::string> registrables;  // one hit per certificate, not per SAN
  for (const std::string& name : indexed.dns_names) {
    by_name_[name].push_back(slot);
    if (const auto split = psl_->split(name)) {
      registrables.insert(split->registrable_domain);
    }
  }
  for (const std::string& registrable : registrables) {
    by_registrable_[registrable].push_back(slot);
  }
  by_issuer_[indexed.issuer_cn].push_back(slot);
  entries_.push_back(std::move(indexed));
}

namespace {
std::vector<IndexedEntry> collect(const std::vector<IndexedEntry>& entries,
                                  const std::map<std::string, std::vector<std::size_t>>& index,
                                  const std::string& key) {
  std::vector<IndexedEntry> out;
  const auto it = index.find(key);
  if (it == index.end()) return out;
  out.reserve(it->second.size());
  for (const std::size_t slot : it->second) out.push_back(entries[slot]);
  return out;
}
}  // namespace

std::vector<IndexedEntry> LogIndex::by_name(const std::string& fqdn) const {
  return collect(entries_, by_name_, fqdn);
}

std::vector<IndexedEntry> LogIndex::by_registrable_domain(const std::string& domain) const {
  return collect(entries_, by_registrable_, domain);
}

std::vector<IndexedEntry> LogIndex::by_issuer(const std::string& issuer_cn) const {
  return collect(entries_, by_issuer_, issuer_cn);
}

void DomainWatcher::attach(CtLog& log) {
  log.subscribe([this](const CtLog& source, const LogEntry& entry) {
    IndexedEntry indexed;
    indexed.log_name = source.name();
    indexed.index = entry.index;
    indexed.timestamp_ms = entry.timestamp_ms;
    indexed.subject_cn = entry.certificate.tbs.subject.common_name;
    indexed.issuer_cn = entry.issuer_cn;
    indexed.dns_names = entry.certificate.tbs.dns_names();
    indexed.precertificate = entry.certificate.is_precertificate();

    for (const std::string& name : indexed.dns_names) {
      const auto split = psl_->split(name);
      if (!split) continue;
      const auto it = watches_.find(split->registrable_domain);
      if (it == watches_.end()) continue;
      for (const Callback& callback : it->second) {
        ++notifications_;
        callback(split->registrable_domain, indexed);
      }
    }
  });
}

void DomainWatcher::watch(const std::string& registrable_domain, Callback callback) {
  watches_[registrable_domain].push_back(std::move(callback));
}

}  // namespace ctwatch::ct
