#include "ctwatch/ct/sct.hpp"

#include "ctwatch/ct/wire.hpp"
#include "ctwatch/x509/redaction.hpp"

namespace ctwatch::ct {

namespace {
constexpr std::uint8_t kSigTypeCertificateTimestamp = 0;
constexpr std::uint8_t kSigTypeTreeHash = 1;

void put_entry(Bytes& out, const SignedEntry& entry) {
  wire::put_u16(out, static_cast<std::uint16_t>(entry.type));
  if (entry.type == EntryType::precert_entry) {
    wire::put_bytes(out, BytesView{entry.issuer_key_hash.data(), entry.issuer_key_hash.size()});
  }
  wire::put_opaque24(out, entry.data);
}
}  // namespace

SignedEntry make_x509_entry(const x509::Certificate& cert) {
  SignedEntry entry;
  entry.type = EntryType::x509_entry;
  entry.data = cert.encode();
  return entry;
}

SignedEntry make_precert_entry(const x509::Certificate& cert, BytesView issuer_public_key) {
  SignedEntry entry;
  entry.type = EntryType::precert_entry;
  // Redacted certificates: the log signed the *redacted* names, so the
  // reconstruction must re-apply the redaction to the final certificate.
  entry.data = x509::uses_redaction(cert.tbs)
                   ? x509::precert_tbs_bytes(x509::redacted_tbs(cert.tbs))
                   : x509::precert_tbs_bytes(cert.tbs);
  entry.issuer_key_hash = crypto::Sha256::hash(issuer_public_key);
  return entry;
}

Bytes SignedCertificateTimestamp::serialize() const {
  Bytes out;
  wire::put_u8(out, version);
  wire::put_bytes(out, BytesView{log_id.data(), log_id.size()});
  wire::put_u64(out, timestamp_ms);
  wire::put_opaque16(out, extensions);
  wire::put_u8(out, static_cast<std::uint8_t>(signature.scheme));
  wire::put_opaque16(out, signature.data);
  return out;
}

SignedCertificateTimestamp SignedCertificateTimestamp::deserialize(BytesView data) {
  wire::Reader reader(data);
  SignedCertificateTimestamp sct;
  sct.version = reader.u8();
  const BytesView id = reader.bytes(32);
  std::copy(id.begin(), id.end(), sct.log_id.begin());
  sct.timestamp_ms = reader.u64();
  const BytesView ext = reader.opaque16();
  sct.extensions.assign(ext.begin(), ext.end());
  sct.signature.scheme = static_cast<crypto::SignatureScheme>(reader.u8());
  const BytesView sig = reader.opaque16();
  sct.signature.data.assign(sig.begin(), sig.end());
  if (!reader.done()) throw std::invalid_argument("SCT: trailing bytes");
  return sct;
}

Bytes sct_signing_input(const SignedCertificateTimestamp& sct, const SignedEntry& entry) {
  Bytes out;
  wire::put_u8(out, sct.version);
  wire::put_u8(out, kSigTypeCertificateTimestamp);
  wire::put_u64(out, sct.timestamp_ms);
  put_entry(out, entry);
  wire::put_opaque16(out, sct.extensions);
  return out;
}

bool verify_sct(const SignedCertificateTimestamp& sct, const SignedEntry& entry,
                BytesView log_public_key) {
  return crypto::verify_signature(log_public_key, sct_signing_input(sct, entry), sct.signature);
}

Bytes serialize_sct_list(const std::vector<SignedCertificateTimestamp>& scts) {
  Bytes inner;
  for (const auto& sct : scts) {
    wire::put_opaque16(inner, sct.serialize());
  }
  Bytes out;
  wire::put_opaque16(out, inner);
  return out;
}

std::vector<SignedCertificateTimestamp> parse_sct_list(BytesView data) {
  wire::Reader outer(data);
  wire::Reader list(outer.opaque16());
  if (!outer.done()) throw std::invalid_argument("SCT list: trailing bytes");
  std::vector<SignedCertificateTimestamp> out;
  while (!list.done()) {
    out.push_back(SignedCertificateTimestamp::deserialize(list.opaque16()));
  }
  return out;
}

Bytes sth_signing_input(const SignedTreeHead& sth) {
  Bytes out;
  wire::put_u8(out, 0);  // v1
  wire::put_u8(out, kSigTypeTreeHash);
  wire::put_u64(out, sth.timestamp_ms);
  wire::put_u64(out, sth.tree_size);
  wire::put_bytes(out, BytesView{sth.root_hash.data(), sth.root_hash.size()});
  return out;
}

bool verify_sth(const SignedTreeHead& sth, BytesView log_public_key) {
  return crypto::verify_signature(log_public_key, sth_signing_input(sth), sth.signature);
}

}  // namespace ctwatch::ct
