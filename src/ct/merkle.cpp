#include "ctwatch/ct/merkle.hpp"

#include <bit>
#include <stdexcept>

namespace ctwatch::ct {

namespace detail {
std::uint64_t merkle_split_point(std::uint64_t n) { return std::bit_floor(n - 1); }
}  // namespace detail

Digest leaf_hash(BytesView data) {
  crypto::Sha256 h;
  h.update(std::uint8_t{0x00}).update(data);
  return h.finish();
}

Digest node_hash(const Digest& left, const Digest& right) {
  crypto::Sha256 h;
  h.update(std::uint8_t{0x01})
      .update(BytesView{left.data(), left.size()})
      .update(BytesView{right.data(), right.size()});
  return h.finish();
}

Digest empty_tree_root() { return crypto::Sha256::hash(BytesView{}); }

void RootAccumulator::add(const Digest& leaf) {
  // Binary-counter merge: one stack entry per set bit of the new size.
  Digest acc = leaf;
  std::uint64_t size = size_;  // old size
  while (size & 1) {
    acc = node_hash(stack_.back(), acc);
    stack_.pop_back();
    size >>= 1;
  }
  stack_.push_back(acc);
  ++size_;
}

std::optional<RootAccumulator> RootAccumulator::from_frontier(std::vector<Digest> frontier,
                                                              std::uint64_t size) {
  if (frontier.size() != static_cast<std::size_t>(std::popcount(size))) return std::nullopt;
  RootAccumulator out;
  out.stack_ = std::move(frontier);
  out.size_ = size;
  return out;
}

Digest RootAccumulator::root() const {
  if (stack_.empty()) return empty_tree_root();
  Digest acc = stack_.back();
  for (std::size_t i = stack_.size() - 1; i-- > 0;) {
    acc = node_hash(stack_[i], acc);
  }
  return acc;
}

std::uint64_t MerkleTree::append(const Digest& leaf) {
  const std::uint64_t index = leaves_.size();
  leaves_.push_back(leaf);
  accumulator_.add(leaf);
  return index;
}

std::uint64_t MerkleTree::append_batch(std::span<const Digest> leaves) {
  const std::uint64_t first = leaves_.size();
  leaves_.reserve(leaves_.size() + leaves.size());
  for (const Digest& leaf : leaves) append(leaf);
  return first;
}

Digest MerkleTree::root_at(std::uint64_t n) const {
  if (n > size()) throw std::out_of_range("MerkleTree::root_at: beyond tree size");
  return merkle_root_of([this](std::uint64_t i) -> const Digest& { return leaves_[i]; }, n);
}

std::vector<Digest> MerkleTree::inclusion_proof(std::uint64_t index,
                                                std::uint64_t tree_size) const {
  if (tree_size > size() || index >= tree_size) {
    throw std::out_of_range("MerkleTree::inclusion_proof: bad index/size");
  }
  return merkle_inclusion_path([this](std::uint64_t i) -> const Digest& { return leaves_[i]; },
                               index, tree_size);
}

std::vector<Digest> MerkleTree::consistency_proof(std::uint64_t old_size,
                                                  std::uint64_t new_size) const {
  if (new_size > size() || old_size > new_size) {
    throw std::out_of_range("MerkleTree::consistency_proof: bad sizes");
  }
  return merkle_consistency_path([this](std::uint64_t i) -> const Digest& { return leaves_[i]; },
                                 old_size, new_size);
}

bool verify_inclusion(const Digest& leaf, std::uint64_t index, std::uint64_t tree_size,
                      const std::vector<Digest>& proof, const Digest& root) {
  if (tree_size == 0 || index >= tree_size) return false;
  std::uint64_t fn = index;
  std::uint64_t sn = tree_size - 1;
  Digest r = leaf;
  for (const Digest& p : proof) {
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      r = node_hash(p, r);
      if ((fn & 1) == 0) {
        while ((fn & 1) == 0 && fn != 0) {
          fn >>= 1;
          sn >>= 1;
        }
      }
    } else {
      r = node_hash(r, p);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return sn == 0 && r == root;
}

bool verify_consistency(std::uint64_t old_size, std::uint64_t new_size, const Digest& old_root,
                        const Digest& new_root, const std::vector<Digest>& proof) {
  if (old_size > new_size) return false;
  if (old_size == new_size) return proof.empty() && old_root == new_root;
  // Only the *real* empty tree is consistent with everything: a signed
  // size-0 head with any other root is an equivocation attempt, and
  // accepting it here would let such a head pair with every honest head
  // without ever failing a gossip challenge.
  if (old_size == 0) return proof.empty() && old_root == empty_tree_root();
  std::uint64_t fn = old_size - 1;
  std::uint64_t sn = new_size - 1;
  while (fn & 1) {
    fn >>= 1;
    sn >>= 1;
  }
  std::size_t cursor = 0;
  Digest fr, sr;
  if (fn != 0) {
    if (proof.empty()) return false;
    fr = sr = proof[cursor++];
  } else {
    fr = sr = old_root;
  }
  for (; cursor < proof.size(); ++cursor) {
    const Digest& c = proof[cursor];
    if (sn == 0) return false;
    if ((fn & 1) == 1 || fn == sn) {
      fr = node_hash(c, fr);
      sr = node_hash(c, sr);
      while ((fn & 1) == 0 && fn != 0) {
        fn >>= 1;
        sn >>= 1;
      }
    } else {
      sr = node_hash(sr, c);
    }
    fn >>= 1;
    sn >>= 1;
  }
  return fr == old_root && sr == new_root && sn == 0;
}

}  // namespace ctwatch::ct
