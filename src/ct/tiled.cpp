#include "ctwatch/ct/tiled.hpp"

#include "ctwatch/ct/merkle.hpp"

namespace ctwatch::ct {

namespace {

constexpr unsigned kTileHeight = 8;                      // 256 leaves per tile
constexpr std::uint64_t kTileWidth = 1ull << kTileHeight;

/// MTH(D[index·2^j : (index+1)·2^j]) — a perfect subtree. One page fetch
/// when the subtree is paged (its root is entry index·2^(j mod 8) of the
/// level-(j/8) tile, or a fold of up to 128 adjacent entries of that
/// tile); recursion into the children when it is not.
Digest perfect_root(TileSource& source, unsigned j, std::uint64_t index) {
  const std::uint64_t first_leaf = index << j;
  if (first_leaf + (std::uint64_t{1} << j) <= source.paged_leaves()) {
    const unsigned level = j / kTileHeight;
    const unsigned rem = j % kTileHeight;
    // Entry coordinates at `level`: 2^rem adjacent entries starting at
    // index·2^rem, aligned to their own width, so they never straddle a
    // tile boundary.
    const std::uint64_t entry_first = index << rem;
    const std::uint64_t offset = entry_first & (kTileWidth - 1);
    TilePageView page;
    if (source.page(level, entry_first >> kTileHeight,
                    offset + (std::uint64_t{1} << rem), page)) {
      return fold_perfect(page.entries + offset, std::uint64_t{1} << rem);
    }
    // The upper level is absent or still partial: one level down covers
    // the same subtree with two fetches instead of one.
  }
  if (j == 0) return source.leaf(index);
  return node_hash(perfect_root(source, j - 1, 2 * index),
                   perfect_root(source, j - 1, 2 * index + 1));
}

}  // namespace

// Identical to the RFC 6962 recursion on a perfect range: the split
// point of 2^k is 2^(k-1).
Digest fold_perfect(const Digest* entries, std::uint64_t count) {
  if (count == 1) return entries[0];
  const std::uint64_t half = count / 2;
  return node_hash(fold_perfect(entries, half), fold_perfect(entries + half, half));
}

Digest tiled_range_root(TileSource& source, std::uint64_t begin, std::uint64_t end) {
  const std::uint64_t n = end - begin;
  if ((n & (n - 1)) == 0 && begin % n == 0) {
    // A perfect, aligned subtree: resolvable from tile entries directly.
    unsigned j = 0;
    while ((std::uint64_t{1} << j) < n) ++j;
    return perfect_root(source, j, begin >> j);
  }
  const std::uint64_t k = detail::merkle_split_point(n);
  return node_hash(tiled_range_root(source, begin, begin + k),
                   tiled_range_root(source, begin + k, end));
}

Digest tiled_root(TileSource& source, std::uint64_t n) {
  if (n == 0) return empty_tree_root();
  return tiled_range_root(source, 0, n);
}

std::vector<Digest> tiled_inclusion_path(TileSource& source, std::uint64_t index,
                                         std::uint64_t tree_size) {
  // The same iterative walk as merkle_inclusion_path, with each sibling
  // subtree root resolved through the tiles.
  std::uint64_t begin = 0, end = tree_size, m = index;
  std::vector<Digest> reversed;
  while (end - begin > 1) {
    const std::uint64_t k = detail::merkle_split_point(end - begin);
    if (m < begin + k) {
      reversed.push_back(tiled_range_root(source, begin + k, end));
      end = begin + k;
    } else {
      reversed.push_back(tiled_range_root(source, begin, begin + k));
      begin += k;
    }
  }
  return {reversed.rbegin(), reversed.rend()};
}

std::vector<Digest> tiled_consistency_path(TileSource& source, std::uint64_t old_size,
                                           std::uint64_t new_size) {
  if (old_size == new_size || old_size == 0) return {};
  struct Helper {
    TileSource& source;
    std::vector<Digest> subproof(std::uint64_t m, std::uint64_t begin, std::uint64_t end,
                                 bool whole) const {
      const std::uint64_t n = end - begin;
      if (m == n) {
        if (whole) return {};
        return {tiled_range_root(source, begin, end)};
      }
      const std::uint64_t k = detail::merkle_split_point(n);
      std::vector<Digest> out;
      if (m <= k) {
        out = subproof(m, begin, begin + k, whole);
        out.push_back(tiled_range_root(source, begin + k, end));
      } else {
        out = subproof(m - k, begin + k, end, false);
        out.push_back(tiled_range_root(source, begin, begin + k));
      }
      return out;
    }
  };
  return Helper{source}.subproof(old_size, 0, new_size, true);
}

}  // namespace ctwatch::ct
