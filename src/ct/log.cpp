#include "ctwatch/ct/log.hpp"

#include <stdexcept>

#include "ctwatch/ct/wire.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::ct {

namespace {

// Shared across all log instances: the pipeline-wide view of submission
// traffic. Handles resolved once; each event is one relaxed atomic.
struct SubmitMetrics {
  obs::Counter& submissions = obs::Registry::global().counter("ct.log.submissions");
  obs::Counter& accepted = obs::Registry::global().counter("ct.log.accepted");
  obs::Counter& rejected_invalid = obs::Registry::global().counter("ct.log.rejected_invalid");
  obs::Counter& overloaded = obs::Registry::global().counter("ct.log.overload_rejections");
  obs::Counter& dedup_hits = obs::Registry::global().counter("ct.log.dedup_hits");
  obs::Histogram& merkle_integrate_us =
      obs::Registry::global().histogram("ct.log.merkle_integrate_us");
};

SubmitMetrics& submit_metrics() {
  static SubmitMetrics metrics;
  return metrics;
}

}  // namespace

Bytes merkle_leaf_bytes(std::uint64_t timestamp_ms, const SignedEntry& entry) {
  Bytes out;
  wire::put_u8(out, 0);  // version v1
  wire::put_u8(out, 0);  // leaf_type timestamped_entry
  wire::put_u64(out, timestamp_ms);
  wire::put_u16(out, static_cast<std::uint16_t>(entry.type));
  if (entry.type == EntryType::precert_entry) {
    wire::put_bytes(out, BytesView{entry.issuer_key_hash.data(), entry.issuer_key_hash.size()});
  }
  wire::put_opaque24(out, entry.data);
  wire::put_u16(out, 0);  // no extensions
  return out;
}

CtLog::CtLog(LogConfig config)
    : config_(std::move(config)),
      signer_(crypto::make_signer("ct-log/" + config_.name, config_.scheme)) {}

LogId CtLog::log_id() const {
  const crypto::Digest id = signer_->key_id();
  LogId out{};
  std::copy(id.begin(), id.end(), out.begin());
  return out;
}

SubmitResult CtLog::add_chain(const x509::Certificate& cert, BytesView issuer_public_key,
                              SimTime now) {
  if (cert.is_precertificate()) return {SubmitStatus::rejected_invalid, std::nullopt};
  return submit(cert, issuer_public_key, now, EntryType::x509_entry);
}

SubmitResult CtLog::add_pre_chain(const x509::Certificate& precert, BytesView issuer_public_key,
                                  SimTime now) {
  if (!precert.is_precertificate()) return {SubmitStatus::rejected_invalid, std::nullopt};
  return submit(precert, issuer_public_key, now, EntryType::precert_entry);
}

SubmitResult CtLog::submit(const x509::Certificate& cert, BytesView issuer_public_key, SimTime now,
                           EntryType type) {
  SubmitMetrics& metrics = submit_metrics();
  metrics.submissions.inc();

  // Capacity enforcement (per UTC hour).
  if (config_.capacity_per_hour > 0) {
    const std::int64_t hour = now.unix_seconds() / 3600;
    std::uint64_t& count = hourly_submissions_[hour];
    if (count >= config_.capacity_per_hour) {
      ++overload_rejections_;
      metrics.overloaded.inc();
      obs::log_debug("ct.log", "submission rejected for overload",
                     {{"log", config_.name}, {"hour", hour}});
      return {SubmitStatus::overloaded, std::nullopt};
    }
    ++count;
  }

  if (config_.verify_submissions && !cert.verify(issuer_public_key)) {
    metrics.rejected_invalid.inc();
    obs::log_debug("ct.log", "submission failed chain verification",
                   {{"log", config_.name}, {"issuer", cert.tbs.issuer.common_name}});
    return {SubmitStatus::rejected_invalid, std::nullopt};
  }

  const SignedEntry entry = (type == EntryType::precert_entry)
                                ? make_precert_entry(cert, issuer_public_key)
                                : make_x509_entry(cert);

  const crypto::Digest fp = cert.fingerprint();
  // Logs deduplicate resubmissions of the same (pre)certificate: return the
  // original SCT. (Requires stored bodies.)
  if (config_.store_bodies) {
    const Bytes fp_bytes(fp.begin(), fp.end());
    if (const auto it = dedup_.find(fp_bytes); it != dedup_.end()) {
      metrics.dedup_hits.inc();
      const LogEntry& existing = entries_[it->second];
      SignedCertificateTimestamp sct;
      sct.log_id = log_id();
      sct.timestamp_ms = existing.timestamp_ms;
      sct.signature = signer_->sign(sct_signing_input(sct, existing.signed_entry));
      return {SubmitStatus::ok, sct};
    }
    dedup_[fp_bytes] = tree_.size();
  }


  SignedCertificateTimestamp sct;
  sct.log_id = log_id();
  sct.timestamp_ms = static_cast<std::uint64_t>(now.unix_seconds()) * 1000;
  sct.signature = signer_->sign(sct_signing_input(sct, entry));

  LogEntry log_entry;
  log_entry.index = tree_.size();
  log_entry.timestamp_ms = sct.timestamp_ms;
  log_entry.issuer_cn = cert.tbs.issuer.common_name;
  log_entry.fingerprint = fp;
  if (config_.store_bodies) {
    log_entry.signed_entry = entry;
    log_entry.certificate = cert;
  }

  {
    obs::ScopedTimer timer(metrics.merkle_integrate_us);
    tree_.append_data(merkle_leaf_bytes(sct.timestamp_ms, entry));
  }
  metrics.accepted.inc();
  entries_.push_back(std::move(log_entry));
  for (const Subscriber& subscriber : subscribers_) subscriber(*this, entries_.back());
  return {SubmitStatus::ok, sct};
}

std::vector<LogEntry> CtLog::get_entries(std::uint64_t start, std::uint64_t count) const {
  std::vector<LogEntry> out;
  for (std::uint64_t i = start; i < start + count && i < entries_.size(); ++i) {
    out.push_back(entries_[i]);
  }
  return out;
}

SignedTreeHead CtLog::get_sth(SimTime now) const {
  SignedTreeHead sth;
  sth.tree_size = tree_.size();
  sth.timestamp_ms = static_cast<std::uint64_t>(now.unix_seconds()) * 1000;
  sth.root_hash = tree_.root();
  sth.signature = signer_->sign(sth_signing_input(sth));
  return sth;
}

std::vector<Digest> CtLog::get_inclusion_proof(std::uint64_t index,
                                               std::uint64_t tree_size) const {
  return tree_.inclusion_proof(index, tree_size);
}

std::vector<Digest> CtLog::get_consistency_proof(std::uint64_t old_size,
                                                 std::uint64_t new_size) const {
  return tree_.consistency_proof(old_size, new_size);
}

void CtLog::corrupt_leaf_for_test(std::uint64_t index) {
  if (index >= entries_.size()) throw std::out_of_range("corrupt_leaf_for_test: bad index");
  // Rebuild the tree with one leaf replaced — the rewritten history a
  // malicious or broken log would present.
  MerkleTree rebuilt;
  for (std::uint64_t i = 0; i < tree_.size(); ++i) {
    if (i == index) {
      rebuilt.append(crypto::Sha256::hash(to_bytes("tampered-leaf")));
    } else {
      rebuilt.append(tree_.leaf(i));
    }
  }
  tree_ = std::move(rebuilt);
}

}  // namespace ctwatch::ct
