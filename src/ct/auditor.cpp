#include "ctwatch/ct/auditor.hpp"

namespace ctwatch::ct {

AuditOutcome LogAuditor::audit(const CtLog& log, SimTime now) {
  AuditOutcome outcome;
  outcome.sth = log.get_sth(now);

  const Bytes key = log.public_key();
  if (!verify_sth(outcome.sth, key)) {
    outcome.problem = "STH signature invalid";
    return outcome;
  }
  const auto it = last_sth_.find(log.name());
  if (it != last_sth_.end()) {
    const SignedTreeHead& old = it->second;
    if (outcome.sth.tree_size < old.tree_size) {
      outcome.problem = "tree shrank: append-only violated";
      return outcome;
    }
    const auto proof = log.get_consistency_proof(old.tree_size, outcome.sth.tree_size);
    if (!verify_consistency(old.tree_size, outcome.sth.tree_size, old.root_hash,
                            outcome.sth.root_hash, proof)) {
      outcome.problem = "consistency proof failed: history rewritten";
      return outcome;
    }
  }
  last_sth_[log.name()] = outcome.sth;
  outcome.ok = true;
  return outcome;
}

bool LogAuditor::check_inclusion(const CtLog& log, std::uint64_t index,
                                 const SignedTreeHead& sth) {
  if (index >= sth.tree_size) return false;
  const LogEntry& entry = log.entries()[index];
  const Digest leaf = leaf_hash(merkle_leaf_bytes(entry.timestamp_ms, entry.signed_entry));
  const auto proof = log.get_inclusion_proof(index, sth.tree_size);
  return verify_inclusion(leaf, index, sth.tree_size, proof, sth.root_hash);
}

std::optional<std::uint64_t> find_promised_entry(const CtLog& log,
                                                 const SignedCertificateTimestamp& sct,
                                                 const SignedEntry& entry) {
  const Digest leaf = leaf_hash(merkle_leaf_bytes(sct.timestamp_ms, entry));
  for (const LogEntry& candidate : log.entries()) {
    if (candidate.timestamp_ms != sct.timestamp_ms) continue;
    const Digest candidate_leaf =
        leaf_hash(merkle_leaf_bytes(candidate.timestamp_ms, candidate.signed_entry));
    if (candidate_leaf == leaf) return candidate.index;
  }
  return std::nullopt;
}

bool audit_sct_inclusion(const CtLog& log, const SignedCertificateTimestamp& sct,
                         const SignedEntry& entry, SimTime now) {
  if (!verify_sct(sct, entry, log.public_key())) return false;
  const SignedTreeHead sth = log.get_sth(now);
  if (!verify_sth(sth, log.public_key())) return false;
  const auto index = find_promised_entry(log, sct, entry);
  if (!index) return false;  // the log broke its inclusion promise
  return LogAuditor::check_inclusion(log, *index, sth);
}

}  // namespace ctwatch::ct
