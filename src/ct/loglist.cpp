#include "ctwatch/ct/loglist.hpp"

namespace ctwatch::ct {

void LogList::add_log(const CtLog& log, SimTime chrome_inclusion, bool google_operated) {
  LogListEntry entry;
  entry.id = log.log_id();
  entry.name = log.name();
  entry.operator_name = log.config().operator_name;
  entry.public_key = log.public_key();
  entry.chrome_inclusion = chrome_inclusion;
  entry.google_operated = google_operated;
  entries_.push_back(std::move(entry));
}

const LogListEntry* LogList::find(const LogId& id) const {
  for (const auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

const LogListEntry* LogList::find_by_name(const std::string& name) const {
  for (const auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

void LogList::disqualify(const LogId& id, SimTime when) {
  for (auto& entry : entries_) {
    if (entry.id == id) entry.disqualified = when;
  }
}

std::vector<std::string> disqualify_overloaded_logs(LogList& list,
                                                    const std::vector<CtLog*>& logs,
                                                    std::uint64_t rejection_threshold,
                                                    SimTime when) {
  std::vector<std::string> disqualified;
  for (const CtLog* log : logs) {
    if (log->overload_rejections() < rejection_threshold) continue;
    const LogListEntry* entry = list.find(log->log_id());
    if (entry == nullptr || entry->disqualified) continue;
    list.disqualify(log->log_id(), when);
    disqualified.push_back(log->name());
  }
  return disqualified;
}

SimTime chrome_enforcement_date() { return SimTime::parse("2018-04-18"); }

bool chrome_requires_ct(SimTime not_before, SimTime now) {
  return now >= chrome_enforcement_date() && not_before >= chrome_enforcement_date();
}

std::size_t required_sct_count(SimTime not_before, SimTime not_after) {
  const std::int64_t lifetime_days = (not_after - not_before) / 86400;
  const double months = static_cast<double>(lifetime_days) / 30.44;
  if (months < 15) return 2;
  if (months <= 27) return 3;
  if (months <= 39) return 4;
  return 5;
}

PolicyVerdict evaluate_chrome_policy(const std::vector<SignedCertificateTimestamp>& scts,
                                     const SignedEntry& entry, const LogList& logs, SimTime now,
                                     SimTime not_before, SimTime not_after) {
  PolicyVerdict verdict;
  verdict.required_scts = required_sct_count(not_before, not_after);
  for (const auto& sct : scts) {
    const LogListEntry* log = logs.find(sct.log_id);
    if (log == nullptr) continue;  // unknown log
    if (!log->qualified_at(now)) continue;
    if (!verify_sct(sct, entry, log->public_key)) continue;
    ++verdict.valid_scts;
    if (log->google_operated) {
      verdict.has_google = true;
    } else {
      verdict.has_non_google = true;
    }
  }
  if (verdict.valid_scts < verdict.required_scts) {
    verdict.reason = "insufficient valid SCTs (" + std::to_string(verdict.valid_scts) + " of " +
                     std::to_string(verdict.required_scts) + ")";
  } else if (!verdict.has_google || !verdict.has_non_google) {
    verdict.reason = "SCTs not diversely operated (need Google and non-Google)";
  } else {
    verdict.compliant = true;
  }
  return verdict;
}

}  // namespace ctwatch::ct
