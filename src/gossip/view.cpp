#include "ctwatch/gossip/view.hpp"

#include <algorithm>
#include <stdexcept>

namespace ctwatch::gossip {

std::optional<std::vector<crypto::Digest>> ServiceView::get_consistency(std::uint64_t first,
                                                                        std::uint64_t second) {
  // A face that has not grown to `second` cannot answer yet; the
  // service's read path throws out_of_range for exactly that. Either way
  // the challenger treats it as "retry later", never as evidence.
  if (second > service_->tree_size()) return std::nullopt;
  try {
    return service_->consistency_proof(first, second);
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

ChallengeResult challenge_pair(LogView& view, const ct::SignedTreeHead& a,
                               const ct::SignedTreeHead& b) {
  const ct::SignedTreeHead& old_sth = a.tree_size <= b.tree_size ? a : b;
  const ct::SignedTreeHead& new_sth = a.tree_size <= b.tree_size ? b : a;

  ChallengeResult result;
  if (old_sth.tree_size == new_sth.tree_size) {
    if (old_sth.root_hash == new_sth.root_hash) {
      result.status = ChallengeStatus::consistent;
      return result;
    }
    // Two signed heads over the same size with different roots cannot
    // both be honest — no proof can reconcile them, so don't ask.
    result.status = ChallengeStatus::split_view;
    result.same_size_conflict = true;
    result.reason = "two signed heads of size " + std::to_string(old_sth.tree_size) +
                    " with different roots";
    return result;
  }

  auto proof = view.get_consistency(old_sth.tree_size, new_sth.tree_size);
  if (!proof) {
    result.status = ChallengeStatus::pending;
    result.reason = "face cannot serve (" + std::to_string(old_sth.tree_size) + ", " +
                    std::to_string(new_sth.tree_size) + ") yet";
    return result;
  }
  if (ct::verify_consistency(old_sth.tree_size, new_sth.tree_size, old_sth.root_hash,
                             new_sth.root_hash, *proof)) {
    result.status = ChallengeStatus::consistent;
    return result;
  }
  result.status = ChallengeStatus::split_view;
  result.proof = *std::move(proof);
  result.reason = "log served a proof for (" + std::to_string(old_sth.tree_size) + ", " +
                  std::to_string(new_sth.tree_size) + ") that does not verify";
  return result;
}

}  // namespace ctwatch::gossip
