#include "ctwatch/gossip/equivocate.hpp"

#include <future>
#include <stdexcept>

#include "ctwatch/util/encoding.hpp"

namespace ctwatch::gossip {

namespace {

logsvc::Config face_config(const EquivocationPlan& plan, Side side) {
  logsvc::Config config = plan.base;
  config.storage = side == Side::left ? plan.storage_left : plan.storage_right;
  // Each face gets its own chaos stream so injecting a fault into one
  // never shifts the other's sequence.
  if (config.chaos != nullptr) {
    config.chaos_prefix = config.chaos_prefix + "." + side_name(side);
  }
  return config;
}

}  // namespace

EquivocatingLog::EquivocatingLog(EquivocationPlan plan)
    : fork_index_(plan.fork_index),
      oracle_(crypto::make_signer("ct-log/" + plan.base.name, plan.base.scheme)),
      left_(std::make_unique<logsvc::LogService>(face_config(plan, Side::left))),
      right_(std::make_unique<logsvc::LogService>(face_config(plan, Side::right))),
      left_view_(*left_),
      right_view_(*right_),
      next_left_(left_->tree_size()),
      next_right_(right_->tree_size()) {}

ct::SignedEntry EquivocatingLog::entry_at(std::uint64_t index, std::uint64_t fork_index,
                                          Side side) {
  ct::SignedEntry entry;
  entry.type = ct::EntryType::x509_entry;
  std::string payload = "gossip-entry-" + std::to_string(index);
  if (index >= fork_index) payload += std::string("/") + side_name(side);
  entry.data = to_bytes(payload);
  return entry;
}

crypto::Digest EquivocatingLog::fingerprint_at(std::uint64_t index, std::uint64_t fork_index,
                                               Side side) {
  std::string payload = "gossip-fp-" + std::to_string(index);
  if (index >= fork_index) payload += std::string("/") + side_name(side);
  return crypto::Sha256::hash(to_bytes(payload));
}

void EquivocatingLog::append(logsvc::LogService& svc, std::uint64_t index, Side side,
                             SimTime now) {
  std::promise<logsvc::SubmitOutcome> promise;
  auto future = promise.get_future();
  const logsvc::SubmitStatus status = svc.submit(
      entry_at(index, fork_index_, side), fingerprint_at(index, fork_index_, side),
      "Equivocation CA", now,
      [&promise](const logsvc::SubmitOutcome& outcome) { promise.set_value(outcome); });
  if (status != logsvc::SubmitStatus::ok) {
    throw std::runtime_error("EquivocatingLog: submit refused");
  }
  const logsvc::SubmitOutcome outcome = future.get();
  if (outcome.status != logsvc::SubmitStatus::ok) {
    throw std::runtime_error("EquivocatingLog: submission failed at seal");
  }
}

void EquivocatingLog::grow(SimTime now) {
  append(*left_, next_left_++, Side::left, now);
  append(*right_, next_right_++, Side::right, now);
}

void EquivocatingLog::grow(std::uint64_t n, SimTime now) {
  for (std::uint64_t i = 0; i < n; ++i) grow(now);
}

void EquivocatingLog::grow_side(Side side, SimTime now) {
  if (side == Side::left) {
    append(*left_, next_left_++, Side::left, now);
  } else {
    append(*right_, next_right_++, Side::right, now);
  }
}

ct::SignedTreeHead EquivocatingLog::sign_arbitrary_sth(std::uint64_t tree_size,
                                                       std::uint64_t timestamp_ms,
                                                       const crypto::Digest& root) const {
  ct::SignedTreeHead sth;
  sth.tree_size = tree_size;
  sth.timestamp_ms = timestamp_ms;
  sth.root_hash = root;
  sth.signature = oracle_->sign(ct::sth_signing_input(sth));
  return sth;
}

}  // namespace ctwatch::gossip
