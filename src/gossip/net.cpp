#include "ctwatch/gossip/net.hpp"

#include <algorithm>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::gossip {

namespace {

struct Metrics {
  obs::Counter& fetched = obs::Registry::global().counter("gossip.sth_fetched");
  obs::Counter& gossiped = obs::Registry::global().counter("gossip.sth_gossiped");
  obs::Counter& accepted = obs::Registry::global().counter("gossip.sth_accepted");
  obs::Counter& forged = obs::Registry::global().counter("gossip.forged_dropped");
  obs::Counter& challenges = obs::Registry::global().counter("gossip.challenges");
  obs::Counter& detections = obs::Registry::global().counter("gossip.split_view_detected");
};

Metrics& metrics() {
  static Metrics m;
  return m;
}

}  // namespace

GossipNet::GossipNet(NetConfig config, Bytes log_public_key)
    : config_(std::move(config)),
      log_public_key_(std::move(log_public_key)),
      master_rng_(config_.seed) {}

std::size_t GossipNet::add_actor(LogView& view, bool aggregator) {
  Actor actor;
  actor.view = &view;
  actor.aggregator = aggregator;
  actor.rng = master_rng_.fork();
  actors_.push_back(std::move(actor));
  return actors_.size() - 1;
}

std::size_t GossipNet::add_peer(LogView& view) { return add_actor(view, false); }

std::size_t GossipNet::add_aggregator(LogView& view) { return add_actor(view, true); }

void GossipNet::connect(std::size_t a, std::size_t b) {
  if (a == b || a >= actors_.size() || b >= actors_.size()) return;
  auto& na = actors_[a].neighbors;
  if (std::find(na.begin(), na.end(), b) != na.end()) return;
  na.push_back(b);
  actors_[b].neighbors.push_back(a);
}

void GossipNet::cover(std::size_t aggregator, std::size_t peer) {
  if (aggregator >= actors_.size() || peer >= actors_.size()) return;
  if (!actors_[aggregator].aggregator || aggregator == peer) return;
  auto& observers = actors_[peer].observers;
  if (std::find(observers.begin(), observers.end(), aggregator) == observers.end()) {
    observers.push_back(aggregator);
  }
}

bool GossipNet::inject(std::size_t actor, const ct::SignedTreeHead& sth, SimTime now) {
  return receive(actor, sth, now);
}

bool GossipNet::receive(std::size_t index, const ct::SignedTreeHead& sth, SimTime now) {
  // Gossiped heads are untrusted input: only the log's signature makes
  // one admissible (and makes the eventual verdict self-certifying).
  if (!ct::verify_sth(sth, log_public_key_)) {
    ++stats_.forged_dropped;
    metrics().forged.inc();
    return false;
  }
  Actor& actor = actors_[index];
  for (const ct::SignedTreeHead& k : actor.known) {
    if (k.tree_size == sth.tree_size && k.root_hash == sth.root_hash) return true;  // known
  }
  ++stats_.sths_accepted;
  metrics().accepted.inc();
  for (const ct::SignedTreeHead& k : actor.known) {
    if (k.tree_size == sth.tree_size) {
      // Same size, different root (dedup above): no proof could
      // reconcile them, the pair alone is the evidence.
      if (!actor.verdict) {
        record_detection(index, now, k, sth, {}, true,
                         "two signed heads of size " + std::to_string(k.tree_size) +
                             " with different roots");
      }
    } else {
      actor.pending.emplace_back(k, sth);
    }
  }
  actor.known.push_back(sth);
  if (actor.known.size() > config_.max_known) actor.known.erase(actor.known.begin());
  return true;
}

void GossipNet::record_detection(std::size_t actor, SimTime now, const ct::SignedTreeHead& a,
                                 const ct::SignedTreeHead& b, std::vector<crypto::Digest> proof,
                                 bool same_size, std::string reason) {
  SplitViewDetected detection;
  detection.actor = actor;
  detection.round = round_;
  detection.at_unix = now.unix_seconds();
  detection.sth_a = a;
  detection.sth_b = b;
  detection.proof = std::move(proof);
  detection.same_size = same_size;
  detection.reason = std::move(reason);
  detections_.push_back(std::move(detection));
  actors_[actor].verdict = true;
  actors_[actor].pending.clear();
  metrics().detections.inc();
  obs::flight_note("gossip.split_view", round_);
}

void GossipNet::run_challenges(std::size_t index, SimTime now) {
  Actor& actor = actors_[index];
  if (actor.verdict || actor.pending.empty()) return;
  // record_detection clears the member; drain into a local first.
  auto pending = std::move(actor.pending);
  actor.pending.clear();
  std::vector<std::pair<ct::SignedTreeHead, ct::SignedTreeHead>> keep;
  keep.reserve(pending.size());
  for (auto& pair : pending) {
    if (actor.verdict) break;  // the verdict is one-shot: stop challenging
    if (config_.chaos != nullptr &&
        config_.chaos->evaluate(config_.chaos_prefix + ".challenge", now_us(now)).faulted()) {
      ++stats_.challenge_faults;
      keep.push_back(std::move(pair));
      continue;
    }
    ++stats_.challenges_run;
    metrics().challenges.inc();
    ChallengeResult result = challenge_pair(*actor.view, pair.first, pair.second);
    switch (result.status) {
      case ChallengeStatus::consistent:
        break;  // reconciled: drop the pair
      case ChallengeStatus::pending:
        keep.push_back(std::move(pair));  // face can't serve yet: retry
        break;
      case ChallengeStatus::split_view:
        record_detection(index, now, pair.first, pair.second, std::move(result.proof),
                         result.same_size_conflict, std::move(result.reason));
        break;
    }
  }
  if (!actor.verdict) actor.pending = std::move(keep);
}

void GossipNet::step(SimTime now) {
  ++round_;
  const std::uint64_t virtual_us = now_us(now);

  // Phase 1 — peers poll their face; covering aggregation points see the
  // same head in transit (the in-network observation of Dahlberg et al.).
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    Actor& actor = actors_[i];
    if (actor.aggregator) continue;
    if (config_.chaos != nullptr &&
        config_.chaos->evaluate(config_.chaos_prefix + ".fetch", virtual_us).faulted()) {
      ++stats_.fetch_faults;
      continue;
    }
    const ct::SignedTreeHead sth = actor.view->get_sth();
    ++stats_.sths_fetched;
    metrics().fetched.inc();
    receive(i, sth, now);
    for (const std::size_t observer : actor.observers) receive(observer, sth, now);
  }

  // Phase 2 — pollination. Outboxes are snapshotted first so a head
  // travels at most one hop per round regardless of iteration order.
  std::vector<std::vector<ct::SignedTreeHead>> outbox(actors_.size());
  for (std::size_t i = 0; i < actors_.size(); ++i) outbox[i] = actors_[i].known;
  for (std::size_t i = 0; i < actors_.size(); ++i) {
    Actor& actor = actors_[i];
    if (actor.neighbors.empty() || outbox[i].empty()) continue;
    std::vector<std::size_t> targets = actor.neighbors;
    actor.rng.shuffle(targets);
    if (targets.size() > config_.fanout) targets.resize(config_.fanout);
    for (const std::size_t j : targets) {
      if (config_.chaos != nullptr) {
        const std::string link = config_.chaos_prefix + ".link." +
                                 std::to_string(std::min(i, j)) + "-" +
                                 std::to_string(std::max(i, j));
        if (config_.chaos->evaluate(link, virtual_us).faulted()) {
          ++stats_.link_faults;
          continue;
        }
      }
      for (const ct::SignedTreeHead& sth : outbox[i]) {
        ++stats_.sths_gossiped;
        metrics().gossiped.inc();
        receive(j, sth, now);
      }
    }
  }

  // Phase 3 — every actor challenges its own face on what it cannot
  // reconcile; pairs the face cannot serve yet stay pending.
  for (std::size_t i = 0; i < actors_.size(); ++i) run_challenges(i, now);

  stats_.challenges_pending = 0;
  for (const Actor& actor : actors_) stats_.challenges_pending += actor.pending.size();
}

}  // namespace ctwatch::gossip
