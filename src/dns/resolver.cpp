#include "ctwatch/dns/resolver.hpp"

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::dns {

namespace {

struct ResolverMetrics {
  obs::Counter& queries = obs::Registry::global().counter("dns.resolver.queries");
  obs::Counter& answered = obs::Registry::global().counter("dns.resolver.answered");
  obs::Counter& nxdomain = obs::Registry::global().counter("dns.resolver.nxdomain");
  obs::Counter& no_data = obs::Registry::global().counter("dns.resolver.no_data");
  obs::Counter& chain_too_long = obs::Registry::global().counter("dns.resolver.chain_too_long");
  obs::Counter& timed_out = obs::Registry::global().counter("dns.resolver.timed_out");
  obs::Counter& servfail = obs::Registry::global().counter("dns.resolver.servfail");
  obs::Counter& auth_queries = obs::Registry::global().counter("dns.auth.queries");
  obs::Counter& auth_timed_out = obs::Registry::global().counter("dns.auth.timed_out");
  obs::Counter& auth_servfail = obs::Registry::global().counter("dns.auth.servfail");
};

/// Chaos points take virtual time in microseconds; SimTime is seconds.
std::uint64_t chaos_now_us(SimTime when) {
  return static_cast<std::uint64_t>(when.unix_seconds()) * 1'000'000ULL;
}

ResolverMetrics& resolver_metrics() {
  static ResolverMetrics metrics;
  return metrics;
}

}  // namespace

Zone& AuthoritativeServer::add_zone(DnsName origin) {
  const std::string key = origin.to_string();
  auto& slot = zones_[key];
  slot = std::make_unique<Zone>(std::move(origin));
  return *slot;
}

Zone* AuthoritativeServer::find_zone(const DnsName& name) {
  // Walk from the most specific ancestor (the name itself) towards the TLD.
  for (std::size_t drop = 0; drop < name.label_count(); ++drop) {
    const auto it = zones_.find(name.parent(drop).to_string());
    if (it != zones_.end()) return it->second.get();
  }
  return nullptr;
}

const Zone* AuthoritativeServer::find_zone(const DnsName& name) const {
  return const_cast<AuthoritativeServer*>(this)->find_zone(name);
}

std::vector<ResourceRecord> AuthoritativeServer::query(const DnsQuestion& question,
                                                       const QueryContext& context) {
  ServerStatus status = ServerStatus::ok;
  return query(question, context, status);
}

std::vector<ResourceRecord> AuthoritativeServer::query(const DnsQuestion& question,
                                                       const QueryContext& context,
                                                       ServerStatus& status) {
  status = ServerStatus::ok;
  resolver_metrics().auth_queries.inc();
  if (chaos_ != nullptr) {
    const chaos::FaultDecision fault = chaos_->evaluate(chaos_point_, chaos_now_us(context.time));
    if (fault.kind == chaos::FaultKind::timeout) {
      // The packet never arrived: the server saw nothing, so it logs
      // nothing — lossy-DNS undercounting is invisible at this vantage.
      status = ServerStatus::timed_out;
      resolver_metrics().auth_timed_out.inc();
      return {};
    }
    if (fault.kind == chaos::FaultKind::error) {
      // SERVFAIL: the query reached us, so it *is* an observable.
      status = ServerStatus::servfail;
      resolver_metrics().auth_servfail.inc();
      if (logging_) {
        std::lock_guard<std::mutex> lock(log_mu_);
        log_.push_back(QueryLogEntry{question, context, false});
      }
      return {};
    }
  }
  std::vector<ResourceRecord> answers;
  if (const Zone* zone = find_zone(question.qname)) {
    answers = zone->lookup(question.qname, question.qtype);
  }
  if (logging_) {
    std::lock_guard<std::mutex> lock(log_mu_);
    log_.push_back(QueryLogEntry{question, context, !answers.empty()});
  }
  return answers;
}

AuthoritativeServer* DnsUniverse::find_authoritative(const DnsName& name) const {
  AuthoritativeServer* best = nullptr;
  std::size_t best_labels = 0;
  for (AuthoritativeServer* server : servers_) {
    if (const Zone* zone = server->find_zone(name)) {
      if (zone->origin().label_count() >= best_labels) {
        // ">=" so a later-registered, equally specific server wins; zone
        // origins are unique in practice.
        best_labels = zone->origin().label_count();
        best = server;
      }
    }
  }
  return best;
}

std::optional<net::IPv4> ResolveResult::first_a() const {
  for (const ResourceRecord& rr : answers) {
    if (rr.type == RrType::A) return rr.a();
  }
  return std::nullopt;
}

ResolveResult RecursiveResolver::resolve(const DnsName& qname, RrType qtype, SimTime when,
                                         std::optional<net::IPv4> stub_client,
                                         int max_cname_hops) const {
  ResolverMetrics& metrics = resolver_metrics();
  metrics.queries.inc();
  ResolveResult result;
  if (chaos_ != nullptr) {
    // The stub → resolver leg: a fault here loses the whole resolution
    // before any authoritative server is asked (nothing gets logged).
    const chaos::FaultDecision fault = chaos_->evaluate(chaos_point_, chaos_now_us(when));
    if (fault.kind == chaos::FaultKind::timeout) {
      result.status = ResolveStatus::timed_out;
      metrics.timed_out.inc();
      return result;
    }
    if (fault.kind == chaos::FaultKind::error) {
      result.status = ResolveStatus::servfail;
      metrics.servfail.inc();
      return result;
    }
  }
  QueryContext context;
  context.time = when;
  context.resolver_addr = identity_.address;
  context.resolver_asn = identity_.asn;
  context.resolver_label = identity_.label;
  if (identity_.sends_ecs && stub_client) {
    context.client_subnet = net::slash24(*stub_client);
  }

  DnsName current = qname;
  for (int hop = 0; hop <= max_cname_hops; ++hop) {
    AuthoritativeServer* server = universe_->find_authoritative(current);
    if (server == nullptr) {
      result.status = ResolveStatus::nxdomain;
      metrics.nxdomain.inc();
      return result;
    }
    ServerStatus server_status = ServerStatus::ok;
    const auto answers = server->query(DnsQuestion{current, qtype}, context, server_status);
    if (server_status != ServerStatus::ok) {
      result.status = server_status == ServerStatus::timed_out ? ResolveStatus::timed_out
                                                               : ResolveStatus::servfail;
      (server_status == ServerStatus::timed_out ? metrics.timed_out : metrics.servfail).inc();
      return result;
    }
    if (answers.empty()) {
      // Distinguish "zone knows nothing" from "name exists with other data":
      // keep it simple and report no_data when any record type exists.
      const Zone* zone = server->find_zone(current);
      bool exists = false;
      for (RrType probe : {RrType::A, RrType::AAAA, RrType::CNAME, RrType::TXT, RrType::MX,
                           RrType::NS, RrType::SOA}) {
        if (probe != qtype && zone != nullptr && !zone->lookup(current, probe).empty()) {
          exists = true;
          break;
        }
      }
      result.status = exists ? ResolveStatus::no_data : ResolveStatus::nxdomain;
      (exists ? metrics.no_data : metrics.nxdomain).inc();
      return result;
    }
    if (answers.front().type == RrType::CNAME && qtype != RrType::CNAME) {
      if (hop == max_cname_hops) {
        result.status = ResolveStatus::chain_too_long;
        result.cname_hops = hop;
        metrics.chain_too_long.inc();
        obs::log_trace("dns.resolver", "cname chain exceeded hop limit",
                       {{"qname", qname.to_string()}, {"hops", hop}});
        return result;
      }
      current = answers.front().target();
      ++result.cname_hops;
      continue;
    }
    result.status = ResolveStatus::ok;
    result.answers = answers;
    metrics.answered.inc();
    return result;
  }
  result.status = ResolveStatus::chain_too_long;
  metrics.chain_too_long.inc();
  return result;
}

}  // namespace ctwatch::dns
