#include "ctwatch/dns/resolver.hpp"

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::dns {

namespace {

struct ResolverMetrics {
  obs::Counter& queries = obs::Registry::global().counter("dns.resolver.queries");
  obs::Counter& answered = obs::Registry::global().counter("dns.resolver.answered");
  obs::Counter& nxdomain = obs::Registry::global().counter("dns.resolver.nxdomain");
  obs::Counter& no_data = obs::Registry::global().counter("dns.resolver.no_data");
  obs::Counter& chain_too_long = obs::Registry::global().counter("dns.resolver.chain_too_long");
  obs::Counter& auth_queries = obs::Registry::global().counter("dns.auth.queries");
};

ResolverMetrics& resolver_metrics() {
  static ResolverMetrics metrics;
  return metrics;
}

}  // namespace

Zone& AuthoritativeServer::add_zone(DnsName origin) {
  const std::string key = origin.to_string();
  auto& slot = zones_[key];
  slot = std::make_unique<Zone>(std::move(origin));
  return *slot;
}

Zone* AuthoritativeServer::find_zone(const DnsName& name) {
  // Walk from the most specific ancestor (the name itself) towards the TLD.
  for (std::size_t drop = 0; drop < name.label_count(); ++drop) {
    const auto it = zones_.find(name.parent(drop).to_string());
    if (it != zones_.end()) return it->second.get();
  }
  return nullptr;
}

const Zone* AuthoritativeServer::find_zone(const DnsName& name) const {
  return const_cast<AuthoritativeServer*>(this)->find_zone(name);
}

std::vector<ResourceRecord> AuthoritativeServer::query(const DnsQuestion& question,
                                                       const QueryContext& context) {
  resolver_metrics().auth_queries.inc();
  std::vector<ResourceRecord> answers;
  if (const Zone* zone = find_zone(question.qname)) {
    answers = zone->lookup(question.qname, question.qtype);
  }
  if (logging_) log_.push_back(QueryLogEntry{question, context, !answers.empty()});
  return answers;
}

AuthoritativeServer* DnsUniverse::find_authoritative(const DnsName& name) const {
  AuthoritativeServer* best = nullptr;
  std::size_t best_labels = 0;
  for (AuthoritativeServer* server : servers_) {
    if (const Zone* zone = server->find_zone(name)) {
      if (zone->origin().label_count() >= best_labels) {
        // ">=" so a later-registered, equally specific server wins; zone
        // origins are unique in practice.
        best_labels = zone->origin().label_count();
        best = server;
      }
    }
  }
  return best;
}

std::optional<net::IPv4> ResolveResult::first_a() const {
  for (const ResourceRecord& rr : answers) {
    if (rr.type == RrType::A) return rr.a();
  }
  return std::nullopt;
}

ResolveResult RecursiveResolver::resolve(const DnsName& qname, RrType qtype, SimTime when,
                                         std::optional<net::IPv4> stub_client,
                                         int max_cname_hops) const {
  ResolverMetrics& metrics = resolver_metrics();
  metrics.queries.inc();
  ResolveResult result;
  QueryContext context;
  context.time = when;
  context.resolver_addr = identity_.address;
  context.resolver_asn = identity_.asn;
  context.resolver_label = identity_.label;
  if (identity_.sends_ecs && stub_client) {
    context.client_subnet = net::slash24(*stub_client);
  }

  DnsName current = qname;
  for (int hop = 0; hop <= max_cname_hops; ++hop) {
    AuthoritativeServer* server = universe_->find_authoritative(current);
    if (server == nullptr) {
      result.status = ResolveStatus::nxdomain;
      metrics.nxdomain.inc();
      return result;
    }
    const auto answers = server->query(DnsQuestion{current, qtype}, context);
    if (answers.empty()) {
      // Distinguish "zone knows nothing" from "name exists with other data":
      // keep it simple and report no_data when any record type exists.
      const Zone* zone = server->find_zone(current);
      bool exists = false;
      for (RrType probe : {RrType::A, RrType::AAAA, RrType::CNAME, RrType::TXT, RrType::MX,
                           RrType::NS, RrType::SOA}) {
        if (probe != qtype && zone != nullptr && !zone->lookup(current, probe).empty()) {
          exists = true;
          break;
        }
      }
      result.status = exists ? ResolveStatus::no_data : ResolveStatus::nxdomain;
      (exists ? metrics.no_data : metrics.nxdomain).inc();
      return result;
    }
    if (answers.front().type == RrType::CNAME && qtype != RrType::CNAME) {
      if (hop == max_cname_hops) {
        result.status = ResolveStatus::chain_too_long;
        result.cname_hops = hop;
        metrics.chain_too_long.inc();
        obs::log_trace("dns.resolver", "cname chain exceeded hop limit",
                       {{"qname", qname.to_string()}, {"hops", hop}});
        return result;
      }
      current = answers.front().target();
      ++result.cname_hops;
      continue;
    }
    result.status = ResolveStatus::ok;
    result.answers = answers;
    metrics.answered.inc();
    return result;
  }
  result.status = ResolveStatus::chain_too_long;
  metrics.chain_too_long.inc();
  return result;
}

}  // namespace ctwatch::dns
