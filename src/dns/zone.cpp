#include "ctwatch/dns/zone.hpp"

#include <stdexcept>

namespace ctwatch::dns {

void Zone::add(ResourceRecord record) {
  if (!in_zone(record.name) && !(record.name.first_label() == "*" &&
                                 record.name.parent().is_subdomain_of(origin_))) {
    throw std::invalid_argument("Zone::add: record " + record.name.to_string() +
                                " outside zone " + origin_.to_string());
  }
  records_[record.name.to_string()].push_back(std::move(record));
}

std::vector<ResourceRecord> Zone::lookup(const DnsName& name, RrType type) const {
  auto select = [&](const std::vector<ResourceRecord>& rrset,
                    const DnsName& owner) -> std::vector<ResourceRecord> {
    std::vector<ResourceRecord> out;
    // CNAME takes precedence: a name with a CNAME has no other data.
    for (const ResourceRecord& rr : rrset) {
      if (rr.type == RrType::CNAME) {
        ResourceRecord copy = rr;
        copy.name = owner;
        return {copy};
      }
    }
    for (const ResourceRecord& rr : rrset) {
      if (rr.type == type) {
        ResourceRecord copy = rr;
        copy.name = owner;
        out.push_back(copy);
      }
    }
    return out;
  };

  if (const auto it = records_.find(name.to_string()); it != records_.end()) {
    return select(it->second, name);
  }
  // Wildcard synthesis: try "*.<ancestor>" for each ancestor strictly
  // between the name and the origin (closest first).
  for (std::size_t drop = 1; drop < name.label_count(); ++drop) {
    const DnsName ancestor = name.parent(drop);
    if (!ancestor.is_subdomain_of(origin_)) break;
    const std::string key = "*." + ancestor.to_string();
    if (const auto it = records_.find(key); it != records_.end()) {
      return select(it->second, name);
    }
  }
  if (default_a_ && type == RrType::A && in_zone(name)) {
    return {ResourceRecord{name, RrType::A, 300, *default_a_}};
  }
  return {};
}

std::size_t Zone::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, rrset] : records_) n += rrset.size();
  return n;
}

}  // namespace ctwatch::dns
