#include "ctwatch/dns/records.hpp"

namespace ctwatch::dns {

std::string to_string(RrType type) {
  switch (type) {
    case RrType::A:
      return "A";
    case RrType::AAAA:
      return "AAAA";
    case RrType::CNAME:
      return "CNAME";
    case RrType::MX:
      return "MX";
    case RrType::NS:
      return "NS";
    case RrType::SOA:
      return "SOA";
    case RrType::TXT:
      return "TXT";
  }
  return "?";
}

}  // namespace ctwatch::dns
