#include "ctwatch/dns/psl.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "ctwatch/util/strings.hpp"

namespace ctwatch::dns {

std::string NameSplit::subdomain() const { return join(subdomain_labels, "."); }

namespace {
// Snapshot of PSL rules sufficient for the experiments: the suffixes the
// paper names explicitly (tech, email, cloud, design, gov, gov.uk, com, ga,
// info, tk, ml, bid, review, live, money, cf, gq, my, co.am, …) plus common
// ICANN country/generic suffixes so synthetic domain populations look
// realistic. Syntax is the PSL's own.
constexpr const char* kBundledRules = R"(// ctwatch PSL snapshot (subset)
com
net
org
info
biz
name
pro
edu
gov
mil
int
io
co
ai
app
dev
page
tech
email
cloud
design
money
live
bid
review
site
online
xyz
top
club
shop
blog
art
wiki
link
click
gq
tk
ml
ga
cf
us
uk
co.uk
org.uk
gov.uk
ac.uk
net.uk
au
com.au
net.au
org.au
gov.au
edu.au
de
fr
it
nl
eu
es
pt
pl
cz
sk
hu
gr
tr
ru
su
jp
co.jp
ne.jp
or.jp
cn
com.cn
net.cn
gov.cn
in
co.in
kr
co.kr
br
com.br
ar
com.ar
mx
com.mx
ca
ch
at
be
dk
no
se
fi
ie
nz
co.nz
za
co.za
il
co.il
my
com.my
gov.my
am
co.am
sg
com.sg
hk
com.hk
tw
com.tw
id
co.id
th
co.th
vn
com.vn
ph
ua
com.ua
by
kz
ge
md
rs
ba
hr
si
lt
lv
ee
is
lu
mc
sm
va
*.ck
!www.ck
)";
}  // namespace

PublicSuffixList PublicSuffixList::bundled() {
  PublicSuffixList psl;
  psl.add_rules_text(kBundledRules);
  return psl;
}

void PublicSuffixList::add_rule(const std::string& rule) {
  if (rule.empty()) throw std::invalid_argument("PSL: empty rule");
  Rule parsed;
  std::string body = rule;
  if (body.front() == '!') {
    parsed.kind = RuleKind::exception;
    body.erase(0, 1);
  } else if (body.rfind("*.", 0) == 0) {
    parsed.kind = RuleKind::wildcard;
    body.erase(0, 2);
  } else {
    parsed.kind = RuleKind::normal;
  }
  if (body.empty()) throw std::invalid_argument("PSL: empty rule body: " + rule);
  std::vector<std::string> labels = ctwatch::split(to_lower(body), '.');
  for (const std::string& label : labels) {
    if (!valid_label(label)) throw std::invalid_argument("PSL: bad label in rule: " + rule);
  }
  std::reverse(labels.begin(), labels.end());
  parsed.labels = labels;
  std::string key = join(labels, ".");
  if (parsed.kind == RuleKind::wildcard) key += ".*";
  if (parsed.kind == RuleKind::exception) key += ".!";
  rules_[key] = std::move(parsed);
}

void PublicSuffixList::add_rules_text(const std::string& text) {
  for (const std::string& line : ctwatch::split(text, '\n')) {
    std::string trimmed = line;
    // Strip trailing CR and surrounding spaces.
    while (!trimmed.empty() && (trimmed.back() == '\r' || trimmed.back() == ' ')) {
      trimmed.pop_back();
    }
    std::size_t start = 0;
    while (start < trimmed.size() && trimmed[start] == ' ') ++start;
    trimmed.erase(0, start);
    if (trimmed.empty() || trimmed.rfind("//", 0) == 0) continue;
    add_rule(trimmed);
  }
}

std::size_t PublicSuffixList::suffix_label_count(
    std::span<const std::string_view> labels) const {
  // Evaluate rules per the PSL algorithm over the reversed label path:
  // exception rules beat wildcard/normal; otherwise the longest match wins;
  // no match -> prevailing rule "*" (one label).
  std::size_t best = 1;
  bool exception_hit = false;
  std::size_t exception_len = 0;

  std::string path;
  std::string probe;  // reused "<path>.*" / "<path>.!" key buffer
  for (std::size_t depth = 1; depth <= labels.size(); ++depth) {
    if (depth > 1) path.push_back('.');
    path += labels[labels.size() - depth];
    if (auto it = rules_.find(std::string_view(path));
        it != rules_.end() && it->second.kind == RuleKind::normal) {
      best = std::max(best, depth);
    }
    // A wildcard rule "*.<path-of-depth-d>" matches a suffix of depth d+1.
    probe.assign(path).append(".*");
    if (auto it = rules_.find(std::string_view(probe));
        it != rules_.end() && depth + 1 <= labels.size()) {
      best = std::max(best, depth + 1);
    }
    probe.assign(path).append(".!");
    if (auto it = rules_.find(std::string_view(probe)); it != rules_.end()) {
      // Exception rule: the suffix is the rule minus its leftmost label.
      exception_hit = true;
      exception_len = depth - 1;
    }
  }
  if (exception_hit) return std::max<std::size_t>(exception_len, 1);
  return best;
}

std::size_t PublicSuffixList::suffix_label_count(const std::vector<std::string>& labels) const {
  std::vector<std::string_view> views(labels.begin(), labels.end());
  return suffix_label_count(std::span<const std::string_view>(views));
}

namespace {
constexpr std::uint64_t kPathHashBasis = 1469598103934665603ull;
constexpr std::uint64_t kPathHashPrime = 1099511628211ull;
}  // namespace

std::size_t PublicSuffixList::suffix_label_count_ids(
    namepool::NamePool& pool, std::span<const namepool::LabelId> ids) const {
  CompiledCache& cache = *compiled_;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (cache.pool_generation != pool.generation() || cache.rule_count != rules_.size()) {
    // (Re)compile every rule path to ids in `pool`'s label table. Interning
    // (not find) keeps the ids valid even for labels no name has used yet.
    cache.rules.clear();
    cache.max_depth = 0;
    for (const auto& [key, rule] : rules_) {
      std::vector<namepool::LabelId> path;
      path.reserve(rule.labels.size());
      std::uint64_t hash = kPathHashBasis;
      for (const std::string& label : rule.labels) {
        const namepool::LabelId id = pool.labels().intern(label);
        path.push_back(id);
        hash = (hash ^ id) * kPathHashPrime;
      }
      auto& bucket = cache.rules[hash];
      CompiledRule* slot = nullptr;
      for (CompiledRule& existing : bucket) {
        if (existing.path == path) slot = &existing;
      }
      if (slot == nullptr) {
        bucket.push_back(CompiledRule{std::move(path), false, false, false});
        slot = &bucket.back();
      }
      switch (rule.kind) {
        case RuleKind::normal: slot->normal = true; break;
        case RuleKind::wildcard: slot->wildcard = true; break;
        case RuleKind::exception: slot->exception = true; break;
      }
      cache.max_depth = std::max(cache.max_depth, slot->path.size());
    }
    cache.pool_generation = pool.generation();
    cache.rule_count = rules_.size();
  }

  // Same decision procedure as the string overload, on integers: walk the
  // reversed path depth by depth with a running hash. No rule is longer
  // than cache.max_depth, so the walk stops there.
  std::size_t best = 1;
  bool exception_hit = false;
  std::size_t exception_len = 0;
  std::uint64_t hash = kPathHashBasis;
  const std::size_t max_depth = std::min(ids.size(), cache.max_depth);
  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    hash = (hash ^ ids[ids.size() - depth]) * kPathHashPrime;
    const auto it = cache.rules.find(hash);
    if (it == cache.rules.end()) continue;
    for (const CompiledRule& rule : it->second) {
      if (rule.path.size() != depth) continue;
      bool matches = true;
      for (std::size_t i = 0; i < depth; ++i) {
        if (rule.path[i] != ids[ids.size() - 1 - i]) {
          matches = false;
          break;
        }
      }
      if (!matches) continue;
      if (rule.normal) best = std::max(best, depth);
      if (rule.wildcard && depth + 1 <= ids.size()) best = std::max(best, depth + 1);
      if (rule.exception) {
        exception_hit = true;
        exception_len = depth - 1;
      }
    }
  }
  if (exception_hit) return std::max<std::size_t>(exception_len, 1);
  return best;
}

std::optional<RefSplit> PublicSuffixList::split(namepool::NamePool& pool,
                                                namepool::NameRef name) const {
  const std::span<const namepool::LabelId> ids = pool.ids(name);
  const std::size_t suffix_len = suffix_label_count_ids(pool, ids);
  if (ids.size() <= suffix_len) return std::nullopt;  // the name IS a suffix
  RefSplit out;
  out.public_suffix = pool.parent(name, ids.size() - suffix_len);
  out.registrable_domain = pool.parent(name, ids.size() - suffix_len - 1);
  out.subdomain_label_count = static_cast<std::uint32_t>(ids.size() - suffix_len - 1);
  return out;
}

std::string PublicSuffixList::public_suffix(const DnsName& name) const {
  const std::size_t count = std::min(suffix_label_count(name.labels()), name.label_count());
  return name.parent(name.label_count() - count).to_string();
}

std::optional<NameSplit> PublicSuffixList::split(const DnsName& name) const {
  const std::size_t suffix_len = suffix_label_count(name.labels());
  if (name.label_count() <= suffix_len) return std::nullopt;  // the name IS a suffix
  NameSplit out;
  out.public_suffix = name.parent(name.label_count() - suffix_len).to_string();
  out.registrable_domain = name.parent(name.label_count() - suffix_len - 1).to_string();
  out.subdomain_labels.assign(
      name.labels().begin(),
      name.labels().begin() + static_cast<std::ptrdiff_t>(name.label_count() - suffix_len - 1));
  return out;
}

std::optional<NameSplit> PublicSuffixList::split(const std::string& name) const {
  const auto parsed = DnsName::parse(name);
  if (!parsed) return std::nullopt;
  return split(*parsed);
}

}  // namespace ctwatch::dns
