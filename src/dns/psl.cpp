#include "ctwatch/dns/psl.hpp"

#include <algorithm>
#include <stdexcept>

#include "ctwatch/util/strings.hpp"

namespace ctwatch::dns {

std::string NameSplit::subdomain() const { return join(subdomain_labels, "."); }

namespace {
// Snapshot of PSL rules sufficient for the experiments: the suffixes the
// paper names explicitly (tech, email, cloud, design, gov, gov.uk, com, ga,
// info, tk, ml, bid, review, live, money, cf, gq, my, co.am, …) plus common
// ICANN country/generic suffixes so synthetic domain populations look
// realistic. Syntax is the PSL's own.
constexpr const char* kBundledRules = R"(// ctwatch PSL snapshot (subset)
com
net
org
info
biz
name
pro
edu
gov
mil
int
io
co
ai
app
dev
page
tech
email
cloud
design
money
live
bid
review
site
online
xyz
top
club
shop
blog
art
wiki
link
click
gq
tk
ml
ga
cf
us
uk
co.uk
org.uk
gov.uk
ac.uk
net.uk
au
com.au
net.au
org.au
gov.au
edu.au
de
fr
it
nl
eu
es
pt
pl
cz
sk
hu
gr
tr
ru
su
jp
co.jp
ne.jp
or.jp
cn
com.cn
net.cn
gov.cn
in
co.in
kr
co.kr
br
com.br
ar
com.ar
mx
com.mx
ca
ch
at
be
dk
no
se
fi
ie
nz
co.nz
za
co.za
il
co.il
my
com.my
gov.my
am
co.am
sg
com.sg
hk
com.hk
tw
com.tw
id
co.id
th
co.th
vn
com.vn
ph
ua
com.ua
by
kz
ge
md
rs
ba
hr
si
lt
lv
ee
is
lu
mc
sm
va
*.ck
!www.ck
)";
}  // namespace

PublicSuffixList PublicSuffixList::bundled() {
  PublicSuffixList psl;
  psl.add_rules_text(kBundledRules);
  return psl;
}

void PublicSuffixList::add_rule(const std::string& rule) {
  if (rule.empty()) throw std::invalid_argument("PSL: empty rule");
  Rule parsed;
  std::string body = rule;
  if (body.front() == '!') {
    parsed.kind = RuleKind::exception;
    body.erase(0, 1);
  } else if (body.rfind("*.", 0) == 0) {
    parsed.kind = RuleKind::wildcard;
    body.erase(0, 2);
  } else {
    parsed.kind = RuleKind::normal;
  }
  if (body.empty()) throw std::invalid_argument("PSL: empty rule body: " + rule);
  std::vector<std::string> labels = ctwatch::split(to_lower(body), '.');
  for (const std::string& label : labels) {
    if (!valid_label(label)) throw std::invalid_argument("PSL: bad label in rule: " + rule);
  }
  std::reverse(labels.begin(), labels.end());
  parsed.labels = labels;
  std::string key = join(labels, ".");
  if (parsed.kind == RuleKind::wildcard) key += ".*";
  if (parsed.kind == RuleKind::exception) key += ".!";
  rules_[key] = std::move(parsed);
}

void PublicSuffixList::add_rules_text(const std::string& text) {
  for (const std::string& line : ctwatch::split(text, '\n')) {
    std::string trimmed = line;
    // Strip trailing CR and surrounding spaces.
    while (!trimmed.empty() && (trimmed.back() == '\r' || trimmed.back() == ' ')) {
      trimmed.pop_back();
    }
    std::size_t start = 0;
    while (start < trimmed.size() && trimmed[start] == ' ') ++start;
    trimmed.erase(0, start);
    if (trimmed.empty() || trimmed.rfind("//", 0) == 0) continue;
    add_rule(trimmed);
  }
}

std::size_t PublicSuffixList::suffix_label_count(const std::vector<std::string>& labels) const {
  // Evaluate rules per the PSL algorithm over the reversed label path:
  // exception rules beat wildcard/normal; otherwise the longest match wins;
  // no match -> prevailing rule "*" (one label).
  std::size_t best = 1;
  bool exception_hit = false;
  std::size_t exception_len = 0;

  std::vector<std::string> reversed(labels.rbegin(), labels.rend());
  std::string path;
  for (std::size_t depth = 1; depth <= reversed.size(); ++depth) {
    if (depth > 1) path.push_back('.');
    path += reversed[depth - 1];
    if (auto it = rules_.find(path); it != rules_.end() && it->second.kind == RuleKind::normal) {
      best = std::max(best, depth);
    }
    // A wildcard rule "*.<path-of-depth-d>" matches a suffix of depth d+1.
    if (auto it = rules_.find(path + ".*");
        it != rules_.end() && depth + 1 <= reversed.size()) {
      best = std::max(best, depth + 1);
    }
    if (auto it = rules_.find(path + ".!"); it != rules_.end()) {
      // Exception rule: the suffix is the rule minus its leftmost label.
      exception_hit = true;
      exception_len = depth - 1;
    }
  }
  if (exception_hit) return std::max<std::size_t>(exception_len, 1);
  return best;
}

std::string PublicSuffixList::public_suffix(const DnsName& name) const {
  const std::size_t count = std::min(suffix_label_count(name.labels()), name.label_count());
  return name.parent(name.label_count() - count).to_string();
}

std::optional<NameSplit> PublicSuffixList::split(const DnsName& name) const {
  const std::size_t suffix_len = suffix_label_count(name.labels());
  if (name.label_count() <= suffix_len) return std::nullopt;  // the name IS a suffix
  NameSplit out;
  out.public_suffix = name.parent(name.label_count() - suffix_len).to_string();
  out.registrable_domain = name.parent(name.label_count() - suffix_len - 1).to_string();
  out.subdomain_labels.assign(
      name.labels().begin(),
      name.labels().begin() + static_cast<std::ptrdiff_t>(name.label_count() - suffix_len - 1));
  return out;
}

std::optional<NameSplit> PublicSuffixList::split(const std::string& name) const {
  const auto parsed = DnsName::parse(name);
  if (!parsed) return std::nullopt;
  return split(*parsed);
}

}  // namespace ctwatch::dns
