#include "ctwatch/dns/name.hpp"

#include <array>
#include <cctype>
#include <stdexcept>

namespace ctwatch::dns {
namespace {

// DNS names never exceed 253 characters, so the shared validation core can
// case-fold into a fixed stack buffer and hand out views — no allocation
// until the caller decides what storage form it wants.
struct ParsedLabels {
  std::array<char, 253> buf;
  std::array<std::string_view, 127> labels;  // >= ceil(253 / 2) one-char labels
  std::size_t count = 0;
};

// The single source of truth for the accept/reject rules documented on
// DnsName::parse(). Fills `out` with lowercase label views on success.
bool parse_core(std::string_view text, ParseOptions options, ParsedLabels& out) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty() || text.size() > 253) return false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    out.buf[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  }
  const std::string_view lowered{out.buf.data(), text.size()};

  out.count = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= lowered.size(); ++i) {
    if (i == lowered.size() || lowered[i] == '.') {
      if (i == start) return false;  // empty label
      out.labels[out.count++] = lowered.substr(start, i - start);
      start = i + 1;
    }
  }
  if (out.count < 2) return false;

  for (std::size_t i = 0; i < out.count; ++i) {
    const std::string_view label = out.labels[i];
    if (i == 0 && options.allow_wildcard && label == "*") continue;
    if (!valid_label(label, options.allow_underscore)) return false;
  }
  // All-numeric TLD would make e.g. "1.2.3.4" parse as a name.
  const std::string_view tld = out.labels[out.count - 1];
  bool all_digits = true;
  for (char c : tld) {
    if (c < '0' || c > '9') {
      all_digits = false;
      break;
    }
  }
  return !all_digits;
}

}  // namespace

bool valid_label(std::string_view label, bool allow_underscore) {
  if (label.empty() || label.size() > 63) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
                    (allow_underscore && c == '_');
    if (!ok) return false;
  }
  return true;
}

std::optional<DnsName> DnsName::parse(std::string_view text, ParseOptions options) {
  ParsedLabels parsed;
  if (!parse_core(text, options, parsed)) return std::nullopt;
  std::vector<std::string> labels;
  labels.reserve(parsed.count);
  for (std::size_t i = 0; i < parsed.count; ++i) labels.emplace_back(parsed.labels[i]);
  return DnsName{std::move(labels)};
}

DnsName DnsName::parse_or_throw(std::string_view text, ParseOptions options) {
  auto name = parse(text, options);
  if (!name) throw std::invalid_argument("invalid DNS name: " + std::string(text));
  return *std::move(name);
}

std::optional<namepool::NameRef> DnsName::parse_into(namepool::NamePool& pool,
                                                     std::string_view text,
                                                     ParseOptions options) {
  ParsedLabels parsed;
  if (!parse_core(text, options, parsed)) return std::nullopt;
  std::array<namepool::LabelId, 127> ids;
  for (std::size_t i = 0; i < parsed.count; ++i) {
    ids[i] = pool.labels().intern(parsed.labels[i]);
  }
  return pool.intern_ids({ids.data(), parsed.count}).ref;
}

DnsName DnsName::materialize(const namepool::NamePool& pool, namepool::NameRef ref) {
  std::vector<std::string> labels;
  labels.reserve(ref.count);
  for (namepool::LabelId id : pool.ids(ref)) labels.emplace_back(pool.labels().text(id));
  return DnsName{std::move(labels)};
}

namepool::NameRef DnsName::intern_into(namepool::NamePool& pool) const {
  std::vector<namepool::LabelId> ids;
  ids.reserve(labels_.size());
  for (const std::string& label : labels_) ids.push_back(pool.labels().intern(label));
  return pool.intern_ids(ids).ref;
}

std::string DnsName::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

DnsName DnsName::parent(std::size_t n) const {
  if (n > labels_.size()) throw std::out_of_range("DnsName::parent: too many labels dropped");
  return DnsName{std::vector<std::string>(labels_.begin() + static_cast<std::ptrdiff_t>(n),
                                          labels_.end())};
}

bool DnsName::is_subdomain_of(const DnsName& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  return std::equal(other.labels_.rbegin(), other.labels_.rend(), labels_.rbegin());
}

DnsName DnsName::with_prefix_label(std::string_view label) const {
  if (!valid_label(label) && label != "*") {
    throw std::invalid_argument("with_prefix_label: invalid label: " + std::string(label));
  }
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName{std::move(labels)};
}

}  // namespace ctwatch::dns
