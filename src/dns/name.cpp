#include "ctwatch/dns/name.hpp"

#include <cctype>
#include <stdexcept>

namespace ctwatch::dns {

bool valid_label(std::string_view label, bool allow_underscore) {
  if (label.empty() || label.size() > 63) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
                    (allow_underscore && c == '_');
    if (!ok) return false;
  }
  return true;
}

std::optional<DnsName> DnsName::parse(std::string_view text, ParseOptions options) {
  if (!text.empty() && text.back() == '.') text.remove_suffix(1);
  if (text.empty() || text.size() > 253) return std::nullopt;

  std::vector<std::string> labels;
  std::string current;
  auto flush = [&]() -> bool {
    if (current.empty()) return false;
    labels.push_back(std::move(current));
    current.clear();
    return true;
  };
  for (char raw : text) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (c == '.') {
      if (!flush()) return std::nullopt;  // empty label
    } else {
      current.push_back(c);
    }
  }
  if (!flush()) return std::nullopt;
  if (labels.size() < 2) return std::nullopt;

  for (std::size_t i = 0; i < labels.size(); ++i) {
    const std::string& label = labels[i];
    if (i == 0 && options.allow_wildcard && label == "*") continue;
    if (!valid_label(label, options.allow_underscore)) return std::nullopt;
  }
  // All-numeric TLD would make e.g. "1.2.3.4" parse as a name.
  const std::string& tld = labels.back();
  bool all_digits = true;
  for (char c : tld) {
    if (c < '0' || c > '9') {
      all_digits = false;
      break;
    }
  }
  if (all_digits) return std::nullopt;
  return DnsName{std::move(labels)};
}

DnsName DnsName::parse_or_throw(std::string_view text, ParseOptions options) {
  auto name = parse(text, options);
  if (!name) throw std::invalid_argument("invalid DNS name: " + std::string(text));
  return *std::move(name);
}

std::string DnsName::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

DnsName DnsName::parent(std::size_t n) const {
  if (n > labels_.size()) throw std::out_of_range("DnsName::parent: too many labels dropped");
  return DnsName{std::vector<std::string>(labels_.begin() + static_cast<std::ptrdiff_t>(n),
                                          labels_.end())};
}

bool DnsName::is_subdomain_of(const DnsName& other) const {
  if (other.labels_.size() > labels_.size()) return false;
  return std::equal(other.labels_.rbegin(), other.labels_.rend(), labels_.rbegin());
}

DnsName DnsName::with_prefix_label(const std::string& label) const {
  if (!valid_label(label) && label != "*") {
    throw std::invalid_argument("with_prefix_label: invalid label: " + label);
  }
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.push_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName{std::move(labels)};
}

}  // namespace ctwatch::dns
