#include "ctwatch/namepool/namepool.hpp"

#include <stdexcept>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::namepool {

namespace {

struct PoolMetrics {
  obs::Gauge& bytes = obs::Registry::global().gauge("namepool.bytes");
  obs::Gauge& labels = obs::Registry::global().gauge("namepool.labels");
  obs::Gauge& names = obs::Registry::global().gauge("namepool.names");
  obs::Counter& label_hits = obs::Registry::global().counter("namepool.label_intern.hits");
  obs::Counter& name_hits = obs::Registry::global().counter("namepool.name_intern.hits");
  obs::Counter& name_misses = obs::Registry::global().counter("namepool.name_intern.misses");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

// FNV-1a over the bytes of a LabelId span, finalized with a splitmix step
// so short sequences still spread across the table.
std::uint64_t hash_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

}  // namespace

// ---------------------------------------------------------------- LabelTable

LabelTable::~LabelTable() {
  PoolMetrics& metrics = pool_metrics();
  metrics.bytes.add(-static_cast<std::int64_t>(bytes_.load(std::memory_order_relaxed)));
  metrics.labels.add(-static_cast<std::int64_t>(count_.load(std::memory_order_relaxed)));
  for (auto& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

std::string_view LabelTable::text(LabelId id) const {
  const Entry* block = blocks_[id / kEntriesPerBlock].load(std::memory_order_acquire);
  const Entry& entry = block[id % kEntriesPerBlock];
  return {entry.ptr, entry.len};
}

const char* LabelTable::store_text(std::string_view text) {
  // The empty-string check doubles as the chunks_.empty() guard: a
  // zero-length first intern must not reach chunks_.back().
  if (chunks_.empty() || chunk_cap_ - chunk_used_ < text.size()) {
    const std::size_t cap = text.size() > kMinChunk ? text.size() : kMinChunk;
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_cap_ = cap;
    chunk_used_ = 0;
    bytes_.fetch_add(cap, std::memory_order_relaxed);
    pool_metrics().bytes.add(static_cast<std::int64_t>(cap));
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, text.data(), text.size());
  chunk_used_ += text.size();
  return dst;
}

LabelId LabelTable::intern(std::string_view text) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t hash = hash_bytes(text.data(), text.size());

  auto probe = [&](const std::vector<std::uint32_t>& index) -> std::size_t {
    const std::size_t mask = index.size() - 1;
    std::size_t slot = static_cast<std::size_t>(hash) & mask;
    while (index[slot] != 0) {
      const LabelId id = index[slot] - 1;
      const Entry* block = blocks_[id / kEntriesPerBlock].load(std::memory_order_relaxed);
      const Entry& entry = block[id % kEntriesPerBlock];
      if (entry.len == text.size() && std::memcmp(entry.ptr, text.data(), entry.len) == 0) {
        return slot;
      }
      slot = (slot + 1) & mask;
    }
    return slot;
  };

  if (index_.empty()) {
    index_.assign(1u << 10, 0);
    bytes_.fetch_add(index_.size() * sizeof(std::uint32_t), std::memory_order_relaxed);
    pool_metrics().bytes.add(static_cast<std::int64_t>(index_.size() * sizeof(std::uint32_t)));
  }
  std::size_t slot = probe(index_);
  if (index_[slot] != 0) {
    pool_metrics().label_hits.inc();
    return index_[slot] - 1;
  }

  const std::uint32_t id = count_.load(std::memory_order_relaxed);
  if (id / kEntriesPerBlock >= kMaxBlocks) {
    throw std::length_error("LabelTable: table full");
  }
  Entry* block = blocks_[id / kEntriesPerBlock].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new Entry[kEntriesPerBlock];
    blocks_[id / kEntriesPerBlock].store(block, std::memory_order_release);
    bytes_.fetch_add(kEntriesPerBlock * sizeof(Entry), std::memory_order_relaxed);
    pool_metrics().bytes.add(static_cast<std::int64_t>(kEntriesPerBlock * sizeof(Entry)));
  }
  block[id % kEntriesPerBlock] = Entry{store_text(text), static_cast<std::uint32_t>(text.size())};
  count_.store(id + 1, std::memory_order_release);  // publish the entry

  index_[slot] = id + 1;
  if (++index_used_ * 10 > index_.size() * 7) {
    std::vector<std::uint32_t> bigger(index_.size() * 2, 0);
    const std::int64_t delta =
        static_cast<std::int64_t>(bigger.size() - index_.size()) *
        static_cast<std::int64_t>(sizeof(std::uint32_t));
    index_.swap(bigger);
    for (const std::uint32_t stored : bigger) {
      if (stored == 0) continue;
      const Entry* b = blocks_[(stored - 1) / kEntriesPerBlock].load(std::memory_order_relaxed);
      const Entry& entry = b[(stored - 1) % kEntriesPerBlock];
      const std::uint64_t h = hash_bytes(entry.ptr, entry.len);
      const std::size_t mask = index_.size() - 1;
      std::size_t s = static_cast<std::size_t>(h) & mask;
      while (index_[s] != 0) s = (s + 1) & mask;
      index_[s] = stored;
    }
    bytes_.fetch_add(static_cast<std::size_t>(delta), std::memory_order_relaxed);
    pool_metrics().bytes.add(delta);
  }
  pool_metrics().labels.add(1);
  return id;
}

std::optional<LabelId> LabelTable::find(std::string_view text) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (index_.empty()) return std::nullopt;
  const std::uint64_t hash = hash_bytes(text.data(), text.size());
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  while (index_[slot] != 0) {
    const LabelId id = index_[slot] - 1;
    const Entry* block = blocks_[id / kEntriesPerBlock].load(std::memory_order_relaxed);
    const Entry& entry = block[id % kEntriesPerBlock];
    if (entry.len == text.size() && std::memcmp(entry.ptr, text.data(), entry.len) == 0) {
      return id;
    }
    slot = (slot + 1) & mask;
  }
  return std::nullopt;
}

// ------------------------------------------------------------------ NamePool

NamePool::~NamePool() {
  PoolMetrics& metrics = pool_metrics();
  metrics.bytes.add(-static_cast<std::int64_t>(bytes_.load(std::memory_order_relaxed)));
  metrics.names.add(-static_cast<std::int64_t>(names_.load(std::memory_order_relaxed)));
  for (auto& block : blocks_) {
    delete[] block.load(std::memory_order_relaxed);
  }
}

std::uint64_t NamePool::hash_ids(std::span<const LabelId> ids) {
  return hash_bytes(ids.data(), ids.size_bytes());
}

std::span<const LabelId> NamePool::ids(NameRef ref) const {
  if (ref.count == 0) return {};
  const LabelId* block = blocks_[ref.offset / kIdsPerBlock].load(std::memory_order_acquire);
  return {block + ref.offset % kIdsPerBlock, ref.count};
}

bool NamePool::ids_equal(std::uint32_t offset, std::span<const LabelId> wanted) const {
  const LabelId* block = blocks_[offset / kIdsPerBlock].load(std::memory_order_relaxed);
  const std::size_t at = offset % kIdsPerBlock;
  if (block[at - 1] != wanted.size()) return false;
  return std::memcmp(block + at, wanted.data(), wanted.size_bytes()) == 0;
}

std::uint32_t NamePool::append_ids(std::span<const LabelId> ids) {
  const std::size_t need = ids.size() + 1;  // [count][ids...]
  std::uint32_t used = arena_used_.load(std::memory_order_relaxed);
  // A name never spans blocks; skip the block tail when it cannot fit.
  if (kIdsPerBlock - used % kIdsPerBlock < need) {
    used += static_cast<std::uint32_t>(kIdsPerBlock - used % kIdsPerBlock);
  }
  if (used / kIdsPerBlock >= kMaxBlocks || need > kIdsPerBlock) {
    throw std::length_error("NamePool: arena full");
  }
  LabelId* block = blocks_[used / kIdsPerBlock].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new LabelId[kIdsPerBlock];
    blocks_[used / kIdsPerBlock].store(block, std::memory_order_release);
    bytes_.fetch_add(kIdsPerBlock * sizeof(LabelId), std::memory_order_relaxed);
    pool_metrics().bytes.add(static_cast<std::int64_t>(kIdsPerBlock * sizeof(LabelId)));
  }
  const std::size_t at = used % kIdsPerBlock;
  block[at] = static_cast<LabelId>(ids.size());
  std::memcpy(block + at + 1, ids.data(), ids.size_bytes());
  const std::uint32_t offset = used + 1;
  arena_used_.store(used + static_cast<std::uint32_t>(need), std::memory_order_release);
  return offset;
}

void NamePool::grow_dedup() {
  const std::size_t old_bytes = dedup_.size() * sizeof(std::uint32_t);
  std::vector<std::uint32_t> old(dedup_.size() * 2, 0);
  dedup_.swap(old);
  for (const std::uint32_t stored : old) {
    if (stored == 0) continue;
    const std::uint32_t offset = stored - 1;
    const LabelId* block = blocks_[offset / kIdsPerBlock].load(std::memory_order_relaxed);
    const std::size_t at = offset % kIdsPerBlock;
    const std::uint64_t h = hash_bytes(block + at, block[at - 1] * sizeof(LabelId));
    const std::size_t mask = dedup_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(h) & mask;
    while (dedup_[slot] != 0) slot = (slot + 1) & mask;
    dedup_[slot] = stored;
  }
  const std::int64_t delta =
      static_cast<std::int64_t>(dedup_.size() * sizeof(std::uint32_t) - old_bytes);
  bytes_.fetch_add(static_cast<std::size_t>(delta), std::memory_order_relaxed);
  pool_metrics().bytes.add(delta);
}

NamePool::Interned NamePool::intern_ids_locked(std::span<const LabelId> ids) {
  if (dedup_.empty()) {
    dedup_.assign(1u << 10, 0);
    bytes_.fetch_add(dedup_.size() * sizeof(std::uint32_t), std::memory_order_relaxed);
    pool_metrics().bytes.add(static_cast<std::int64_t>(dedup_.size() * sizeof(std::uint32_t)));
  }
  const std::uint64_t hash = hash_ids(ids);
  const std::size_t mask = dedup_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  while (dedup_[slot] != 0) {
    if (ids_equal(dedup_[slot] - 1, ids)) {
      return Interned{NameRef{dedup_[slot] - 1, static_cast<std::uint32_t>(ids.size())}, false};
    }
    slot = (slot + 1) & mask;
  }
  const std::uint32_t offset = append_ids(ids);
  dedup_[slot] = offset + 1;
  if (++dedup_used_ * 10 > dedup_.size() * 7) grow_dedup();
  names_.fetch_add(1, std::memory_order_relaxed);
  return Interned{NameRef{offset, static_cast<std::uint32_t>(ids.size())}, true};
}

NamePool::Interned NamePool::intern_ids(std::span<const LabelId> ids) {
  if (ids.empty()) return Interned{NameRef{0, 0}, false};
  Interned out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = intern_ids_locked(ids);
  }
  PoolMetrics& metrics = pool_metrics();
  if (out.fresh) {
    metrics.names.add(1);
    metrics.name_misses.inc();
  } else {
    metrics.name_hits.inc();
  }
  return out;
}

NamePool::Interned NamePool::intern_text(std::string_view dotted) {
  std::vector<LabelId> scratch;
  LabelId stack[64];
  std::size_t n = 0;
  std::size_t start = 0;
  auto push = [&](std::string_view piece) {
    const LabelId id = labels_.intern(piece);
    if (n < 64) {
      stack[n++] = id;
    } else {
      if (scratch.empty()) scratch.assign(stack, stack + n);
      scratch.push_back(id);
      ++n;
    }
  };
  if (!dotted.empty()) {
    for (std::size_t i = 0; i <= dotted.size(); ++i) {
      if (i == dotted.size() || dotted[i] == '.') {
        push(dotted.substr(start, i - start));
        start = i + 1;
      }
    }
  }
  const std::span<const LabelId> ids =
      scratch.empty() ? std::span<const LabelId>(stack, n) : std::span<const LabelId>(scratch);
  return intern_ids(ids);
}

std::optional<NameRef> NamePool::find_ids(std::span<const LabelId> ids) const {
  if (ids.empty()) return NameRef{0, 0};
  std::lock_guard<std::mutex> lock(mu_);
  if (dedup_.empty()) return std::nullopt;
  const std::uint64_t hash = hash_ids(ids);
  const std::size_t mask = dedup_.size() - 1;
  std::size_t slot = static_cast<std::size_t>(hash) & mask;
  while (dedup_[slot] != 0) {
    if (ids_equal(dedup_[slot] - 1, ids)) {
      return NameRef{dedup_[slot] - 1, static_cast<std::uint32_t>(ids.size())};
    }
    slot = (slot + 1) & mask;
  }
  return std::nullopt;
}

std::string NamePool::to_string(NameRef ref) const {
  std::string out;
  append_to(out, ref);
  return out;
}

void NamePool::append_to(std::string& out, NameRef ref) const {
  const std::span<const LabelId> sequence = ids(ref);
  std::size_t total = sequence.empty() ? 0 : sequence.size() - 1;
  for (const LabelId id : sequence) total += labels_.text(id).size();
  out.reserve(out.size() + total);
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += labels_.text(sequence[i]);
  }
}

NameRef NamePool::parent(NameRef ref, std::size_t n) {
  if (n > ref.count) throw std::out_of_range("NamePool::parent: too many labels dropped");
  if (n == 0) return ref;
  return intern_ids(ids(ref).subspan(n)).ref;
}

std::uint64_t NamePool::with_prefix_batch(LabelId label, std::span<const NameRef> suffixes,
                                          std::vector<NameRef>& out) {
  std::uint64_t fresh = 0;
  std::uint64_t hits = 0;
  LabelId stack[64];
  std::vector<LabelId> heap;
  stack[0] = label;
  out.reserve(out.size() + suffixes.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const NameRef suffix : suffixes) {
      const std::span<const LabelId> suffix_ids = ids(suffix);
      std::span<const LabelId> combined;
      if (suffix_ids.size() + 1 <= 64) {
        if (!suffix_ids.empty()) {
          std::memcpy(stack + 1, suffix_ids.data(), suffix_ids.size_bytes());
        }
        combined = std::span<const LabelId>(stack, suffix_ids.size() + 1);
      } else {
        heap.clear();
        heap.reserve(suffix_ids.size() + 1);
        heap.push_back(label);
        heap.insert(heap.end(), suffix_ids.begin(), suffix_ids.end());
        combined = heap;
      }
      const Interned comp = intern_ids_locked(combined);
      out.push_back(comp.ref);
      if (comp.fresh) {
        ++fresh;
      } else {
        ++hits;
      }
    }
  }
  PoolMetrics& metrics = pool_metrics();
  if (fresh > 0) {
    metrics.names.add(static_cast<std::int64_t>(fresh));
    metrics.name_misses.inc(fresh);
  }
  if (hits > 0) metrics.name_hits.inc(hits);
  return fresh;
}

NamePool::Interned NamePool::with_prefix(NameRef ref, LabelId label) {
  LabelId stack[64];
  std::vector<LabelId> heap;
  const std::span<const LabelId> suffix = ids(ref);
  std::span<const LabelId> combined;
  if (suffix.size() + 1 <= 64) {
    stack[0] = label;
    if (!suffix.empty()) std::memcpy(stack + 1, suffix.data(), suffix.size_bytes());
    combined = std::span<const LabelId>(stack, suffix.size() + 1);
  } else {
    heap.reserve(suffix.size() + 1);
    heap.push_back(label);
    heap.insert(heap.end(), suffix.begin(), suffix.end());
    combined = heap;
  }
  return intern_ids(combined);
}

bool NamePool::is_subdomain_of(NameRef name, NameRef ancestor) const {
  if (ancestor.count > name.count) return false;
  if (ancestor.count == 0) return true;
  const std::span<const LabelId> child = ids(name);
  const std::span<const LabelId> anc = ids(ancestor);
  return std::memcmp(child.data() + (child.size() - anc.size()), anc.data(),
                     anc.size_bytes()) == 0;
}

}  // namespace ctwatch::namepool
