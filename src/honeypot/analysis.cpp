#include "ctwatch/honeypot/analysis.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "ctwatch/namepool/namepool.hpp"
#include "ctwatch/util/strings.hpp"

namespace ctwatch::honeypot {

HoneypotReport analyze(const CtHoneypot& honeypot, const AnalysisOptions& options) {
  HoneypotReport report;
  const auto& log = honeypot.dns_server().log();
  const auto& capture = honeypot.capture();

  // Group the query log by interned name once: turns the per-domain scan
  // from (domains x log entries) string comparisons into one hash lookup
  // per domain. Interning canonicalizes, so equal names share a ref.
  namepool::NamePool& pool = honeypot.pool();
  std::unordered_map<namepool::NameRef, std::vector<const dns::QueryLogEntry*>,
                     namepool::NameRefHash>
      log_by_name;
  for (const dns::QueryLogEntry& entry : log) {
    log_by_name[entry.question.qname.intern_into(pool)].push_back(&entry);
  }
  const std::vector<const dns::QueryLogEntry*> no_entries;

  std::size_t index = 0;
  for (const HoneypotDomain& domain : honeypot.domains()) {
    DomainTimeline row;
    row.tag = std::string(1, static_cast<char>('A' + (index % 26)));
    ++index;
    row.fqdn = domain.fqdn;
    row.ct_entry = domain.ct_logged;

    std::set<net::Asn> asns;
    std::set<std::string> subnets;
    std::vector<std::pair<SimTime, net::Asn>> arrivals;
    const auto log_it = log_by_name.find(domain.name);
    const auto& domain_entries = log_it != log_by_name.end() ? log_it->second : no_entries;
    for (const dns::QueryLogEntry* entry_ptr : domain_entries) {
      const dns::QueryLogEntry& entry = *entry_ptr;
      // Filter the CA's validation lookups: identified by their origin and
      // by arriving before the CT log entry (the paper does both).
      if (entry.context.resolver_label == CtHoneypot::kValidationLabel ||
          entry.context.time < domain.ct_logged) {
        ++report.queries_filtered_as_validation;
        continue;
      }
      ++row.query_count;
      asns.insert(entry.context.resolver_asn);
      arrivals.emplace_back(entry.context.time, entry.context.resolver_asn);
      if (entry.context.client_subnet) {
        const std::string subnet = entry.context.client_subnet->to_string();
        subnets.insert(subnet);
        ++report.ecs_subnets[subnet];
      }
      if (!row.first_dns || entry.context.time < *row.first_dns) {
        row.first_dns = entry.context.time;
      }
    }
    row.asn_count = asns.size();
    row.ecs_subnet_count = subnets.size();
    if (row.first_dns) row.dns_delta = *row.first_dns - domain.ct_logged;

    // First three distinct querying ASes in arrival order.
    std::sort(arrivals.begin(), arrivals.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [when, asn] : arrivals) {
      if (std::find(row.first_asns.begin(), row.first_asns.end(), asn) ==
          row.first_asns.end()) {
        row.first_asns.push_back(asn);
        if (row.first_asns.size() == 3) break;
      }
    }

    // HTTP(S): connections to this domain's A record on port 443 (or
    // carrying its name), IPv4.
    std::vector<const net::ConnectionEvent*> https;
    for (const net::ConnectionEvent& event : capture.events()) {
      const bool to_a = event.dst4 && *event.dst4 == domain.a_record;
      if (!to_a) continue;
      if (event.dst_port != 443) continue;
      https.push_back(&event);
    }
    std::sort(https.begin(), https.end(),
              [](const auto* a, const auto* b) { return a->time < b->time; });
    if (!https.empty()) {
      row.first_http = https.front()->time;
      row.http_delta = https.front()->time - domain.ct_logged;
    }
    report.rows.push_back(std::move(row));
  }

  // AS attribution of connecting sources: primarily via the BGP registry
  // (as the paper does), with the DNS log as a fallback.
  std::map<std::uint32_t, net::Asn> src_to_asn;
  for (const dns::QueryLogEntry& entry : log) {
    src_to_asn[entry.context.resolver_addr.value()] = entry.context.resolver_asn;
  }
  const net::AsRegistry& registry = honeypot.as_registry();

  std::size_t row_index = 0;
  for (const HoneypotDomain& domain : honeypot.domains()) {
    DomainTimeline& row = report.rows[row_index++];
    std::vector<std::pair<SimTime, net::IPv4>> sources;
    for (const net::ConnectionEvent& event : capture.events()) {
      if (event.dst4 && *event.dst4 == domain.a_record && event.dst_port == 443) {
        sources.emplace_back(event.time, event.src);
      }
    }
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [when, src] : sources) {
      net::Asn asn = 0;
      if (const auto origin = registry.origin(src)) {
        asn = *origin;
      } else if (const auto it = src_to_asn.find(src.value()); it != src_to_asn.end()) {
        asn = it->second;
      }
      if (std::find(row.http_asns.begin(), row.http_asns.end(), asn) == row.http_asns.end()) {
        row.http_asns.push_back(asn);
      }
    }
  }

  // Port scanners.
  std::set<std::uint32_t> sources;
  for (const net::ConnectionEvent& event : capture.events()) {
    if (event.dst4) sources.insert(event.src.value());
  }
  for (const std::uint32_t src : sources) {
    const auto ports = capture.ports_probed_by(net::IPv4(src));
    if (ports.size() >= options.port_scan_threshold) {
      report.port_scanners.push_back(PortScanFinding{net::IPv4(src), ports.size()});
    }
  }

  // ECS subnets that also connected over IPv4.
  std::size_t connected = 0;
  for (const auto& [subnet, count] : report.ecs_subnets) {
    const auto prefix = net::Prefix4::parse(subnet);
    if (!prefix) continue;
    bool hit = false;
    for (const std::uint32_t src : sources) {
      if (prefix->contains(net::IPv4(src))) {
        hit = true;
        break;
      }
    }
    if (hit) ++connected;
  }
  report.ecs_subnets_with_connections = connected;

  // Scanning best practices: which connecting sources have informative
  // rDNS entries? (Paper: none did.)
  report.sources_total = sources.size();
  for (const std::uint32_t src : sources) {
    if (honeypot.reverse_dns().lookup(net::IPv4(src))) {
      ++report.sources_with_best_practices;
    }
  }

  // IPv6 contact check (paper: none beyond the CA validator).
  for (const net::ConnectionEvent& event : capture.events()) {
    if (event.dst6 && event.src != net::IPv4(198, 51, 100, 5)) ++report.ipv6_contacts;
  }
  return report;
}

std::string render_table4(const HoneypotReport& report) {
  std::ostringstream out;
  out << pad_right("", 2) << pad_right("CT log entry", 16) << pad_right("first DNS", 16)
      << pad_left("dt", 6) << pad_left("Q", 6) << pad_left("AS", 5) << pad_left("CS", 5)
      << "  " << pad_right("first 3 ASes", 22) << pad_right("HTTP(S)", 16)
      << pad_left("dt", 6) << "  HTTP ASNs\n";
  for (const DomainTimeline& row : report.rows) {
    out << pad_right(row.tag, 2) << pad_right(row.ct_entry.short_string(), 16)
        << pad_right(row.first_dns ? row.first_dns->short_string() : "-", 16)
        << pad_left(row.first_dns ? format_delta(row.dns_delta) : "-", 6)
        << pad_left(std::to_string(row.query_count), 6)
        << pad_left(std::to_string(row.asn_count), 5)
        << pad_left(std::to_string(row.ecs_subnet_count), 5) << "  ";
    std::string ases;
    for (std::size_t i = 0; i < row.first_asns.size(); ++i) {
      if (i > 0) ases += ",";
      ases += std::to_string(row.first_asns[i]);
    }
    out << pad_right(ases, 22)
        << pad_right(row.first_http ? row.first_http->short_string() : "-", 16)
        << pad_left(row.first_http ? format_delta(row.http_delta) : "-", 6) << "  ";
    std::string http_ases;
    for (std::size_t i = 0; i < row.http_asns.size(); ++i) {
      if (i > 0) http_ases += ",";
      http_ases += std::to_string(row.http_asns[i]);
    }
    out << http_ases << "\n";
  }
  return out.str();
}

}  // namespace ctwatch::honeypot
