#include "ctwatch/honeypot/honeypot.hpp"

namespace ctwatch::honeypot {

CtHoneypot::CtHoneypot(sim::Ecosystem& ecosystem, const HoneypotOptions& options)
    : ecosystem_(&ecosystem), options_(options), rng_(ecosystem.rng().fork()) {
  zone_ = &dns_server_.add_zone(dns::DnsName::parse_or_throw(options_.parent_domain));
}

const HoneypotDomain& CtHoneypot::create_subdomain(SimTime now) {
  HoneypotDomain domain;
  domain.label = rng_.alnum_label(options_.label_length);
  domain.fqdn = domain.label + "." + options_.parent_domain;
  ++next_host_;
  domain.a_record = net::IPv4(0x64500000u + next_host_);  // in 100.64.0.0/10
  // Unique IPv6, never entered into rDNS or used elsewhere: 2001:db8:1::/48.
  std::array<std::uint16_t, 8> hextets{0x2001, 0x0db8, 0x0001, 0,
                                       0,      0,      0,      static_cast<std::uint16_t>(next_host_)};
  domain.aaaa_record = net::IPv6::from_hextets(hextets);

  const dns::DnsName name = dns::DnsName::parse_or_throw(domain.fqdn);
  domain.name = name.intern_into(*pool_);
  zone_->add(dns::ResourceRecord{name, dns::RrType::A, 300, domain.a_record});
  zone_->add(dns::ResourceRecord{name, dns::RrType::AAAA, 300, domain.aaaa_record});

  // CA domain validation: lookups from the CA's validation infrastructure,
  // arriving before the CT log entry.
  sim::CertificateAuthority& ca = ecosystem_->ca(options_.ca);
  dns::QueryContext validation;
  validation.time = now;
  validation.resolver_addr = net::IPv4(198, 51, 100, 5);
  validation.resolver_asn = 13649;  // the CA's own network
  validation.resolver_label = kValidationLabel;
  dns_server_.query(dns::DnsQuestion{name, dns::RrType::A}, validation);
  dns_server_.query(dns::DnsQuestion{name, dns::RrType::AAAA}, validation);

  // Issue with CT logging; the precertificate hits the logs after the lead.
  const SimTime logged = now + options_.validation_lead;
  sim::IssuanceRequest request;
  request.subject_cn = domain.fqdn;
  request.sans = {x509::SanEntry::dns(domain.fqdn)};
  request.not_before = now;
  request.not_after = now + 90 * 86400;
  for (const std::string& log_name : options_.logs) {
    request.logs.push_back(&ecosystem_->log(log_name));
  }
  ca.issue(request, logged);
  domain.ct_logged = logged;

  // The CA's validation server is also the only legitimate IPv6 visitor.
  net::ConnectionEvent validation_probe;
  validation_probe.time = now;
  validation_probe.src = validation.resolver_addr;
  validation_probe.dst6 = domain.aaaa_record;
  validation_probe.dst_port = 443;
  validation_probe.sni = domain.fqdn;
  capture_.record(validation_probe);

  domains_.push_back(domain);
  return domains_.back();
}

}  // namespace ctwatch::honeypot
