#include "ctwatch/honeypot/attackers.hpp"

namespace ctwatch::honeypot {

namespace {
constexpr net::Asn kGoogle = 15169;
constexpr net::Asn kOneAndOne = 8560;
constexpr net::Asn kDeteque = 54054;
constexpr net::Asn kAmazon = 16509;
constexpr net::Asn kAmazonLegacy = 14618;
constexpr net::Asn kDigitalOcean = 14061;
constexpr net::Asn kOpenDns = 36692;
constexpr net::Asn kPetersburg = 44050;
constexpr net::Asn kHetzner = 24940;
constexpr net::Asn kQuasi = 29073;
}  // namespace

dns::RecursiveResolver::Identity google_public_dns() {
  dns::RecursiveResolver::Identity identity;
  identity.address = net::IPv4(8, 8, 8, 8);
  identity.asn = kGoogle;
  identity.label = "google-public-dns";
  identity.sends_ecs = true;
  return identity;
}

std::vector<MonitorActorSpec> standard_fleet() {
  std::vector<MonitorActorSpec> fleet;
  using Mode = MonitorActorSpec::Mode;

  auto streaming = [&](std::string name, net::Asn asn, net::IPv4 addr, std::int64_t lo,
                       std::int64_t hi, double coverage) {
    MonitorActorSpec spec;
    spec.name = std::move(name);
    spec.asn = asn;
    spec.address = addr;
    spec.mode = Mode::streaming;
    spec.delay_min = lo;
    spec.delay_max = hi;
    spec.coverage = coverage;
    fleet.push_back(spec);
    return fleet.size() - 1;
  };

  // The near-real-time monitors that hit (almost) every domain in minutes.
  streaming("google-crawler", kGoogle, net::IPv4(74, 125, 0, 10), 70, 150, 1.0);
  fleet.back().qtypes = {dns::RrType::A, dns::RrType::AAAA};
  streaming("1und1-monitor", kOneAndOne, net::IPv4(82, 165, 1, 20), 90, 260, 1.0);
  streaming("deteque-ti", kDeteque, net::IPv4(185, 49, 10, 5), 100, 700, 0.82);
  streaming("amazon-watcher", kAmazon, net::IPv4(52, 95, 20, 7), 120, 700, 1.0);
  streaming("opendns-feed", kOpenDns, net::IPv4(208, 67, 222, 222), 200, 700, 0.64);
  streaming("petersburg", kPetersburg, net::IPv4(185, 87, 0, 9), 100, 500, 0.30);

  // DigitalOcean: reacts in about two hours and then connects to port 443.
  {
    MonitorActorSpec spec;
    spec.name = "digitalocean-prober";
    spec.asn = kDigitalOcean;
    spec.address = net::IPv4(159, 65, 8, 11);
    spec.mode = Mode::streaming;
    spec.delay_min = 6400;
    spec.delay_max = 7600;
    spec.coverage = 1.0;
    spec.connects_http = true;
    spec.http_delay_min = 3540;   // ≈59 minutes
    spec.http_delay_max = 7320;   // ≈122 minutes
    spec.http_straggler_chance = 0.18;  // the 5-day / 19-day rows
    fleet.push_back(spec);
  }
  // Amazon's second network also shows up in the HTTP(S) column.
  {
    MonitorActorSpec spec;
    spec.name = "amazon-legacy-prober";
    spec.asn = kAmazonLegacy;
    spec.address = net::IPv4(54, 240, 3, 3);
    spec.mode = Mode::streaming;
    spec.delay_min = 5000;
    spec.delay_max = 8000;
    spec.coverage = 0.75;
    spec.connects_http = true;
    spec.http_delay_min = 4200;
    spec.http_delay_max = 7800;
    fleet.push_back(spec);
  }

  // Stub resolvers behind Google Public DNS (ECS reveals them).
  {
    MonitorActorSpec spec;
    spec.name = "hetzner-stub";
    spec.asn = kHetzner;
    spec.address = net::IPv4(88, 198, 7, 33);
    spec.mode = Mode::streaming;
    spec.delay_min = 180;
    spec.delay_max = 600;
    spec.coverage = 1.0;
    spec.via_google_dns = true;
    spec.qtypes = {dns::RrType::A, dns::RrType::AAAA, dns::RrType::MX, dns::RrType::NS,
                   dns::RrType::SOA};
    spec.queries_per_type = 2;  // the top ECS subnet appears ~115 times
    spec.connects_http = true;  // one of the 4 ECS machines connecting (443 only)
    spec.http_delay_min = 15 * 3600;
    spec.http_delay_max = 30 * 3600;
    fleet.push_back(spec);
  }
  {
    MonitorActorSpec spec;
    spec.name = "quasi-scanner";
    spec.asn = kQuasi;
    spec.address = net::IPv4(185, 156, 9, 66);
    spec.mode = Mode::streaming;
    spec.delay_min = 150;
    spec.delay_max = 500;
    spec.coverage = 1.0;
    spec.via_google_dns = true;
    spec.qtypes = {dns::RrType::A, dns::RrType::AAAA};
    spec.connects_http = true;
    spec.http_delay_min = 20 * 3600;
    spec.http_delay_max = 40 * 3600;
    spec.scan_ports = 30;  // the heavily-scanning host
    fleet.push_back(spec);
  }
  // Two small ECS-visible stubs plus a tail of rare ones (12 subnets total).
  for (int i = 0; i < 10; ++i) {
    MonitorActorSpec spec;
    spec.name = "stub-" + std::to_string(i);
    spec.asn = 48000 + static_cast<net::Asn>(i);
    spec.address = net::IPv4(static_cast<std::uint32_t>(0x2e000000 + 0x10000 * i + 7));
    spec.mode = Mode::streaming;
    spec.delay_min = 600;
    spec.delay_max = 5400;
    spec.coverage = i < 2 ? 0.6 : 0.12;
    spec.via_google_dns = true;
    if (i < 2) {
      // Two more of the 4 connecting ECS machines; port 443 only.
      spec.connects_http = true;
      spec.http_delay_min = 24 * 3600;
      spec.http_delay_max = 48 * 3600;
    }
    fleet.push_back(spec);
  }

  // The long tail: 76 other ASes, batch processing, one or two domains,
  // almost never before one hour, mostly after two.
  for (int i = 0; i < 76; ++i) {
    MonitorActorSpec spec;
    spec.name = "batch-as-" + std::to_string(60000 + i);
    spec.asn = static_cast<net::Asn>(60000 + i);
    spec.address = net::IPv4(static_cast<std::uint32_t>(0x50000000 + 0x10000 * i + 1));
    spec.mode = Mode::batch;
    spec.delay_min = 3700;                  // 99 % not before one hour
    spec.delay_max = 3600 * 24;
    spec.coverage = 0.14;                   // one or two of the 11 domains
    fleet.push_back(spec);
  }
  return fleet;
}

AttackerFleet::AttackerFleet(CtHoneypot& honeypot, std::vector<MonitorActorSpec> fleet, Rng rng)
    : honeypot_(&honeypot), fleet_(std::move(fleet)), rng_(rng) {
  universe_.add_server(honeypot_->dns_server());
  // Announce every actor's /24 so the analysis can attribute sources to
  // ASes the way the paper does (routing data).
  net::AsRegistry& registry = honeypot_->as_registry();
  for (const MonitorActorSpec& actor : fleet_) {
    registry.add(net::AsInfo{actor.asn, actor.name, actor.asn != 29073});
    registry.announce(actor.asn, net::slash24(actor.address));
    if (actor.informative_rdns) {
      honeypot_->reverse_dns().register_v4(actor.address,
                                           "research-scanner." + actor.name + ".example");
    }
  }
  const auto google = google_public_dns();
  registry.add(net::AsInfo{google.asn, "Google", true});
  registry.announce(google.asn, net::slash24(google.address));
}

FleetStats AttackerFleet::run() {
  FleetStats stats;
  for (const HoneypotDomain& domain : honeypot_->domains()) {
    for (const MonitorActorSpec& actor : fleet_) {
      if (!rng_.chance(actor.coverage)) continue;
      act(actor, domain, stats);
    }
  }
  return stats;
}

void AttackerFleet::act(const MonitorActorSpec& actor, const HoneypotDomain& domain,
                        FleetStats& stats) {
  const std::int64_t delay = rng_.between(actor.delay_min, actor.delay_max);
  const SimTime when = domain.ct_logged + delay;
  const dns::DnsName name = dns::DnsName::parse_or_throw(domain.fqdn);

  // DNS phase: direct queries carry the actor's own resolver identity;
  // stub actors resolve through Google Public DNS, which attaches their
  // /24 as EDNS Client Subnet.
  dns::RecursiveResolver::Identity identity;
  std::optional<net::IPv4> stub;
  if (actor.via_google_dns) {
    identity = google_public_dns();
    stub = actor.address;
  } else {
    identity.address = actor.address;
    identity.asn = actor.asn;
    identity.label = actor.name;
  }
  const dns::RecursiveResolver resolver(universe_, identity);
  for (const dns::RrType qtype : actor.qtypes) {
    for (int repeat = 0; repeat < actor.queries_per_type; ++repeat) {
      const SimTime jittered = when + repeat * rng_.between(5, 120);
      resolver.resolve(name, qtype, jittered, stub);
      ++stats.dns_queries;
    }
  }

  // Connection phase: IPv4 only — the paper saw no IPv6 contact beyond the
  // CA validator, because the unique AAAA records never leak outside CT.
  if (actor.connects_http) {
    std::int64_t http_delay = rng_.between(actor.http_delay_min, actor.http_delay_max);
    if (actor.http_straggler_chance > 0 && rng_.chance(actor.http_straggler_chance)) {
      http_delay = rng_.between(5 * 86400, 19 * 86400);
    }
    net::ConnectionEvent event;
    event.time = domain.ct_logged + http_delay;
    event.src = actor.address;
    event.dst4 = domain.a_record;
    event.dst_port = 443;
    event.sni = domain.fqdn;
    honeypot_->capture().record(event);
    ++stats.http_connections;
  }
  if (actor.scan_ports > 0) {
    static constexpr std::uint16_t kPorts[] = {21,   22,   23,   25,   53,   80,   110,  111,
                                               135,  139,  143,  179,  445,  465,  587,  993,
                                               995,  1433, 1723, 3306, 3389, 5060, 5432, 5900,
                                               6379, 8080, 8443, 8888, 9200, 27017};
    const int ports = std::min<int>(actor.scan_ports, static_cast<int>(std::size(kPorts)));
    const SimTime scan_start = when + rng_.between(2 * 3600, 12 * 3600);
    for (int i = 0; i < ports; ++i) {
      net::ConnectionEvent probe;
      probe.time = scan_start + i * rng_.between(1, 10);
      probe.src = actor.address;
      probe.dst4 = domain.a_record;
      probe.dst_port = kPorts[i];
      honeypot_->capture().record(probe);
      ++stats.port_probes;
    }
  }
}

}  // namespace ctwatch::honeypot
