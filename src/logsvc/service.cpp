#include "ctwatch/logsvc/service.hpp"

#include <algorithm>
#include <condition_variable>
#include <stdexcept>

#include "ctwatch/ct/tiled.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::logsvc {

namespace {

// Shared across service instances, like ct.log.* — the fleet-wide view.
struct SvcMetrics {
  obs::Counter& submissions = obs::Registry::global().counter("logsvc.submissions");
  obs::Counter& accepted = obs::Registry::global().counter("logsvc.accepted");
  obs::Counter& rejected_invalid = obs::Registry::global().counter("logsvc.rejected_invalid");
  obs::Counter& overloaded = obs::Registry::global().counter("logsvc.overload_rejections");
  obs::Counter& shutdown_rejected = obs::Registry::global().counter("logsvc.shutdown_rejections");
  obs::Counter& chaos_dropped = obs::Registry::global().counter("logsvc.chaos_dropped");
  obs::Counter& signer_failures = obs::Registry::global().counter("logsvc.signer_failures");
  obs::Counter& storage_failures = obs::Registry::global().counter("logsvc.storage_failures");
  obs::Counter& adopted_entries = obs::Registry::global().counter("logsvc.adopted_entries");
  obs::Counter& dedup_hits = obs::Registry::global().counter("logsvc.dedup_hits");
  obs::Counter& sealed_batches = obs::Registry::global().counter("logsvc.sealed_batches");
  obs::Gauge& queue_depth = obs::Registry::global().gauge("logsvc.queue_depth");
  obs::Gauge& tree_size = obs::Registry::global().gauge("logsvc.tree_size");
  obs::Histogram& batch_size = obs::Registry::global().histogram(
      "logsvc.batch_size", obs::exponential_bounds(1.0, 2.0, 16));
  obs::Histogram& seal_us = obs::Registry::global().histogram("logsvc.seal_us");
  obs::Histogram& submit_to_sct_us =
      obs::Registry::global().histogram("logsvc.submit_to_sct_us");
  // Per-stage latencies (log-linear: auto-ranging, mergeable) — one
  // submission's journey decomposed: ingress, queue wait, merge window,
  // per-entry signing. Fanout dispatch lives in fanout.cpp.
  obs::LogLinearHistogram& submit_us = obs::Registry::global().latency("logsvc.submit_us");
  obs::LogLinearHistogram& queue_wait_us =
      obs::Registry::global().latency("logsvc.queue_wait_us");
  obs::LogLinearHistogram& merge_delay_us =
      obs::Registry::global().latency("logsvc.merge_delay_us");
  obs::LogLinearHistogram& sign_us = obs::Registry::global().latency("logsvc.sign_us");
  // Paged reads: distinct tile pages one proof touched — the out-of-core
  // path's cost model (log-linear so 2-page and 200-page proofs separate).
  obs::LogLinearHistogram& proof_page_fetches =
      obs::Registry::global().latency("storage.proof_page_fetches");
};

SvcMetrics& svc_metrics() {
  static SvcMetrics metrics;
  return metrics;
}

std::uint64_t to_millis(SimTime now) {
  return static_cast<std::uint64_t>(now.unix_seconds()) * 1000;
}

/// What get-entries (and adoption) serve for a durable record.
EntryRecord to_record(storage::DurableEntry durable, bool keep_body) {
  EntryRecord record;
  record.index = durable.index;
  record.timestamp_ms = durable.timestamp_ms;
  record.fingerprint = durable.fingerprint;
  record.issuer_cn = std::move(durable.issuer_cn);
  if (durable.has_body && keep_body) record.signed_entry = std::move(durable.entry);
  return record;
}

/// Adoption window: how many durable entries are decoded at once when
/// re-streaming the checkpointed prefix into memory (legacy mode).
constexpr std::uint64_t kAdoptWindow = 4096;

}  // namespace

LogService::LogService(Config config)
    : config_(std::move(config)),
      signer_(crypto::make_signer("ct-log/" + config_.name, config_.scheme)),
      queue_(config_.queue_capacity),
      fanout_(config_.fanout_buffer) {
  if (config_.storage != nullptr) adopt_storage();
  if (snapshot_ == nullptr) {
    publish_snapshot(sign_sth(accumulator_, 0));  // the signed empty tree
  }
  running_.store(true, std::memory_order_release);
  sequencer_ = std::thread([this] { sequencer_main(); });
  obs::log_info("logsvc", "service started",
                {{"log", config_.name},
                 {"queue_capacity", config_.queue_capacity},
                 {"max_batch", config_.max_batch},
                 {"merge_delay_us", static_cast<std::uint64_t>(config_.merge_delay.count())}});
}

LogService::~LogService() { stop(); }

void LogService::stop() {
  bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  queue_.close();
  if (was_running && sequencer_.joinable()) sequencer_.join();
  fanout_.stop();
  if (was_running && config_.storage != nullptr && !config_.storage->failed()) {
    // Orderly stop: every sealed batch is already WAL-durable; the
    // checkpoint just compacts (tiles + entry segment + manifest) so the
    // next open replays nothing.
    (void)config_.storage->checkpoint();
  }
}

void LogService::adopt_storage() {
  storage::LogStore& store = *config_.storage;
  if (!store.durable_sth().has_value()) return;  // fresh directory: nothing to adopt
  const ct::SignedTreeHead sth = *store.durable_sth();
  // The recovered head must be THIS log's head: its signature has to
  // verify under the service key (which derives from Config::name, so a
  // reopened directory demands the same name). Serving a tree under a
  // head someone else signed would be unprovable — refuse to start.
  if (!ct::verify_sth(sth, signer_->public_key())) {
    throw std::runtime_error(
        "logsvc: recovered STH does not verify under this log's key "
        "(storage directory opened under a different Config::name?)");
  }
  const std::uint64_t paged = store.paged_entries();
  std::vector<storage::DurableEntry> tail = store.take_wal_tail();
  if (paged + tail.size() != sth.tree_size) {
    throw std::runtime_error("logsvc: recovered entries do not match the recovered STH");
  }
  // Paged mode adopts only the WAL tail; everything checkpointed stays on
  // disk and the read path pages it in. Legacy mode re-streams the whole
  // tree into memory, windowed so adoption itself is O(window) not O(n).
  if (config_.paged_reads) resident_base_ = paged;
  const std::uint64_t resident = sth.tree_size - resident_base_;
  if (resident > leaves_.capacity() || resident > entries_.capacity()) {
    throw std::runtime_error("logsvc: recovered tree exceeds the in-memory store capacity");
  }
  const auto adopt_one = [this](storage::DurableEntry& durable) {
    if (leaves_.append(durable.leaf_hash) != PushResult::ok) {
      throw std::runtime_error("logsvc: leaf store refused a recovered entry");
    }
    leaf_index_.emplace(durable.leaf_hash, durable.index);
    if (config_.dedup) {
      dedup_.emplace(durable.fingerprint, DedupValue{durable.index, durable.timestamp_ms});
    }
    if (entries_.append(to_record(std::move(durable), config_.store_bodies)) != PushResult::ok) {
      throw std::runtime_error("logsvc: entry store refused a recovered entry");
    }
  };
  if (resident_base_ == 0) {
    std::vector<storage::DurableEntry> window;
    for (std::uint64_t start = 0; start < paged;) {
      const std::uint64_t n = std::min(kAdoptWindow, paged - start);
      window.clear();
      if (store.read_entries(start, n, window) != storage::IoError::none) {
        throw std::runtime_error("logsvc: failed to read checkpointed entries during adoption");
      }
      for (storage::DurableEntry& durable : window) adopt_one(durable);
      start += n;
    }
  }
  for (storage::DurableEntry& durable : tail) adopt_one(durable);
  leaves_.publish();
  entries_.publish();
  accumulator_ = store.accumulator();
  last_timestamp_ms_ = store.last_timestamp_ms();
  seal_seq_ = store.seal_seq();
  publish_snapshot(sth);  // the recovered head, verbatim — never re-signed
  svc_metrics().adopted_entries.inc(resident);
  obs::log_info("logsvc", "adopted recovered storage",
                {{"log", config_.name},
                 {"tree_size", sth.tree_size},
                 {"resident_base", resident_base_},
                 {"replayed_batches", store.recovery().replayed_batches},
                 {"discarded_unsealed", store.recovery().discarded_unsealed}});
}

ct::LogId LogService::log_id() const {
  const crypto::Digest id = signer_->key_id();
  ct::LogId out{};
  std::copy(id.begin(), id.end(), out.begin());
  return out;
}

SubmitStatus LogService::submit(ct::SignedEntry entry, const crypto::Digest& fingerprint,
                                std::string issuer_cn, SimTime now, CompletionFn done) {
  SvcMetrics& metrics = svc_metrics();
  // Root of the submission's causal tree: the sequencer's per-entry span
  // and the fanout dispatch span both descend from this one via the
  // context captured into Pending below.
  obs::Span submit_span("logsvc.submit");
  obs::ScopedTimer submit_timer(metrics.submit_us);
  metrics.submissions.inc();
  if (!running_.load(std::memory_order_acquire)) return SubmitStatus::shutdown;

  if (config_.chaos != nullptr) {
    const chaos::FaultDecision decision =
        config_.chaos->evaluate(config_.chaos_prefix + ".submit", to_millis(now) * 1000);
    if (decision.faulted()) {
      chaos_dropped_.fetch_add(1, std::memory_order_relaxed);
      metrics.chaos_dropped.inc();
      obs::flight_note("logsvc.chaos_drop", to_millis(now));
      obs::log_debug("logsvc", "submission dropped by fault injection", {{"log", config_.name}});
      return SubmitStatus::dropped;
    }
  }

  Pending pending;
  pending.entry = std::move(entry);
  pending.fingerprint = fingerprint;
  pending.issuer_cn = std::move(issuer_cn);
  pending.timestamp_ms = to_millis(now);
  pending.enqueued_at = std::chrono::steady_clock::now();
  pending.trace = submit_span.context();
  pending.done = std::move(done);

  switch (queue_.try_push(std::move(pending))) {
    case PushResult::ok:
      return SubmitStatus::ok;
    case PushResult::full:
      overload_rejections_.fetch_add(1, std::memory_order_relaxed);
      metrics.overloaded.inc();
      obs::flight_note("logsvc.overloaded", queue_.depth());
      obs::log_debug("logsvc", "submission rejected for overload", {{"log", config_.name}});
      return SubmitStatus::overloaded;
    case PushResult::closed:
      break;
  }
  shutdown_rejections_.fetch_add(1, std::memory_order_relaxed);
  metrics.shutdown_rejected.inc();
  return SubmitStatus::shutdown;
}

SubmitStatus LogService::submit_validated(const x509::Certificate& cert,
                                          BytesView issuer_public_key, SimTime now,
                                          ct::EntryType type, CompletionFn done) {
  // Validation runs in the submitting thread, so it parallelizes across
  // producers instead of serializing in the sequencer.
  if (config_.verify_submissions && !cert.verify(issuer_public_key)) {
    svc_metrics().rejected_invalid.inc();
    obs::log_debug("logsvc", "submission failed chain verification",
                   {{"log", config_.name}, {"issuer", cert.tbs.issuer.common_name}});
    return SubmitStatus::rejected_invalid;
  }
  ct::SignedEntry entry = (type == ct::EntryType::precert_entry)
                              ? ct::make_precert_entry(cert, issuer_public_key)
                              : ct::make_x509_entry(cert);
  return submit(std::move(entry), cert.fingerprint(), cert.tbs.issuer.common_name, now,
                std::move(done));
}

SubmitStatus LogService::submit_chain(const x509::Certificate& cert, BytesView issuer_public_key,
                                      SimTime now, CompletionFn done) {
  if (cert.is_precertificate()) {
    svc_metrics().rejected_invalid.inc();
    return SubmitStatus::rejected_invalid;
  }
  return submit_validated(cert, issuer_public_key, now, ct::EntryType::x509_entry,
                          std::move(done));
}

SubmitStatus LogService::submit_pre_chain(const x509::Certificate& precert,
                                          BytesView issuer_public_key, SimTime now,
                                          CompletionFn done) {
  if (!precert.is_precertificate()) {
    svc_metrics().rejected_invalid.inc();
    return SubmitStatus::rejected_invalid;
  }
  return submit_validated(precert, issuer_public_key, now, ct::EntryType::precert_entry,
                          std::move(done));
}

SubmitOutcome LogService::submit_and_wait(const x509::Certificate& cert,
                                          BytesView issuer_public_key, SimTime now) {
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool ready = false;
    SubmitOutcome outcome;
  };
  auto waiter = std::make_shared<Waiter>();
  auto done = [waiter](const SubmitOutcome& outcome) {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->outcome = outcome;
      waiter->ready = true;
    }
    waiter->cv.notify_one();
  };
  const SubmitStatus status =
      cert.is_precertificate() ? submit_pre_chain(cert, issuer_public_key, now, done)
                               : submit_chain(cert, issuer_public_key, now, done);
  if (status != SubmitStatus::ok) return SubmitOutcome{status, 0, std::nullopt};
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&] { return waiter->ready; });
  return waiter->outcome;
}

std::shared_ptr<const TreeSnapshot> LogService::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

storage::PagedLeafSource LogService::paged_source() const {
  storage::LogStore& store = *config_.storage;
  // The watermark is snapshotted here; a checkpoint racing the query only
  // advances it (append-only Merkle: perfect subtrees never change, so a
  // newer watermark still resolves every page an older tree needs). The
  // resident stores cover everything the pages cannot — an index below
  // resident_base_ reaching the tail fn means a page below the durable
  // watermark failed to load, which is corruption, not a fallthrough.
  return storage::PagedLeafSource(
      store.tile_cache(), store.paged_leaves(), [this](std::uint64_t i) -> crypto::Digest {
        if (i < resident_base_) {
          throw std::runtime_error("logsvc: tile page unavailable for checkpointed leaf");
        }
        return leaves_.at(i - resident_base_);
      });
}

std::vector<crypto::Digest> LogService::inclusion_proof(std::uint64_t index,
                                                        std::uint64_t tree_size) const {
  if (tree_size > this->tree_size() || index >= tree_size) {
    throw std::out_of_range("LogService::inclusion_proof: bad index/size");
  }
  if (resident_base_ == 0) {
    return ct::merkle_inclusion_path(
        [this](std::uint64_t i) -> const crypto::Digest& { return leaves_.at(i); }, index,
        tree_size);
  }
  storage::PagedLeafSource source = paged_source();
  std::vector<crypto::Digest> path = ct::tiled_inclusion_path(source, index, tree_size);
  svc_metrics().proof_page_fetches.observe(static_cast<double>(source.page_fetches()));
  return path;
}

std::vector<crypto::Digest> LogService::consistency_proof(std::uint64_t old_size,
                                                          std::uint64_t new_size) const {
  if (new_size > tree_size() || old_size > new_size) {
    throw std::out_of_range("LogService::consistency_proof: bad sizes");
  }
  if (resident_base_ == 0) {
    return ct::merkle_consistency_path(
        [this](std::uint64_t i) -> const crypto::Digest& { return leaves_.at(i); }, old_size,
        new_size);
  }
  storage::PagedLeafSource source = paged_source();
  std::vector<crypto::Digest> path = ct::tiled_consistency_path(source, old_size, new_size);
  svc_metrics().proof_page_fetches.observe(static_cast<double>(source.page_fetches()));
  return path;
}

crypto::Digest LogService::leaf_hash_at(std::uint64_t index) const {
  if (index >= tree_size()) {
    throw std::out_of_range("LogService::leaf_hash_at: beyond published size");
  }
  if (index >= resident_base_) return leaves_.at(index - resident_base_);
  storage::TileCache::PagePtr page =
      config_.storage->tile_cache().get(0, index >> 8, (index & 255) + 1);
  if (page == nullptr) {
    throw std::runtime_error("logsvc: tile page unavailable for checkpointed leaf");
  }
  return page->leaves[static_cast<std::size_t>(index & 255)];
}

std::optional<std::uint64_t> LogService::leaf_index_of(const crypto::Digest& leaf_hash) const {
  {
    std::lock_guard<std::mutex> lock(leaf_index_mu_);
    const auto it = leaf_index_.find(leaf_hash);
    if (it != leaf_index_.end()) return it->second;
  }
  if (resident_base_ == 0) return std::nullopt;
  // Paged mode: the resident map only covers [resident_base_, size). The
  // checkpointed prefix's map is rebuilt lazily — one streaming pass over
  // the level-0 tile pages, paid by the first miss, never by startup.
  // (A hash duplicated across the boundary resolves to its resident
  // occurrence; any provable index satisfies get-proof-by-hash.)
  std::lock_guard<std::mutex> lock(paged_index_mu_);
  if (!paged_index_built_) {
    const storage::IoError io = config_.storage->stream_paged_leaves(
        0, resident_base_,
        [this](std::uint64_t first, const crypto::Digest* hashes, std::uint64_t count) {
          for (std::uint64_t i = 0; i < count; ++i) {
            paged_index_.emplace(hashes[i], first + i);  // first occurrence wins
          }
          return true;
        });
    if (io != storage::IoError::none) {
      throw std::runtime_error("logsvc: failed to stream tile pages for get-proof-by-hash");
    }
    paged_index_built_ = true;
  }
  const auto it = paged_index_.find(leaf_hash);
  if (it == paged_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<EntryRecord> LogService::get_entries(std::uint64_t start, std::uint64_t count) const {
  const std::uint64_t published = resident_base_ + entries_.size();
  std::vector<EntryRecord> out;
  if (start >= published || count == 0) return out;
  // Clamp before any arithmetic: `start + count` on attacker-supplied
  // values can wrap uint64 and turn the window into "everything".
  std::uint64_t window = std::min(count, config_.max_get_entries);
  window = std::min(window, published - start);
  out.reserve(window);
  if (start < resident_base_) {
    // The checkpointed prefix comes from entries.seg via the sparse
    // index; a window straddling the boundary finishes from memory.
    const std::uint64_t paged = std::min(window, resident_base_ - start);
    std::vector<storage::DurableEntry> durables;
    durables.reserve(paged);
    if (config_.storage->read_entries(start, paged, durables) != storage::IoError::none) {
      throw std::runtime_error("logsvc: get-entries failed to read the entry segment");
    }
    for (storage::DurableEntry& durable : durables) {
      out.push_back(to_record(std::move(durable), config_.store_bodies));
    }
  }
  for (std::uint64_t i = std::max(start, resident_base_); i < start + window; ++i) {
    out.push_back(entries_.at(i - resident_base_));
  }
  return out;
}

ct::SignedCertificateTimestamp LogService::sign_sct(std::uint64_t timestamp_ms,
                                                    const ct::SignedEntry& entry) const {
  ct::SignedCertificateTimestamp sct;
  sct.log_id = log_id();
  sct.timestamp_ms = timestamp_ms;
  sct.signature = signer_->sign(ct::sct_signing_input(sct, entry));
  return sct;
}

ct::SignedTreeHead LogService::sign_sth(const ct::RootAccumulator& accumulator,
                                        std::uint64_t timestamp_ms) const {
  ct::SignedTreeHead sth;
  sth.tree_size = accumulator.size();
  sth.timestamp_ms = timestamp_ms;
  sth.root_hash = accumulator.root();
  sth.signature = signer_->sign(ct::sth_signing_input(sth));
  return sth;
}

void LogService::publish_snapshot(ct::SignedTreeHead sth) {
  // The STH is signed exactly once, before the durable commit, and the
  // committed object is the published object: after a crash, recovery
  // republishes these same bytes instead of re-signing (which would fork
  // the log's own history for anyone who kept the pre-crash head).
  auto snapshot = std::make_shared<TreeSnapshot>();
  snapshot->sth = std::move(sth);
  snapshot->seal_seq = seal_seq_;
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snapshot);
}

void LogService::sequencer_main() {
  SvcMetrics& metrics = svc_metrics();
  std::vector<Pending> batch;
  while (queue_.wait_nonempty()) {
    // Frozen by the backpressure tests: hold off draining so the queue
    // can be filled deterministically.
    while (paused_.load(std::memory_order_relaxed) && !queue_.closed()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // The merge-delay window opens at the first pending submission and
    // closes at the deadline or when the batch is full.
    const auto window_open = std::chrono::steady_clock::now();
    const auto deadline = window_open + config_.merge_delay;
    batch.clear();
    queue_.drain(batch, config_.max_batch);
    while (batch.size() < config_.max_batch && queue_.wait_nonempty_until(deadline)) {
      queue_.drain(batch, config_.max_batch - batch.size());
    }
    // Observed merge delay: how long this batch was actually held open
    // (short of the configured MMD when max_batch filled it early).
    metrics.merge_delay_us.observe(std::chrono::duration<double, std::micro>(
                                       std::chrono::steady_clock::now() - window_open)
                                       .count());
    metrics.queue_depth.set(static_cast<std::int64_t>(queue_.depth()));
    seal_batch(batch);
  }
  metrics.queue_depth.set(0);
  obs::log_info("logsvc", "sequencer drained and exiting",
                {{"log", config_.name}, {"tree_size", accumulator_.size()}});
}

void LogService::seal_batch(std::vector<Pending>& batch) {
  if (batch.empty()) return;
  SvcMetrics& metrics = svc_metrics();
  CTWATCH_SPAN("logsvc.seal");
  obs::ScopedTimer seal_timer(metrics.seal_us);
  obs::flight_note("logsvc.seal", batch.size(), accumulator_.size());

  if (config_.chaos != nullptr) {
    // Delayed sealing: a stalled sequencer, the MMD stretched. The batch
    // still seals — late, with the queue absorbing the backlog meanwhile.
    const chaos::FaultDecision stall = config_.chaos->evaluate(
        config_.chaos_prefix + ".seal", batch.front().timestamp_ms * 1000);
    if (stall.latency_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(stall.latency_us));
    }
  }

  // The seal is staged, committed, then applied. The stage phase computes
  // everything (leaf hashes, SCTs, records) WITHOUT mutating any shared
  // state; the commit phase makes the batch durable (when a storage
  // backend is configured); only then does the apply phase publish to the
  // in-memory stores and release completions. A failed commit therefore
  // leaves memory exactly at the last durable state — the service never
  // serves a root the disk cannot prove.
  struct Completion {
    CompletionFn done;
    SubmitOutcome outcome;
    std::chrono::steady_clock::time_point enqueued_at;
  };
  std::vector<Completion> completions;
  completions.reserve(batch.size());
  std::vector<StreamEvent> events;
  events.reserve(batch.size());
  std::vector<crypto::Digest> new_leaves;
  std::vector<EntryRecord> new_records;
  std::vector<storage::DurableEntry> durables;
  // Completions whose outcome presumes this batch integrates (fresh
  // appends AND intra-batch dedup hits): flipped to storage_error if the
  // durable commit refuses.
  std::vector<std::size_t> contingent;
  std::unordered_map<crypto::Digest, DedupValue, DigestHash> staged_dedup;
  ct::RootAccumulator probe = accumulator_;

  const auto seal_started = std::chrono::steady_clock::now();
  Bytes leaf_bytes;
  for (Pending& pending : batch) {
    // Restore the submitter's trace position so this per-entry span (and
    // the fanout dispatch span that descends from it) land in the
    // submission's causal tree despite running on the sequencer thread.
    obs::ContextScope link(pending.trace);
    obs::Span entry_span("logsvc.seal_entry");
    metrics.queue_wait_us.observe(
        std::chrono::duration<double, std::micro>(seal_started - pending.enqueued_at).count());
    last_timestamp_ms_ = std::max(last_timestamp_ms_, pending.timestamp_ms);

    if (config_.chaos != nullptr &&
        config_.chaos->evaluate(config_.chaos_prefix + ".sign", pending.timestamp_ms * 1000)
            .faulted()) {
      // Signer failure: the entry is not integrated, but the submitter
      // still hears about it — a counted failure, never silence.
      signer_failures_.fetch_add(1, std::memory_order_relaxed);
      metrics.signer_failures.inc();
      obs::flight_note("logsvc.signer_failure", pending.timestamp_ms);
      completions.push_back({std::move(pending.done),
                             SubmitOutcome{SubmitStatus::internal_error, 0, std::nullopt},
                             pending.enqueued_at});
      continue;
    }

    if (config_.dedup) {
      // RFC 6962 resubmission semantics: re-issue the SCT over the
      // original timestamp instead of growing the tree. Hits against
      // entries staged in THIS batch are contingent on the commit.
      const DedupValue* prior = nullptr;
      bool prior_in_batch = false;
      if (const auto it = dedup_.find(pending.fingerprint); it != dedup_.end()) {
        prior = &it->second;
      } else if (const auto it2 = staged_dedup.find(pending.fingerprint);
                 it2 != staged_dedup.end()) {
        prior = &it2->second;
        prior_in_batch = true;
      }
      if (prior != nullptr) {
        metrics.dedup_hits.inc();
        if (prior_in_batch) contingent.push_back(completions.size());
        completions.push_back({std::move(pending.done),
                               SubmitOutcome{SubmitStatus::ok, prior->index,
                                             sign_sct(prior->timestamp_ms, pending.entry)},
                               pending.enqueued_at});
        continue;
      }
    }

    const std::uint64_t index = probe.size();
    leaf_bytes = ct::merkle_leaf_bytes(pending.timestamp_ms, pending.entry);
    const crypto::Digest leaf = ct::leaf_hash(leaf_bytes);
    ct::SignedCertificateTimestamp sct;
    {
      obs::ScopedTimer sign_timer(metrics.sign_us);
      sct = sign_sct(pending.timestamp_ms, pending.entry);
    }

    if (config_.dedup) {
      staged_dedup.emplace(pending.fingerprint, DedupValue{index, pending.timestamp_ms});
    }

    if (config_.storage != nullptr) {
      storage::DurableEntry durable;
      durable.index = index;
      durable.timestamp_ms = pending.timestamp_ms;
      durable.leaf_hash = leaf;
      durable.fingerprint = pending.fingerprint;
      durable.issuer_cn = pending.issuer_cn;
      durable.has_body = config_.store_bodies;
      if (config_.store_bodies) durable.entry = pending.entry;
      durables.push_back(std::move(durable));
    }

    EntryRecord record;
    record.index = index;
    record.timestamp_ms = pending.timestamp_ms;
    record.fingerprint = pending.fingerprint;
    record.issuer_cn = pending.issuer_cn;
    if (config_.store_bodies) record.signed_entry = std::move(pending.entry);

    StreamEvent event;
    event.index = index;
    event.timestamp_ms = pending.timestamp_ms;
    event.leaf_hash = leaf;
    event.fingerprint = pending.fingerprint;
    event.issuer_cn = std::move(pending.issuer_cn);
    event.trace = entry_span.context();

    probe.add(leaf);
    new_leaves.push_back(leaf);
    new_records.push_back(std::move(record));
    events.push_back(std::move(event));
    contingent.push_back(completions.size());
    completions.push_back({std::move(pending.done),
                           SubmitOutcome{SubmitStatus::ok, index, std::move(sct)},
                           pending.enqueued_at});
  }
  const std::uint64_t appended = new_leaves.size();

  // Commit: sign the head once, make it durable, and only then let
  // anything observe it. Capacity exhaustion in the memory stores is
  // checked BEFORE the disk commit — committing a batch the memory image
  // cannot hold would fork disk from memory.
  bool committed = appended > 0;
  ct::SignedTreeHead sth;
  if (appended > 0) {
    sth = sign_sth(probe, last_timestamp_ms_);
    if (leaves_.write_pos() + appended > leaves_.capacity() ||
        entries_.write_pos() + appended > entries_.capacity()) {
      committed = false;
      obs::log_warn("logsvc", "batch refused: in-memory store capacity exhausted",
                    {{"log", config_.name}, {"tree_size", accumulator_.size()}});
    } else if (config_.storage != nullptr) {
      storage::BatchCommit commit;
      commit.entries = std::move(durables);
      commit.sth = sth;
      commit.seal_seq = seal_seq_ + 1;
      const storage::IoResult io = config_.storage->commit_batch(commit);
      committed = io.ok();
      if (!committed) {
        obs::log_warn("logsvc", "durable commit failed; batch not integrated",
                      {{"log", config_.name},
                       {"error", std::string(storage::to_string(io.error))},
                       {"tree_size", accumulator_.size()}});
      }
    }
  }

  if (committed) {
    // Apply + publish order matters: stores first (release), then the
    // snapshot that readers bound their accesses by, then the completions
    // that tell submitters their entry is provable.
    for (std::uint64_t i = 0; i < appended; ++i) {
      (void)leaves_.append(new_leaves[static_cast<std::size_t>(i)]);
      {
        std::lock_guard<std::mutex> lock(leaf_index_mu_);
        leaf_index_.emplace(new_leaves[static_cast<std::size_t>(i)],
                            accumulator_.size() + i);  // first occurrence wins
      }
      (void)entries_.append(std::move(new_records[static_cast<std::size_t>(i)]));
    }
    for (auto& staged : staged_dedup) dedup_.insert(std::move(staged));
    accumulator_ = std::move(probe);
    leaves_.publish();
    entries_.publish();
    ++seal_seq_;
    publish_snapshot(std::move(sth));
    sealed_batches_.fetch_add(1, std::memory_order_relaxed);
    metrics.sealed_batches.inc();
    metrics.tree_size.set(static_cast<std::int64_t>(accumulator_.size()));
  } else if (appended > 0) {
    // The batch is NOT part of the tree (fail-stop): every contingent
    // completion reports storage_error, nothing streams, and the last
    // durable snapshot keeps serving reads.
    storage_failures_.fetch_add(1, std::memory_order_relaxed);
    metrics.storage_failures.inc();
    obs::flight_note("logsvc.storage_failure", accumulator_.size());
    for (const std::size_t index : contingent) {
      completions[index].outcome = SubmitOutcome{SubmitStatus::storage_error, 0, std::nullopt};
    }
    events.clear();
  }
  metrics.batch_size.observe(static_cast<double>(batch.size()));
  accepted_.fetch_add(batch.size(), std::memory_order_relaxed);

  const auto sealed_at = std::chrono::steady_clock::now();
  for (Completion& completion : completions) {
    if (completion.outcome.status == SubmitStatus::ok) metrics.accepted.inc();
    metrics.submit_to_sct_us.observe(
        std::chrono::duration<double, std::micro>(sealed_at - completion.enqueued_at).count());
    if (completion.done) completion.done(completion.outcome);
  }
  for (const StreamEvent& event : events) fanout_.publish(event);
}

}  // namespace ctwatch::logsvc
