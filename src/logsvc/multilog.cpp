#include "ctwatch/logsvc/multilog.hpp"

#include <algorithm>
#include <queue>
#include <tuple>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::logsvc {

namespace {

struct MultiLogMetrics {
  obs::Counter& submissions = obs::Registry::global().counter("multilog.submissions");
  obs::Counter& quorum = obs::Registry::global().counter("multilog.quorum");
  obs::Counter& degraded = obs::Registry::global().counter("multilog.degraded");
  obs::Counter& failed = obs::Registry::global().counter("multilog.failed");
  obs::Counter& attempts = obs::Registry::global().counter("multilog.attempts");
  obs::Counter& retries = obs::Registry::global().counter("multilog.retries");
  obs::Counter& hedges = obs::Registry::global().counter("multilog.hedges");
  obs::Counter& breaker_trips = obs::Registry::global().counter("multilog.breaker_trips");
  obs::Histogram& quorum_latency_us = obs::Registry::global().histogram(
      "multilog.quorum_latency_us", obs::exponential_bounds(64.0, 2.0, 20));
  // Wall-clock cost of running one submission's virtual-time event loop
  // (quorum_latency_us above is simulated time; this is compute time).
  obs::LogLinearHistogram& submit_wall_us =
      obs::Registry::global().latency("multilog.submit_wall_us");
};

MultiLogMetrics& multilog_metrics() {
  static MultiLogMetrics metrics;
  return metrics;
}

}  // namespace

MultiLogSubmitter::MultiLogSubmitter(std::vector<LogTarget*> targets, MultiLogOptions options)
    : options_(options), jitter_rng_(options.jitter_seed) {
  targets_.reserve(targets.size());
  for (LogTarget* target : targets) {
    targets_.push_back(TargetState{target, CircuitBreaker(options_.breaker)});
  }
}

std::uint64_t MultiLogSubmitter::breaker_trips() const {
  std::uint64_t total = 0;
  for (const TargetState& state : targets_) total += state.breaker.trips();
  return total;
}

SubmitReport MultiLogSubmitter::submit(std::uint64_t submission_id, std::uint64_t start_us) {
  CTWATCH_SPAN("multilog.submit");
  obs::ScopedTimer wall_timer(multilog_metrics().submit_wall_us);
  enum class EventType : std::uint8_t { completion, hedge_check, retry };
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;  // tie-break: event creation order, deterministic
    EventType type;
    std::size_t target;
    bool success;
    std::uint64_t launched_at;  // completion/hedge_check: when the attempt started
  };
  auto later = [](const Event& a, const Event& b) {
    return std::tie(a.time, a.seq) > std::tie(b.time, b.seq);
  };
  std::priority_queue<Event, std::vector<Event>, decltype(later)> events(later);

  struct PerTarget {
    std::size_t attempts = 0;
    bool in_flight = false;
    bool sct = false;
    bool retry_scheduled = false;
    std::uint64_t launched_at = 0;
  };
  std::vector<PerTarget> per(targets_.size());

  SubmitReport report;
  const std::uint64_t trips_before = breaker_trips();
  const std::uint64_t deadline = start_us + options_.deadline_us;
  std::uint64_t seq = 0;
  std::size_t scts = 0;
  std::size_t in_flight = 0;
  bool resolved = false;
  std::uint64_t resolved_at = deadline;

  // Launches one attempt against target i at `now`; the target's verdict
  // is known immediately but surfaces as a completion event at the
  // attempt's virtual latency (timeouts surface at attempt_timeout_us —
  // the client waits its full patience to learn nothing).
  auto launch = [&](std::size_t i, std::uint64_t now) {
    PerTarget& pt = per[i];
    const AttemptResult result = targets_[i].target->attempt(submission_id, now);
    ++pt.attempts;
    pt.in_flight = true;
    pt.launched_at = now;
    ++in_flight;
    ++report.attempts;

    bool success = false;
    std::uint64_t completes_at = 0;
    if (result.fault == chaos::FaultKind::timeout ||
        (result.ok() && result.latency_us >= options_.attempt_timeout_us)) {
      // Lost request, or an SCT too slow to wait for: both are timeouts
      // from where the client stands.
      ++report.timeouts;
      completes_at = now + options_.attempt_timeout_us;
    } else if (result.fault == chaos::FaultKind::error) {
      ++report.errors;
      completes_at = now + std::min(result.latency_us, options_.attempt_timeout_us);
    } else {
      success = true;
      completes_at = now + result.latency_us;
    }
    events.push(Event{completes_at, seq++, EventType::completion, i, success, now});
    if (options_.hedge_after_us > 0 && options_.hedge_after_us < options_.attempt_timeout_us) {
      events.push(
          Event{now + options_.hedge_after_us, seq++, EventType::hedge_check, i, false, now});
    }
  };

  // Picks the best eligible target (fewest attempts, then lowest index —
  // spread across fresh logs before retrying a flaky one) and launches
  // it. Open breakers veto candidates; each veto is counted.
  auto launch_best = [&](std::uint64_t now) -> bool {
    std::size_t best = targets_.size();
    std::size_t best_attempts = options_.max_attempts_per_log;
    for (std::size_t i = 0; i < targets_.size(); ++i) {
      const PerTarget& pt = per[i];
      if (pt.sct || pt.in_flight || pt.retry_scheduled) continue;
      if (pt.attempts >= options_.max_attempts_per_log) continue;
      if (pt.attempts < best_attempts) {
        best_attempts = pt.attempts;
        best = i;
      }
    }
    if (best == targets_.size()) return false;
    if (!targets_[best].breaker.allow(now)) {
      ++report.breaker_skips;
      // The best candidate is fused out; try the next-best eligible one.
      std::size_t fallback = targets_.size();
      std::size_t fallback_attempts = options_.max_attempts_per_log;
      for (std::size_t i = 0; i < targets_.size(); ++i) {
        const PerTarget& pt = per[i];
        if (i == best || pt.sct || pt.in_flight || pt.retry_scheduled) continue;
        if (pt.attempts >= options_.max_attempts_per_log) continue;
        if (pt.attempts < fallback_attempts && targets_[i].breaker.allow(now)) {
          fallback_attempts = pt.attempts;
          fallback = i;
          break;  // allow() reserves half-open probes: take the first grant
        }
      }
      if (fallback == targets_.size()) return false;
      launch(fallback, now);
      return true;
    }
    launch(best, now);
    return true;
  };

  auto backoff_delay = [&](std::size_t attempts_made) -> std::uint64_t {
    double delay = static_cast<double>(options_.backoff_base_us);
    for (std::size_t i = 1; i < attempts_made; ++i) delay *= options_.backoff_factor;
    if (options_.backoff_jitter > 0.0) {
      const double spread = (jitter_rng_.uniform() * 2.0 - 1.0) * options_.backoff_jitter;
      delay *= 1.0 + spread;
    }
    return static_cast<std::uint64_t>(std::max(delay, 1.0));
  };

  // Initial fan-out: one attempt per quorum slot.
  for (std::size_t k = 0; k < options_.quorum; ++k) {
    if (!launch_best(start_us)) break;
  }

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    const std::uint64_t now = event.time;
    PerTarget& pt = per[event.target];

    switch (event.type) {
      case EventType::completion: {
        pt.in_flight = false;
        --in_flight;
        // Breakers always learn the outcome, even for attempts resolving
        // after the deadline or after quorum — the client observed it.
        if (event.success) {
          targets_[event.target].breaker.record_success();
        } else {
          targets_[event.target].breaker.record_failure(now);
        }
        if (resolved || now > deadline) break;
        if (event.success) {
          pt.sct = true;
          ++scts;
          if (scts >= options_.quorum) {
            resolved = true;
            resolved_at = now;
          }
          break;
        }
        // Failed attempt: schedule a backoff retry on the same log if it
        // has budget, and pull in a replacement log if the quorum cannot
        // be met by what is still in flight.
        if (pt.attempts < options_.max_attempts_per_log) {
          const std::uint64_t delay = backoff_delay(pt.attempts);
          if (now + delay < deadline) {
            pt.retry_scheduled = true;
            events.push(Event{now + delay, seq++, EventType::retry, event.target, false, now});
          }
        }
        if (scts + in_flight < options_.quorum) launch_best(now);
        break;
      }
      case EventType::hedge_check: {
        if (resolved || now > deadline) break;
        // Only hedge if the very attempt this check was scheduled for is
        // still the one in flight (it has not completed or been retried).
        if (pt.in_flight && pt.launched_at == event.launched_at && scts < options_.quorum) {
          if (launch_best(now)) ++report.hedges;
        }
        break;
      }
      case EventType::retry: {
        pt.retry_scheduled = false;
        if (resolved || now > deadline) break;
        if (pt.sct || pt.in_flight || pt.attempts >= options_.max_attempts_per_log) break;
        if (!targets_[event.target].breaker.allow(now)) {
          ++report.breaker_skips;
          break;
        }
        ++report.retries;
        launch(event.target, now);
        break;
      }
    }
  }

  report.scts = scts;
  if (scts >= options_.quorum) {
    report.outcome = QuorumOutcome::quorum;
    report.latency_us = resolved_at - start_us;
  } else {
    report.outcome =
        scts >= options_.degraded_floor ? QuorumOutcome::degraded : QuorumOutcome::failed;
    report.latency_us = options_.deadline_us;
  }

  MultiLogMetrics& metrics = multilog_metrics();
  metrics.submissions.inc();
  metrics.attempts.inc(report.attempts);
  metrics.retries.inc(report.retries);
  metrics.hedges.inc(report.hedges);
  metrics.breaker_trips.inc(breaker_trips() - trips_before);
  ++totals_.submissions;
  totals_.attempts += report.attempts;
  totals_.retries += report.retries;
  totals_.hedges += report.hedges;
  totals_.timeouts += report.timeouts;
  totals_.errors += report.errors;
  totals_.breaker_skips += report.breaker_skips;
  switch (report.outcome) {
    case QuorumOutcome::quorum:
      ++totals_.quorum;
      metrics.quorum.inc();
      metrics.quorum_latency_us.observe(static_cast<double>(report.latency_us));
      break;
    case QuorumOutcome::degraded:
      ++totals_.degraded;
      metrics.degraded.inc();
      break;
    case QuorumOutcome::failed:
      ++totals_.failed;
      metrics.failed.inc();
      break;
  }
  return report;
}

}  // namespace ctwatch::logsvc
