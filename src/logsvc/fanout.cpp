#include "ctwatch/logsvc/fanout.hpp"

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::logsvc {

namespace {

struct FanoutMetrics {
  obs::Counter& delivered = obs::Registry::global().counter("logsvc.fanout.delivered");
  obs::Counter& dropped = obs::Registry::global().counter("logsvc.fanout.dropped");
  obs::LogLinearHistogram& dispatch_us =
      obs::Registry::global().latency("logsvc.fanout_dispatch_us");
};

FanoutMetrics& fanout_metrics() {
  static FanoutMetrics metrics;
  return metrics;
}

}  // namespace

void StreamFanout::subscribe(std::string name, Callback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return;
  auto subscriber = std::make_unique<Subscriber>(std::move(name), std::move(callback), capacity_);
  Subscriber& ref = *subscriber;
  subscribers_.push_back(std::move(subscriber));
  ref.dispatcher = std::thread([this, &ref] { dispatch_loop(ref); });
}

void StreamFanout::publish(const StreamEvent& event) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& subscriber : subscribers_) {
    StreamEvent copy = event;
    copy.published_at = now;
    if (subscriber->ring.try_push(std::move(copy)) != PushResult::ok) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      fanout_metrics().dropped.inc();
      obs::log_debug("logsvc.fanout", "event dropped for slow subscriber",
                     {{"subscriber", subscriber->name}, {"index", event.index}});
    }
  }
}

void StreamFanout::dispatch_loop(Subscriber& subscriber) {
  std::vector<StreamEvent> batch;
  while (subscriber.ring.wait_nonempty()) {
    batch.clear();
    subscriber.ring.drain(batch, 256);
    for (const StreamEvent& event : batch) {
      // The dispatch span parents to the sequencer's per-entry span — the
      // third thread in a submission's causal tree (submitter, sequencer,
      // dispatcher).
      obs::ContextScope link(event.trace);
      CTWATCH_SPAN("logsvc.fanout.dispatch");
      if (event.published_at.time_since_epoch().count() != 0) {
        fanout_metrics().dispatch_us.observe(std::chrono::duration<double, std::micro>(
                                                 std::chrono::steady_clock::now() -
                                                 event.published_at)
                                                 .count());
      }
      subscriber.callback(event);
      delivered_.fetch_add(1, std::memory_order_relaxed);
      fanout_metrics().delivered.inc();
    }
  }
}

void StreamFanout::stop() {
  std::vector<std::unique_ptr<Subscriber>> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    to_join.swap(subscribers_);
  }
  for (const auto& subscriber : to_join) subscriber->ring.close();
  for (const auto& subscriber : to_join) {
    if (subscriber->dispatcher.joinable()) subscriber->dispatcher.join();
  }
}

std::size_t StreamFanout::subscriber_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subscribers_.size();
}

}  // namespace ctwatch::logsvc
