#include "ctwatch/storage/tiles.hpp"

#include <algorithm>
#include <cstring>

#include "ctwatch/storage/crc32c.hpp"

namespace ctwatch::storage {

namespace {

void put_u32be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64be(Bytes& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

std::uint32_t read_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

std::uint64_t read_u64be(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = v << 8 | p[i];
  return v;
}

}  // namespace

void encode_tile_page(Bytes& out, std::uint64_t tile_index, const crypto::Digest* leaves,
                      std::uint64_t count, unsigned level) {
  const std::size_t start = out.size();
  put_u32be(out, kTileMagic);
  put_u32be(out, 0);  // crc placeholder
  put_u64be(out, tile_index);
  out.push_back(static_cast<std::uint8_t>(count >> 8));
  out.push_back(static_cast<std::uint8_t>(count));
  out.push_back(static_cast<std::uint8_t>(level));
  out.push_back(0);
  for (std::uint64_t i = 0; i < kTileLeaves; ++i) {
    if (i < count) {
      out.insert(out.end(), leaves[i].begin(), leaves[i].end());
    } else {
      out.insert(out.end(), 32, std::uint8_t{0});
    }
  }
  const std::uint32_t crc =
      crc32c(BytesView{out.data() + start + 8, kTilePageBytes - 8});
  const std::uint32_t masked = crc32c_mask(crc);
  out[start + 4] = static_cast<std::uint8_t>(masked >> 24);
  out[start + 5] = static_cast<std::uint8_t>(masked >> 16);
  out[start + 6] = static_cast<std::uint8_t>(masked >> 8);
  out[start + 7] = static_cast<std::uint8_t>(masked);
}

std::optional<TilePage> decode_tile_page(BytesView page) {
  if (page.size() < kTilePageBytes) return std::nullopt;
  if (read_u32be(page.data()) != kTileMagic) return std::nullopt;
  const std::uint32_t stored = crc32c_unmask(read_u32be(page.data() + 4));
  if (crc32c(page.subspan(8, kTilePageBytes - 8)) != stored) return std::nullopt;
  TilePage out;
  out.tile_index = read_u64be(page.data() + 8);
  out.count = static_cast<std::uint64_t>(page[16]) << 8 | page[17];
  out.level = page[18];
  if (out.count == 0 || out.count > kTileLeaves) return std::nullopt;
  out.leaves.resize(out.count);
  for (std::uint64_t i = 0; i < out.count; ++i) {
    std::memcpy(out.leaves[i].data(), page.data() + 20 + i * 32, 32);
  }
  return out;
}

TileLoad load_tiles(BytesView segment, std::uint64_t limit_bytes, std::uint64_t tree_size) {
  TileLoad load;
  const std::uint64_t usable = std::min<std::uint64_t>(segment.size(), limit_bytes);
  const std::uint64_t tiles_needed = (tree_size + kTileLeaves - 1) / kTileLeaves;
  // Last-wins page table: page offsets per tile index, later supersedes.
  std::vector<std::optional<TilePage>> tiles(static_cast<std::size_t>(tiles_needed));
  for (std::uint64_t pos = 0; pos + kTilePageBytes <= usable; pos += kTilePageBytes) {
    ++load.pages_read;
    auto page = decode_tile_page(segment.subspan(pos, kTilePageBytes));
    if (!page.has_value()) {
      ++load.pages_invalid;
      continue;  // fixed stride: one bad page never desynchronizes the rest
    }
    if (page->level != 0) continue;  // interior-hash tiles are not leaves
    if (page->tile_index >= tiles_needed) continue;  // beyond this checkpoint's tree
    tiles[static_cast<std::size_t>(page->tile_index)] = std::move(page);
  }
  load.leaves.reserve(static_cast<std::size_t>(tree_size));
  for (std::uint64_t t = 0; t < tiles_needed; ++t) {
    const auto& page = tiles[static_cast<std::size_t>(t)];
    const std::uint64_t want =
        std::min<std::uint64_t>(kTileLeaves, tree_size - t * kTileLeaves);
    if (!page.has_value() || page->count < want) {
      load.error = IoError::corrupt;  // gap below the manifest's tree size
      return load;
    }
    for (std::uint64_t i = 0; i < want; ++i) load.leaves.push_back(page->leaves[i]);
  }
  return load;
}

}  // namespace ctwatch::storage
