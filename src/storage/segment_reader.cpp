#include "ctwatch/storage/segment_reader.hpp"

#include <algorithm>
#include <cstring>

#include "ctwatch/storage/crc32c.hpp"

namespace ctwatch::storage {

namespace {

std::uint32_t read_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

}  // namespace

FrameCursor::FrameCursor(const RandomReadFile& file, std::uint64_t begin, std::uint64_t end,
                         std::size_t buffer_bytes)
    : file_(file), end_(end), next_frame_(begin), buffer_cap_(buffer_bytes) {
  if (buffer_cap_ < 4096) buffer_cap_ = 4096;
}

bool FrameCursor::ensure(std::size_t n) {
  const std::uint64_t have_end = buffer_base_ + buffer_.size();
  if (next_frame_ >= buffer_base_ && next_frame_ + n <= have_end) return true;
  const std::uint64_t want = std::min<std::uint64_t>(
      end_ - next_frame_, std::max<std::uint64_t>(n, buffer_cap_));
  buffer_.resize(static_cast<std::size_t>(want));
  buffer_base_ = next_frame_;
  if (want == 0) return true;
  return file_.read_at(next_frame_, buffer_.data(), buffer_.size()).error == IoError::none;
}

FrameCursor::Status FrameCursor::next(RecordType& type, Bytes& payload) {
  if (next_frame_ == end_) return Status::end;
  if (next_frame_ + 9 > end_) return Status::corrupt;  // header can't fit
  if (!ensure(9)) return Status::io;
  const std::uint8_t* header = buffer_.data() + (next_frame_ - buffer_base_);
  const std::uint32_t length = read_u32be(header);
  if (length == 0 || length > kMaxRecordBytes) return Status::corrupt;
  if (next_frame_ + 8 + length > end_) return Status::corrupt;  // runs past range
  if (!ensure(8 + static_cast<std::size_t>(length))) return Status::io;
  const std::uint8_t* frame = buffer_.data() + (next_frame_ - buffer_base_);
  const std::uint32_t stored_crc = crc32c_unmask(read_u32be(frame + 4));
  const BytesView body{frame + 8, length};
  if (crc32c(body) != stored_crc) return Status::corrupt;
  const std::uint8_t type_byte = body[0];
  if (type_byte != static_cast<std::uint8_t>(RecordType::entry) &&
      type_byte != static_cast<std::uint8_t>(RecordType::seal) &&
      type_byte != static_cast<std::uint8_t>(RecordType::checkpoint)) {
    return Status::corrupt;
  }
  type = static_cast<RecordType>(type_byte);
  payload.assign(body.begin() + 1, body.end());
  next_frame_ += 8 + length;
  return Status::ok;
}

SegmentReader::SegmentReader(std::shared_ptr<const RandomReadFile> file,
                             std::uint64_t index_stride)
    : file_(std::move(file)), stride_(index_stride == 0 ? 1 : index_stride) {}

void SegmentReader::add_mark(std::uint64_t index, std::uint64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!marks_.empty() && marks_.back().index >= index) return;  // monotone only
  marks_.push_back(Mark{index, offset});
}

void SegmentReader::set_coverage(std::uint64_t entries, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::max(entries_, entries);
  bytes_ = std::max(bytes_, bytes);
}

std::uint64_t SegmentReader::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

IoError SegmentReader::read(std::uint64_t start, std::uint64_t count,
                            std::vector<DurableEntry>& out) const {
  if (count == 0) return IoError::none;
  std::uint64_t cursor_index = 0;
  std::uint64_t cursor_offset = 0;
  std::uint64_t covered_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (start + count > entries_) return IoError::corrupt;
    covered_bytes = bytes_;
    // Floor mark: the last mark at or below `start`. Marks are sorted.
    auto it = std::upper_bound(marks_.begin(), marks_.end(), start,
                               [](std::uint64_t s, const Mark& m) { return s < m.index; });
    if (it != marks_.begin()) {
      --it;
      cursor_index = it->index;
      cursor_offset = it->offset;
    }
  }

  FrameCursor cursor(*file_, cursor_offset, covered_bytes);
  RecordType type{};
  Bytes payload;
  const std::uint64_t stop = start + count;
  while (cursor_index < stop) {
    switch (cursor.next(type, payload)) {
      case FrameCursor::Status::ok:
        break;
      case FrameCursor::Status::io:
        return IoError::io;
      default:
        return IoError::corrupt;  // end-before-expected counts too
    }
    if (type != RecordType::entry) return IoError::corrupt;
    if (cursor_index >= start) {
      std::optional<DurableEntry> entry = decode_entry(BytesView{payload.data(), payload.size()});
      if (!entry.has_value() || entry->index != cursor_index) return IoError::corrupt;
      out.push_back(std::move(*entry));
    }
    ++cursor_index;
  }
  return IoError::none;
}

}  // namespace ctwatch::storage
