#include "ctwatch/storage/file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::storage {

namespace {

struct FileMetrics {
  obs::Counter& appends = obs::Registry::global().counter("storage.appends");
  obs::Counter& append_bytes = obs::Registry::global().counter("storage.append_bytes");
  obs::Counter& fsyncs = obs::Registry::global().counter("storage.fsyncs");
  obs::Counter& io_faults = obs::Registry::global().counter("storage.io_faults");
  obs::Counter& crashes = obs::Registry::global().counter("storage.crashes");
  obs::LogLinearHistogram& fsync_us = obs::Registry::global().latency("storage.fsync_us");
};

FileMetrics& file_metrics() {
  static FileMetrics metrics;
  return metrics;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) h = (h ^ static_cast<std::uint8_t>(c)) * 0x100000001b3ULL;
  return h;
}

/// EINTR-safe full write at the file's current offset (fd opened without
/// O_APPEND; the caller is the only writer, so lseek-to-end then write).
bool write_fully(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
}

bool fsync_retry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

}  // namespace

const char* to_string(IoError error) {
  switch (error) {
    case IoError::none: return "none";
    case IoError::io: return "io";
    case IoError::crashed: return "crashed";
    case IoError::corrupt: return "corrupt";
    case IoError::exhausted: return "exhausted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Env
// ---------------------------------------------------------------------------

std::unique_ptr<Env> Env::open(Options options, IoError* error) {
  if (error != nullptr) *error = IoError::none;
  struct stat st{};
  if (::stat(options.dir.c_str(), &st) != 0) {
    if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) *error = IoError::io;
      return nullptr;
    }
  } else if (!S_ISDIR(st.st_mode)) {
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  return std::unique_ptr<Env>(new Env(std::move(options)));
}

Env::~Env() {
  // Files deregister themselves; any still open at Env teardown is a
  // caller bug, but never dangle into freed memory.
  for (File* file : open_files_) {
    // Orphan the handle: it keeps its fd, loses the crash model.
    (void)file;
  }
}

std::string Env::path_of(const std::string& name) const { return options_.dir + "/" + name; }

IoError Env::evaluate_op(const char* kind) {
  if (crashed_) return IoError::crashed;
  const std::uint64_t ordinal = op_counter_++;
  if (options_.chaos == nullptr) return IoError::none;
  // The op ordinal is the virtual clock: an OutageWindow starting at k on
  // "storage.crash" kills the process model at exactly the k-th physical
  // write — deterministic crash-point injection.
  if (options_.chaos->evaluate(options_.chaos_prefix + ".crash", ordinal).faulted()) {
    file_metrics().crashes.inc();
    obs::flight_note("storage.crash", ordinal);
    crash_now();
    return IoError::crashed;
  }
  if (options_.chaos->evaluate(options_.chaos_prefix + "." + kind, ordinal).faulted()) {
    file_metrics().io_faults.inc();
    obs::flight_note("storage.io_fault", ordinal);
    return IoError::io;
  }
  return IoError::none;
}

void Env::crash_now() {
  // The kill. Writeback is in-order within a file: each file's on-disk
  // image becomes synced bytes + a deterministic prefix of its unsynced
  // tail (possibly torn mid-record). Prefix lengths are a pure function
  // of (torn_seed, file name, op ordinal), so a crash point replays
  // byte-identically.
  for (File* file : open_files_) {
    if (file->pending_.empty()) continue;
    const std::uint64_t draw =
        splitmix64(options_.torn_seed ^ fnv1a(file->name_) ^ (op_counter_ * 0x9e37ULL));
    const std::size_t keep = static_cast<std::size_t>(draw % (file->pending_.size() + 1));
    (void)file->flush_prefix(keep);
    file->pending_.clear();  // the rest never reached disk
  }
  crashed_ = true;
}

std::unique_ptr<File> Env::open_append(const std::string& name, std::uint64_t logical_size,
                                       IoError* error) {
  if (error != nullptr) *error = IoError::none;
  if (crashed_) {
    if (error != nullptr) *error = IoError::crashed;
    return nullptr;
  }
  int fd;
  do {
    fd = ::open(path_of(name).c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  std::uint64_t disk_size = static_cast<std::uint64_t>(st.st_size);
  if (logical_size < disk_size) {
    // Cut the torn tail (recovery) before any new append lands.
    int rc;
    do {
      rc = ::ftruncate(fd, static_cast<off_t>(logical_size));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd);
      if (error != nullptr) *error = IoError::io;
      return nullptr;
    }
    disk_size = logical_size;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    ::close(fd);
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  auto file = std::unique_ptr<File>(new File(*this, name, fd, disk_size));
  open_files_.push_back(file.get());
  return file;
}

IoResult Env::read_file(const std::string& name, Bytes& out) const {
  out.clear();
  if (crashed_) return IoResult::fail(IoError::crashed);
  int fd;
  do {
    fd = ::open(path_of(name).c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) return IoResult::success();  // absent reads as empty
    return IoResult::fail(IoError::io);
  }
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof buf);
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoResult::fail(IoError::io);
    }
    if (got == 0) break;
    out.insert(out.end(), buf, buf + got);
  }
  ::close(fd);
  return IoResult::success();
}

std::shared_ptr<RandomReadFile> Env::open_read(const std::string& name, IoError* error) const {
  if (error != nullptr) *error = IoError::none;
  int fd;
  do {
    fd = ::open(path_of(name).c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    if (error != nullptr) *error = IoError::io;
    return nullptr;
  }
  return std::shared_ptr<RandomReadFile>(
      new RandomReadFile(name, fd, static_cast<std::uint64_t>(st.st_size)));
}

bool Env::exists(const std::string& name) const {
  struct stat st{};
  return ::stat(path_of(name).c_str(), &st) == 0;
}

std::uint64_t Env::file_size(const std::string& name) const {
  struct stat st{};
  if (::stat(path_of(name).c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

IoResult Env::remove(const std::string& name) {
  if (crashed_) return IoResult::fail(IoError::crashed);
  if (::unlink(path_of(name).c_str()) != 0 && errno != ENOENT) {
    return IoResult::fail(IoError::io);
  }
  return sync_dir();
}

IoResult Env::sync_dir() {
  int fd;
  do {
    fd = ::open(options_.dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return IoResult::fail(IoError::io);
  const bool ok = fsync_retry(fd);
  ::close(fd);
  return ok ? IoResult::success() : IoResult::fail(IoError::io);
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

File::~File() {
  if (!env_.crashed_ && !pending_.empty()) {
    // Clean close: the OS would write these back eventually. No fsync —
    // durability still requires sync() before the handle goes away.
    (void)flush_prefix(pending_.size());
  }
  auto& files = env_.open_files_;
  files.erase(std::remove(files.begin(), files.end(), this), files.end());
  if (fd_ >= 0) ::close(fd_);
}

IoResult File::append(BytesView data) {
  const IoError fault = env_.evaluate_op("write");
  if (fault != IoError::none) return IoResult::fail(fault);
  pending_.insert(pending_.end(), data.begin(), data.end());
  FileMetrics& metrics = file_metrics();
  metrics.appends.inc();
  metrics.append_bytes.inc(data.size());
  return IoResult::success();
}

IoResult File::sync() {
  const IoError fault = env_.evaluate_op("fsync");
  if (fault != IoError::none) return IoResult::fail(fault);
  obs::ScopedTimer timer(file_metrics().fsync_us);
  const IoResult flushed = flush_prefix(pending_.size());
  if (!flushed.ok()) return flushed;
  pending_.clear();
  if (!fsync_retry(fd_)) return IoResult::fail(IoError::io);
  file_metrics().fsyncs.inc();
  return IoResult::success();
}

// ---------------------------------------------------------------------------
// RandomReadFile
// ---------------------------------------------------------------------------

RandomReadFile::~RandomReadFile() {
  if (fd_ >= 0) ::close(fd_);
}

IoResult RandomReadFile::read_at(std::uint64_t offset, std::uint8_t* out, std::size_t n) const {
  while (n > 0) {
    const ssize_t got = ::pread(fd_, out, n, static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return IoResult::fail(IoError::io);
    }
    if (got == 0) return IoResult::fail(IoError::corrupt);  // EOF inside the range
    out += got;
    offset += static_cast<std::uint64_t>(got);
    n -= static_cast<std::size_t>(got);
  }
  return IoResult::success();
}

IoResult File::flush_prefix(std::size_t n) {
  n = std::min(n, pending_.size());
  if (n == 0) return IoResult::success();
  if (!write_fully(fd_, pending_.data(), n)) return IoResult::fail(IoError::io);
  synced_size_ += n;
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
  return IoResult::success();
}

}  // namespace ctwatch::storage
