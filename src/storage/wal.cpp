#include "ctwatch/storage/wal.hpp"

#include "ctwatch/storage/crc32c.hpp"

namespace ctwatch::storage {

namespace {

void put_u32be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint32_t read_u32be(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

}  // namespace

void wal_frame(Bytes& out, RecordType type, BytesView payload) {
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size()) + 1;
  put_u32be(out, length);
  const std::uint8_t type_byte = static_cast<std::uint8_t>(type);
  std::uint32_t crc = crc32c(BytesView{&type_byte, 1});
  crc = crc32c(payload, crc);
  put_u32be(out, crc32c_mask(crc));
  out.push_back(type_byte);
  out.insert(out.end(), payload.begin(), payload.end());
}

IoResult wal_append(File& file, RecordType type, BytesView payload) {
  Bytes frame;
  frame.reserve(9 + payload.size());
  wal_frame(frame, type, payload);
  return file.append(frame);
}

WalScan wal_scan(BytesView data) {
  WalScan scan;
  std::uint64_t pos = 0;
  while (pos + 9 <= data.size()) {
    const std::uint32_t length = read_u32be(data.data() + pos);
    if (length == 0 || length > kMaxRecordBytes) break;              // garbage length
    if (pos + 8 + length > data.size()) break;                       // frame runs past EOF
    const std::uint32_t stored_crc = crc32c_unmask(read_u32be(data.data() + pos + 4));
    const BytesView body = data.subspan(pos + 8, length);
    if (crc32c(body) != stored_crc) break;                           // torn or corrupt
    const std::uint8_t type_byte = body[0];
    if (type_byte != static_cast<std::uint8_t>(RecordType::entry) &&
        type_byte != static_cast<std::uint8_t>(RecordType::seal) &&
        type_byte != static_cast<std::uint8_t>(RecordType::checkpoint)) {
      break;  // unknown type: written by a future format, stop trusting
    }
    scan.records.push_back(
        WalRecord{static_cast<RecordType>(type_byte), body.subspan(1)});
    pos += 8 + length;
  }
  scan.valid_bytes = pos;
  scan.torn_bytes = data.size() - pos;
  return scan;
}

}  // namespace ctwatch::storage
