#include "ctwatch/storage/tile_cache.hpp"

#include <utility>

#include "ctwatch/obs/metrics.hpp"

namespace ctwatch::storage {

namespace {

struct CacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter("storage.tile_cache.hits");
  obs::Counter& misses = obs::Registry::global().counter("storage.tile_cache.misses");
  obs::Counter& evictions = obs::Registry::global().counter("storage.tile_cache.evictions");
  obs::Gauge& bytes = obs::Registry::global().gauge("storage.tile_cache.bytes");
  obs::Gauge& pinned = obs::Registry::global().gauge("storage.tile_cache.pinned");
  obs::LogLinearHistogram& fetch_us =
      obs::Registry::global().latency("storage.tile_cache.fetch_us");
};

CacheMetrics& metrics() {
  static CacheMetrics m;
  return m;
}

constexpr std::uint64_t cache_key(unsigned level, std::uint64_t tile) {
  // Tile indices are < 2^48 for any conceivable tree (256^6 leaves);
  // levels fit the top 16 bits.
  return (static_cast<std::uint64_t>(level) << 48) ^ tile;
}

/// Resident cost of one cached page: the page struct plus its hash array.
std::size_t page_bytes(const TilePage& page) {
  return sizeof(TilePage) + page.leaves.size() * sizeof(crypto::Digest);
}

}  // namespace

std::optional<TileDirectory::Location> TileDirectory::lookup(unsigned level,
                                                             std::uint64_t tile) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level >= levels_.size()) return std::nullopt;
  const auto& row = levels_[level];
  if (tile >= row.size()) return std::nullopt;
  const Location& loc = row[static_cast<std::size_t>(tile)];
  if (loc.count == 0) return std::nullopt;
  return Location{loc.offset - 1, loc.count};
}

void TileDirectory::record(unsigned level, std::uint64_t tile, std::uint64_t offset,
                           std::uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (level >= levels_.size()) levels_.resize(level + 1);
  auto& row = levels_[level];
  if (tile >= row.size()) row.resize(static_cast<std::size_t>(tile) + 1);
  row[static_cast<std::size_t>(tile)] = Location{offset + 1, count};
}

std::uint64_t TileDirectory::pages_at_level(unsigned level) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (level >= levels_.size()) return 0;
  // Pages are recorded densely from tile 0 upward; the row's size is the
  // page count as long as every slot is populated (recovery enforces it).
  return levels_[level].size();
}

unsigned TileDirectory::levels() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(levels_.size());
}

TileCache::TileCache(std::shared_ptr<const RandomReadFile> file,
                     std::shared_ptr<const TileDirectory> directory, TileCacheOptions options)
    : file_(std::move(file)), directory_(std::move(directory)) {
  const unsigned shards = options.shards == 0 ? 1 : options.shards;
  shard_budget_ = options.byte_budget / shards;
  if (shard_budget_ < kTilePageBytes) shard_budget_ = kTilePageBytes;
  shards_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

TileCache::~TileCache() {
  metrics().bytes.add(-static_cast<std::int64_t>(bytes_.load(std::memory_order_relaxed)));
}

std::shared_ptr<const TilePage> TileCache::load(unsigned level, std::uint64_t tile,
                                                const TileDirectory::Location& loc) {
  obs::ScopedTimer timer(metrics().fetch_us);
  Bytes raw(kTilePageBytes);
  const IoResult io = file_->read_at(loc.offset, raw.data(), raw.size());
  if (io.error != IoError::none) return nullptr;
  std::optional<TilePage> page = decode_tile_page(BytesView{raw.data(), raw.size()});
  if (!page.has_value()) return nullptr;
  // The directory promised this exact page; a mismatch means the offset
  // points at some other (valid) page — corruption, not staleness.
  if (page->level != level || page->tile_index != tile || page->count < loc.count) {
    return nullptr;
  }
  return std::make_shared<const TilePage>(std::move(*page));
}

TileCache::PagePtr TileCache::pin(std::shared_ptr<const TilePage> page) {
  if (!page) return nullptr;
  pinned_.fetch_add(1, std::memory_order_relaxed);
  metrics().pinned.add(1);
  std::atomic<std::int64_t>* pinned = &pinned_;
  // Aliasing ctor + custom deleter: the returned pointer shares the
  // page's lifetime but its release decrements the pin gauges.
  return PagePtr(
      std::shared_ptr<void>(nullptr,
                            [page, pinned](void*) {
                              pinned->fetch_sub(1, std::memory_order_relaxed);
                              metrics().pinned.add(-1);
                            }),
      page.get());
}

TileCache::PagePtr TileCache::get(unsigned level, std::uint64_t tile, std::uint64_t min_count) {
  const std::uint64_t key = cache_key(level, tile);
  Shard& shard = *shards_[key % shards_.size()];

  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.pages.find(key);
    if (it != shard.pages.end() && it->second.page->count >= min_count) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      hits_.fetch_add(1, std::memory_order_relaxed);
      metrics().hits.inc();
      return pin(it->second.page);
    }
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics().misses.inc();

  const std::optional<TileDirectory::Location> loc = directory_->lookup(level, tile);
  if (!loc.has_value() || loc->count < min_count) return nullptr;

  // Load outside the shard lock: a pread stall must not serialize every
  // reader hashing to this shard.
  std::shared_ptr<const TilePage> page = load(level, tile, *loc);
  if (!page) return nullptr;

  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.pages.find(key);
  if (it != shard.pages.end()) {
    // Racing loader won, or a stale partial page sits cached: keep the
    // fuller of the two (last-wins semantics carried into memory).
    if (it->second.page->count >= page->count) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.pos);
      return pin(it->second.page);
    }
    const std::size_t old_bytes = page_bytes(*it->second.page);
    shard.bytes -= old_bytes;
    bytes_.fetch_sub(old_bytes, std::memory_order_relaxed);
    metrics().bytes.add(-static_cast<std::int64_t>(old_bytes));
    shard.lru.erase(it->second.pos);
    shard.pages.erase(it);
  }

  const std::size_t cost = page_bytes(*page);
  shard.lru.push_front(key);
  shard.pages.emplace(key, Shard::Entry{page, shard.lru.begin()});
  shard.bytes += cost;
  bytes_.fetch_add(cost, std::memory_order_relaxed);
  metrics().bytes.add(static_cast<std::int64_t>(cost));

  while (shard.bytes > shard_budget_ && shard.lru.size() > 1) {
    const std::uint64_t victim = shard.lru.back();
    auto vit = shard.pages.find(victim);
    const std::size_t victim_bytes = page_bytes(*vit->second.page);
    shard.bytes -= victim_bytes;
    bytes_.fetch_sub(victim_bytes, std::memory_order_relaxed);
    metrics().bytes.add(-static_cast<std::int64_t>(victim_bytes));
    shard.lru.pop_back();
    shard.pages.erase(vit);  // pinned readers keep their shared_ptr alive
    evictions_.fetch_add(1, std::memory_order_relaxed);
    metrics().evictions.inc();
  }

  return pin(page);
}

bool PagedLeafSource::page(unsigned level, std::uint64_t tile, std::uint64_t min_count,
                           ct::TilePageView& out) {
  const std::uint64_t key = cache_key(level, tile);
  auto it = held_.find(key);
  if (it == held_.end() || it->second->count < min_count) {
    TileCache::PagePtr fetched = cache_.get(level, tile, min_count);
    if (!fetched) return false;
    ++fetches_;
    it = held_.insert_or_assign(key, std::move(fetched)).first;
  }
  out.entries = it->second->leaves.data();
  out.count = it->second->count;
  return true;
}

}  // namespace ctwatch::storage
