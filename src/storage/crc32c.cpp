#include "ctwatch/storage/crc32c.hpp"

#include <array>

namespace ctwatch::storage {

namespace {

// Slice-by-8 tables for the reflected Castagnoli polynomial 0x82f63b78.
// Built once at first use; ~8KB, cache-friendly for the record sizes the
// storage layer checksums (tens of bytes to 8KB tile pages).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t[0][i];
      for (std::size_t slice = 1; slice < 8; ++slice) {
        crc = t[0][crc & 0xff] ^ (crc >> 8);
        t[slice][i] = crc;
      }
    }
  }
};

const Tables& tables() {
  static const Tables tables;
  return tables;
}

}  // namespace

std::uint32_t crc32c(BytesView data, std::uint32_t seed) {
  const Tables& tb = tables();
  std::uint32_t crc = ~seed;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                     static_cast<std::uint32_t>(p[1]) << 8 |
                                     static_cast<std::uint32_t>(p[2]) << 16 |
                                     static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[7][low & 0xff] ^ tb.t[6][(low >> 8) & 0xff] ^ tb.t[5][(low >> 16) & 0xff] ^
          tb.t[4][low >> 24] ^ tb.t[3][p[4]] ^ tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ctwatch::storage
