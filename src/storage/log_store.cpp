#include "ctwatch/storage/log_store.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "ctwatch/obs/obs.hpp"
#include "ctwatch/storage/tiles.hpp"
#include "ctwatch/storage/wal.hpp"

namespace ctwatch::storage {

namespace {

constexpr const char* kWalFile = "wal.log";
constexpr const char* kTileFile = "tiles.seg";
constexpr const char* kEntryFile = "entries.seg";
constexpr const char* kManifestFile = "manifest.log";

struct StoreMetrics {
  obs::Counter& commits = obs::Registry::global().counter("storage.commits");
  obs::Counter& committed_entries = obs::Registry::global().counter("storage.committed_entries");
  obs::Counter& checkpoints = obs::Registry::global().counter("storage.checkpoints");
  obs::Counter& recoveries = obs::Registry::global().counter("storage.recoveries");
  obs::Counter& replayed_entries = obs::Registry::global().counter("storage.replayed_entries");
  obs::Counter& discarded_unsealed = obs::Registry::global().counter("storage.discarded_unsealed");
  obs::Counter& failures = obs::Registry::global().counter("storage.failures");
  obs::LogLinearHistogram& commit_us = obs::Registry::global().latency("storage.commit_us");
  obs::LogLinearHistogram& recovery_us = obs::Registry::global().latency("storage.recovery_us");
};

StoreMetrics& store_metrics() {
  static StoreMetrics metrics;
  return metrics;
}

std::uint64_t frame_size(const WalRecord& record) { return 9 + record.payload.size(); }

}  // namespace

LogStore::Open LogStore::open(LogStoreOptions options) {
  Open out;
  Env::Options env_options;
  env_options.dir = options.dir;
  env_options.chaos = options.chaos;
  env_options.chaos_prefix = options.chaos_prefix;
  env_options.torn_seed = options.torn_seed;
  IoError env_error = IoError::none;
  std::unique_ptr<Env> env = Env::open(std::move(env_options), &env_error);
  if (env == nullptr) {
    out.error = env_error;
    out.detail = "cannot open storage directory " + options.dir;
    return out;
  }
  auto store = std::unique_ptr<LogStore>(new LogStore(std::move(options), std::move(env)));
  std::string detail;
  const IoError error = store->recover(detail);
  if (error != IoError::none) {
    out.error = error;
    out.detail = std::move(detail);
    return out;
  }
  store_metrics().recoveries.inc();
  out.store = std::move(store);
  return out;
}

LogStore::~LogStore() {
  if (!closed_) (void)close();
}

IoError LogStore::recover(std::string& detail) {
  const auto started = std::chrono::steady_clock::now();

  // 1. Manifest: newest valid checkpoint record anchors everything else.
  Bytes manifest_img;
  if (!env_->read_file(kManifestFile, manifest_img).ok()) {
    detail = "cannot read manifest";
    return IoError::io;
  }
  const WalScan manifest_scan = wal_scan(manifest_img);
  std::optional<CheckpointRecord> cp;
  std::uint64_t manifest_valid_bytes = 0;
  for (const WalRecord& record : manifest_scan.records) {
    if (record.type != RecordType::checkpoint) break;  // foreign frame: stop trusting
    std::optional<CheckpointRecord> decoded = decode_checkpoint(record.payload);
    if (!decoded.has_value()) break;  // framed but malformed: treat as torn
    cp = std::move(decoded);
    manifest_valid_bytes += frame_size(record);
  }
  recovery_.manifest_torn_bytes = manifest_img.size() - manifest_valid_bytes;

  const std::uint64_t cp_tree_size = cp.has_value() ? cp->sth.tree_size : 0;
  const std::uint64_t cp_tile_bytes = cp.has_value() ? cp->tile_bytes : 0;
  const std::uint64_t cp_entry_bytes = cp.has_value() ? cp->entry_bytes : 0;
  recovery_.checkpoint_tree_size = cp_tree_size;

  // 2a. Tiles: reassemble the checkpointed leaf hashes, CRC-checked.
  Bytes tiles_img;
  if (!env_->read_file(kTileFile, tiles_img).ok()) {
    detail = "cannot read tile segment";
    return IoError::io;
  }
  if (tiles_img.size() < cp_tile_bytes) {
    detail = "tile segment shorter than the checkpoint's coverage";
    return IoError::corrupt;
  }
  const TileLoad tiles = load_tiles(tiles_img, cp_tile_bytes, cp_tree_size);
  if (tiles.error != IoError::none) {
    detail = "tile segment does not cover the checkpointed tree";
    return tiles.error;
  }
  leaves_ = tiles.leaves;
  for (const crypto::Digest& leaf : leaves_) accumulator_.add(leaf);

  // 3. The checkpoint must be cryptographically reproducible from the
  // tiles: fold every leaf, compare roots, compare frontiers.
  if (cp.has_value()) {
    if (accumulator_.root() != cp->sth.root_hash) {
      detail = "checkpointed root hash does not match the tile leaves";
      return IoError::corrupt;
    }
    if (accumulator_.frontier() != cp->frontier) {
      detail = "checkpointed frontier does not match the tile leaves";
      return IoError::corrupt;
    }
    sth_ = cp->sth;
    seal_seq_ = cp->seal_seq;
    last_timestamp_ms_ = cp->last_timestamp_ms;
  }

  // 2b. Entry segment: the integrated entries behind the checkpoint.
  Bytes entries_img;
  if (!env_->read_file(kEntryFile, entries_img).ok()) {
    detail = "cannot read entry segment";
    return IoError::io;
  }
  if (entries_img.size() < cp_entry_bytes) {
    detail = "entry segment shorter than the checkpoint's coverage";
    return IoError::corrupt;
  }
  const WalScan entry_scan =
      wal_scan(BytesView{entries_img.data(), static_cast<std::size_t>(cp_entry_bytes)});
  if (entry_scan.valid_bytes != cp_entry_bytes) {
    detail = "entry segment corrupt inside the checkpointed prefix";
    return IoError::corrupt;
  }
  recovered_entries_.reserve(cp_tree_size);
  for (const WalRecord& record : entry_scan.records) {
    if (record.type != RecordType::entry) {
      detail = "entry segment holds a non-entry frame";
      return IoError::corrupt;
    }
    std::optional<DurableEntry> entry = decode_entry(record.payload);
    if (!entry.has_value()) {
      detail = "entry segment frame does not decode";
      return IoError::corrupt;
    }
    const std::uint64_t index = recovered_entries_.size();
    if (entry->index != index || index >= cp_tree_size || entry->leaf_hash != leaves_[index]) {
      detail = "entry segment disagrees with the tile leaves";
      return IoError::corrupt;
    }
    recovered_entries_.push_back(std::move(*entry));
  }
  if (recovered_entries_.size() != cp_tree_size) {
    detail = "entry segment does not cover the checkpointed tree";
    return IoError::corrupt;
  }

  // 4. WAL replay: every durable seal re-folds its batch and must
  // reproduce the sealed root. Entries after the last durable seal are
  // unsealed submissions — discarded, visibly.
  Bytes wal_img;
  if (!env_->read_file(kWalFile, wal_img).ok()) {
    detail = "cannot read wal";
    return IoError::io;
  }
  const WalScan wal = wal_scan(wal_img);
  std::map<std::uint64_t, DurableEntry> staged;
  std::uint64_t committed_wal_bytes = 0;  // offset after the last applied/stale seal
  std::uint64_t offset = 0;
  for (const WalRecord& record : wal.records) {
    const std::uint64_t offset_after = offset + frame_size(record);
    if (record.type == RecordType::entry) {
      std::optional<DurableEntry> entry = decode_entry(record.payload);
      if (!entry.has_value()) break;  // framed but malformed: stop trusting here
      if (entry->index < accumulator_.size()) {
        ++recovery_.stale_wal_records;  // re-covered by the checkpoint
      } else {
        staged[entry->index] = std::move(*entry);
      }
    } else if (record.type == RecordType::seal) {
      std::optional<SealRecord> seal = decode_seal(record.payload);
      if (!seal.has_value()) break;
      if (seal->sth.tree_size <= accumulator_.size()) {
        ++recovery_.stale_wal_records;  // the checkpoint already covers it
        committed_wal_bytes = offset_after;
      } else {
        Bytes batch_frames;
        std::vector<DurableEntry> batch;
        bool complete = true;
        for (std::uint64_t i = accumulator_.size(); i < seal->sth.tree_size; ++i) {
          auto it = staged.find(i);
          if (it == staged.end()) {
            complete = false;
            break;
          }
          batch.push_back(std::move(it->second));
          staged.erase(it);
        }
        if (!complete) {
          detail = "durable seal references entries the wal does not hold";
          return IoError::corrupt;
        }
        ct::RootAccumulator probe = accumulator_;
        for (const DurableEntry& entry : batch) probe.add(entry.leaf_hash);
        if (probe.root() != seal->sth.root_hash) {
          detail = "durable seal's root hash does not match its entries";
          return IoError::corrupt;
        }
        accumulator_ = std::move(probe);
        for (DurableEntry& entry : batch) {
          leaves_.push_back(entry.leaf_hash);
          last_timestamp_ms_ = std::max(last_timestamp_ms_, entry.timestamp_ms);
          wal_frame(entry_frames_pending_, RecordType::entry, encode_entry(entry));
          recovered_entries_.push_back(std::move(entry));
        }
        last_timestamp_ms_ = std::max(last_timestamp_ms_, seal->sth.timestamp_ms);
        sth_ = seal->sth;
        seal_seq_ = seal->seal_seq;
        ++recovery_.replayed_batches;
        recovery_.replayed_entries += batch.size();
        committed_wal_bytes = offset_after;
      }
    } else {
      break;  // a checkpoint frame inside the wal: foreign, stop trusting
    }
    offset = offset_after;
  }
  recovery_.discarded_unsealed = staged.size();
  recovery_.wal_torn_bytes = wal_img.size() - committed_wal_bytes;

  // 5. Reopen for appending, truncating every torn/unsealed tail so the
  // garbage can never be re-read as data.
  IoError file_error = IoError::none;
  wal_ = env_->open_append(kWalFile, committed_wal_bytes, &file_error);
  if (wal_ == nullptr) {
    detail = "cannot reopen wal";
    return file_error;
  }
  tiles_ = env_->open_append(kTileFile, cp_tile_bytes, &file_error);
  if (tiles_ == nullptr) {
    detail = "cannot reopen tile segment";
    return file_error;
  }
  entries_ = env_->open_append(kEntryFile, cp_entry_bytes, &file_error);
  if (entries_ == nullptr) {
    detail = "cannot reopen entry segment";
    return file_error;
  }
  manifest_ = env_->open_append(kManifestFile, manifest_valid_bytes, &file_error);
  if (manifest_ == nullptr) {
    detail = "cannot reopen manifest";
    return file_error;
  }
  tiles_persisted_leaves_ = cp_tree_size;

  recovery_.opened_fresh =
      manifest_img.empty() && wal_img.empty() && tiles_img.empty() && entries_img.empty();
  recovery_.tree_size = accumulator_.size();
  recovery_.recovery_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            started)
          .count());
  StoreMetrics& metrics = store_metrics();
  metrics.replayed_entries.inc(recovery_.replayed_entries);
  metrics.discarded_unsealed.inc(recovery_.discarded_unsealed);
  metrics.recovery_us.observe(static_cast<double>(recovery_.recovery_us));
  obs::flight_note("storage.recovered", recovery_.tree_size);
  return IoError::none;
}

IoResult LogStore::fail_with(IoError error) {
  if (last_error_ == IoError::none) {
    last_error_ = error;
    store_metrics().failures.inc();
    obs::flight_note("storage.failed", static_cast<std::uint64_t>(error));
  }
  return IoResult::fail(error);
}

IoResult LogStore::commit_batch(const BatchCommit& batch) {
  if (failed()) return IoResult::fail(last_error_);
  if (closed_) return IoResult::fail(IoError::io);
  if (batch.entries.empty()) return IoResult::fail(IoError::corrupt);

  // Validate before writing a byte: the batch must extend the tree
  // contiguously and reproduce the signed root. A mismatch is a caller
  // bug — surfacing it here keeps garbage out of the WAL.
  const std::uint64_t first = accumulator_.size();
  ct::RootAccumulator probe = accumulator_;
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    if (batch.entries[i].index != first + i) return IoResult::fail(IoError::corrupt);
    probe.add(batch.entries[i].leaf_hash);
  }
  if (batch.sth.tree_size != probe.size() || batch.sth.root_hash != probe.root()) {
    return IoResult::fail(IoError::corrupt);
  }

  obs::ScopedTimer timer(store_metrics().commit_us);
  Bytes frames;
  for (const DurableEntry& entry : batch.entries) {
    wal_frame(frames, RecordType::entry, encode_entry(entry));
  }
  const std::size_t entry_frame_bytes = frames.size();
  wal_frame(frames, RecordType::seal,
            encode_seal(SealRecord{first, batch.seal_seq, batch.sth}));
  IoResult io = wal_->append(frames);
  if (!io.ok()) return fail_with(io.error);
  io = wal_->sync();
  if (!io.ok()) return fail_with(io.error);

  // The batch is durable; apply it to the in-memory image. The entry
  // frames (not the seal) also queue for the entry segment, which the
  // next checkpoint appends and fsyncs.
  entry_frames_pending_.insert(entry_frames_pending_.end(), frames.begin(),
                               frames.begin() + static_cast<std::ptrdiff_t>(entry_frame_bytes));
  for (const DurableEntry& entry : batch.entries) {
    leaves_.push_back(entry.leaf_hash);
    last_timestamp_ms_ = std::max(last_timestamp_ms_, entry.timestamp_ms);
  }
  accumulator_ = std::move(probe);
  sth_ = batch.sth;
  seal_seq_ = batch.seal_seq;
  last_timestamp_ms_ = std::max(last_timestamp_ms_, batch.sth.timestamp_ms);
  StoreMetrics& metrics = store_metrics();
  metrics.commits.inc();
  metrics.committed_entries.inc(batch.entries.size());

  ++batches_since_checkpoint_;
  if (options_.checkpoint_interval_batches != 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_interval_batches) {
    // A checkpoint failure cannot un-commit the batch: report ok, but the
    // store is poisoned for every later write.
    (void)checkpoint();
  }
  return IoResult::success();
}

IoResult LogStore::write_dirty_tiles() {
  const std::uint64_t tree = accumulator_.size();
  if (tree <= tiles_persisted_leaves_) return IoResult::success();
  Bytes page;
  for (std::uint64_t t = tiles_persisted_leaves_ / kTileLeaves; t * kTileLeaves < tree; ++t) {
    const std::uint64_t begin = t * kTileLeaves;
    const std::uint64_t count = std::min<std::uint64_t>(kTileLeaves, tree - begin);
    page.clear();
    encode_tile_page(page, t, leaves_.data() + begin, count);
    const IoResult io = tiles_->append(page);
    if (!io.ok()) return io;
  }
  return IoResult::success();
}

IoResult LogStore::checkpoint() {
  if (failed()) return IoResult::fail(last_error_);
  if (closed_) return IoResult::fail(IoError::io);
  if (!sth_.has_value()) return IoResult::success();  // nothing to anchor yet
  if (batches_since_checkpoint_ == 0 && entry_frames_pending_.empty() &&
      accumulator_.size() == tiles_persisted_leaves_) {
    return IoResult::success();  // the manifest already covers this state
  }

  // Segments first, fsync'd before the manifest frame that references
  // them; the WAL is reset only after the manifest frame is durable.
  // Every crash window between these steps recovers: an older manifest
  // anchor plus the still-present WAL reproduce the same tree.
  IoResult io = write_dirty_tiles();
  if (!io.ok()) return fail_with(io.error);
  if (!entry_frames_pending_.empty()) {
    io = entries_->append(entry_frames_pending_);
    if (!io.ok()) return fail_with(io.error);
  }
  io = tiles_->sync();
  if (!io.ok()) return fail_with(io.error);
  io = entries_->sync();
  if (!io.ok()) return fail_with(io.error);

  CheckpointRecord record;
  record.sth = *sth_;
  record.frontier = accumulator_.frontier();
  record.seal_seq = seal_seq_;
  record.last_timestamp_ms = last_timestamp_ms_;
  record.tile_bytes = tiles_->size();
  record.entry_bytes = entries_->size();
  io = wal_append(*manifest_, RecordType::checkpoint, encode_checkpoint(record));
  if (!io.ok()) return fail_with(io.error);
  io = manifest_->sync();
  if (!io.ok()) return fail_with(io.error);

  // The wal's batches are all behind the manifest now: reset it.
  wal_.reset();
  io = env_->remove(kWalFile);
  if (!io.ok()) return fail_with(io.error);
  IoError file_error = IoError::none;
  wal_ = env_->open_append(kWalFile, 0, &file_error);
  if (wal_ == nullptr) return fail_with(file_error);

  tiles_persisted_leaves_ = accumulator_.size();
  entry_frames_pending_.clear();
  batches_since_checkpoint_ = 0;
  store_metrics().checkpoints.inc();
  return IoResult::success();
}

IoResult LogStore::close() {
  if (closed_) return IoResult::success();
  IoResult io = IoResult::success();
  if (!failed()) io = checkpoint();
  closed_ = true;
  wal_.reset();
  tiles_.reset();
  entries_.reset();
  manifest_.reset();
  return io;
}

}  // namespace ctwatch::storage
