#include "ctwatch/storage/log_store.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "ctwatch/ct/tiled.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/storage/tiles.hpp"
#include "ctwatch/storage/wal.hpp"

namespace ctwatch::storage {

namespace {

constexpr const char* kWalFile = "wal.log";
constexpr const char* kTileFile = "tiles.seg";
constexpr const char* kEntryFile = "entries.seg";
constexpr const char* kManifestFile = "manifest.log";

/// Highest tile level that can hold a full page: full pages exist at
/// level L only once the tree reaches 256^(L+1) leaves, and 256^8 > 2^64.
constexpr unsigned kMaxTileLevel = 6;

struct StoreMetrics {
  obs::Counter& commits = obs::Registry::global().counter("storage.commits");
  obs::Counter& committed_entries = obs::Registry::global().counter("storage.committed_entries");
  obs::Counter& checkpoints = obs::Registry::global().counter("storage.checkpoints");
  obs::Counter& recoveries = obs::Registry::global().counter("storage.recoveries");
  obs::Counter& replayed_entries = obs::Registry::global().counter("storage.replayed_entries");
  obs::Counter& discarded_unsealed = obs::Registry::global().counter("storage.discarded_unsealed");
  obs::Counter& failures = obs::Registry::global().counter("storage.failures");
  obs::LogLinearHistogram& commit_us = obs::Registry::global().latency("storage.commit_us");
  obs::LogLinearHistogram& recovery_us = obs::Registry::global().latency("storage.recovery_us");
};

StoreMetrics& store_metrics() {
  static StoreMetrics metrics;
  return metrics;
}

std::uint64_t frame_size(const WalRecord& record) { return 9 + record.payload.size(); }

/// Full (256-entry) pages that must exist at `level` for a tree of
/// `tree_size` leaves: floor(tree_size / 256^(level+1)).
std::uint64_t full_pages_at(unsigned level, std::uint64_t tree_size) {
  return tree_size >> (8 * (level + 1));
}

}  // namespace

LogStore::Open LogStore::open(LogStoreOptions options) {
  Open out;
  Env::Options env_options;
  env_options.dir = options.dir;
  env_options.chaos = options.chaos;
  env_options.chaos_prefix = options.chaos_prefix;
  env_options.torn_seed = options.torn_seed;
  IoError env_error = IoError::none;
  std::unique_ptr<Env> env = Env::open(std::move(env_options), &env_error);
  if (env == nullptr) {
    out.error = env_error;
    out.detail = "cannot open storage directory " + options.dir;
    return out;
  }
  auto store = std::unique_ptr<LogStore>(new LogStore(std::move(options), std::move(env)));
  std::string detail;
  const IoError error = store->recover(detail);
  if (error != IoError::none) {
    out.error = error;
    out.detail = std::move(detail);
    return out;
  }
  store_metrics().recoveries.inc();
  out.store = std::move(store);
  return out;
}

LogStore::~LogStore() {
  if (!closed_) (void)close();
}

IoError LogStore::recover(std::string& detail) {
  const auto started = std::chrono::steady_clock::now();

  // 1. Manifest: newest valid checkpoint record anchors everything else.
  Bytes manifest_img;
  if (!env_->read_file(kManifestFile, manifest_img).ok()) {
    detail = "cannot read manifest";
    return IoError::io;
  }
  const WalScan manifest_scan = wal_scan(manifest_img);
  std::optional<CheckpointRecord> cp;
  std::uint64_t manifest_valid_bytes = 0;
  for (const WalRecord& record : manifest_scan.records) {
    if (record.type != RecordType::checkpoint) break;  // foreign frame: stop trusting
    std::optional<CheckpointRecord> decoded = decode_checkpoint(record.payload);
    if (!decoded.has_value()) break;  // framed but malformed: treat as torn
    cp = std::move(decoded);
    manifest_valid_bytes += frame_size(record);
  }
  recovery_.manifest_torn_bytes = manifest_img.size() - manifest_valid_bytes;

  const std::uint64_t cp_tree_size = cp.has_value() ? cp->sth.tree_size : 0;
  const std::uint64_t cp_tile_bytes = cp.has_value() ? cp->tile_bytes : 0;
  const std::uint64_t cp_entry_bytes = cp.has_value() ? cp->entry_bytes : 0;
  recovery_.checkpoint_tree_size = cp_tree_size;

  const std::uint64_t tile_disk_bytes = env_->file_size(kTileFile);
  const std::uint64_t entry_disk_bytes = env_->file_size(kEntryFile);
  if (tile_disk_bytes < cp_tile_bytes) {
    detail = "tile segment shorter than the checkpoint's coverage";
    return IoError::corrupt;
  }
  if (entry_disk_bytes < cp_entry_bytes) {
    detail = "entry segment shorter than the checkpoint's coverage";
    return IoError::corrupt;
  }

  // 2. Tile directory: one streaming CRC scan of the checkpointed prefix
  // (garbage past cp_tile_bytes is never parsed). Later pages supersede
  // earlier ones for the same (level, tile).
  directory_ = std::make_shared<TileDirectory>();
  const std::uint64_t tiles_needed = (cp_tree_size + kTileLeaves - 1) / kTileLeaves;
  std::shared_ptr<RandomReadFile> tile_scan;
  if (cp_tile_bytes > 0) {
    tile_scan = env_->open_read(kTileFile);
    if (tile_scan == nullptr) {
      detail = "cannot read tile segment";
      return IoError::io;
    }
    constexpr std::uint64_t kScanPages = 128;
    Bytes chunk;
    for (std::uint64_t pos = 0; pos + kTilePageBytes <= cp_tile_bytes;) {
      const std::uint64_t pages =
          std::min<std::uint64_t>(kScanPages, (cp_tile_bytes - pos) / kTilePageBytes);
      chunk.resize(static_cast<std::size_t>(pages * kTilePageBytes));
      if (!tile_scan->read_at(pos, chunk.data(), chunk.size()).ok()) {
        detail = "cannot read tile segment";
        return IoError::io;
      }
      for (std::uint64_t p = 0; p < pages; ++p) {
        ++recovery_.tile_pages_scanned;
        const std::optional<TilePage> page =
            decode_tile_page(BytesView{chunk.data() + p * kTilePageBytes, kTilePageBytes});
        if (!page.has_value()) {
          ++recovery_.tile_pages_invalid;
          continue;  // fixed stride: one bad page never desynchronizes the rest
        }
        const std::uint64_t offset = pos + p * kTilePageBytes;
        if (page->level == 0) {
          if (page->tile_index >= tiles_needed) continue;  // beyond this checkpoint's tree
        } else {
          // Upper pages are only ever written full; anything else here is
          // stale garbage the last-wins rule will never need.
          if (page->level > kMaxTileLevel || page->count != kTileLeaves) continue;
          if (page->tile_index >= full_pages_at(page->level, cp_tree_size)) continue;
        }
        directory_->record(page->level, page->tile_index, offset,
                           static_cast<std::uint32_t>(page->count));
      }
      pos += pages * kTilePageBytes;
    }
  }

  // Strict coverage: every level-0 tile below the checkpointed size, and
  // every full upper page the writer's cascade must have produced.
  // Checkpointed pages were fsync'd before the manifest record that
  // references them, so a crash cannot produce a gap — only disk damage.
  for (std::uint64_t t = 0; t < tiles_needed; ++t) {
    const std::uint64_t want = std::min<std::uint64_t>(kTileLeaves, cp_tree_size - t * kTileLeaves);
    const std::optional<TileDirectory::Location> loc = directory_->lookup(0, t);
    if (!loc.has_value() || loc->count < want) {
      detail = "tile segment does not cover the checkpointed tree";
      return IoError::corrupt;
    }
  }
  for (unsigned level = 1; level <= kMaxTileLevel; ++level) {
    const std::uint64_t full = full_pages_at(level, cp_tree_size);
    if (full == 0) break;
    for (std::uint64_t t = 0; t < full; ++t) {
      const std::optional<TileDirectory::Location> loc = directory_->lookup(level, t);
      if (!loc.has_value() || loc->count != kTileLeaves) {
        detail = "tile segment is missing upper-level pages";
        return IoError::corrupt;
      }
    }
  }

  // One-page loader for the verification passes below.
  Bytes page_buf(kTilePageBytes);
  const auto load_page = [&](unsigned level, std::uint64_t tile) -> std::optional<TilePage> {
    const std::optional<TileDirectory::Location> loc = directory_->lookup(level, tile);
    if (!loc.has_value()) return std::nullopt;
    if (!tile_scan->read_at(loc->offset, page_buf.data(), page_buf.size()).ok()) {
      return std::nullopt;
    }
    std::optional<TilePage> page = decode_tile_page(page_buf);
    if (page.has_value() && (page->level != level || page->tile_index != tile)) return std::nullopt;
    return page;
  };

  // 3. Cryptographic verification + cascade-state rebuild.
  upper_pending_.assign(kMaxTileLevel + 2, {});
  upper_written_.assign(kMaxTileLevel + 2, 0);
  if (options_.recovery_verify == LogStoreOptions::Verify::full) {
    // Stream every level-0 page once: fold all leaves into the
    // accumulator, and push each full tile's root through the same
    // cascade the writer runs, comparing against the persisted upper
    // pages as they complete. O(page) memory, O(n) time.
    for (std::uint64_t t = 0; t < tiles_needed; ++t) {
      const std::optional<TilePage> page = load_page(0, t);
      const std::uint64_t want =
          std::min<std::uint64_t>(kTileLeaves, cp_tree_size - t * kTileLeaves);
      if (!page.has_value() || page->count < want) {
        detail = "tile segment does not cover the checkpointed tree";
        return IoError::corrupt;
      }
      for (std::uint64_t i = 0; i < want; ++i) accumulator_.add(page->leaves[i]);
      if (want < kTileLeaves) continue;
      crypto::Digest carry = ct::fold_perfect(page->leaves.data(), kTileLeaves);
      for (unsigned level = 1;; ++level) {
        upper_pending_[level].push_back(carry);
        if (upper_pending_[level].size() < kTileLeaves) break;
        const std::optional<TilePage> upper = load_page(level, upper_written_[level]);
        if (!upper.has_value() || upper->leaves != upper_pending_[level]) {
          detail = "upper tile page disagrees with the leaves below it";
          return IoError::corrupt;
        }
        carry = ct::fold_perfect(upper_pending_[level].data(), kTileLeaves);
        upper_pending_[level].clear();
        ++upper_written_[level];
      }
    }
    if (cp.has_value()) {
      if (accumulator_.root() != cp->sth.root_hash) {
        detail = "checkpointed root hash does not match the tile leaves";
        return IoError::corrupt;
      }
      if (accumulator_.frontier() != cp->frontier) {
        detail = "checkpointed frontier does not match the tile leaves";
        return IoError::corrupt;
      }
    }
  } else if (cp.has_value()) {
    // Structural: restore the frontier in O(log n) after checking its
    // shape reproduces the checkpointed root. Page CRCs still vouch for
    // the tiles; the full refold was this checkpoint writer's job.
    std::optional<ct::RootAccumulator> restored =
        ct::RootAccumulator::from_frontier(cp->frontier, cp_tree_size);
    if (!restored.has_value()) {
      detail = "checkpointed frontier has the wrong shape";
      return IoError::corrupt;
    }
    accumulator_ = std::move(*restored);
    if (accumulator_.root() != cp->sth.root_hash) {
      detail = "checkpointed root hash does not match its frontier";
      return IoError::corrupt;
    }
    // Rebuild the cascade's partial upper entries from the level below —
    // at most 255 page folds per level.
    for (unsigned level = 1; level <= kMaxTileLevel + 1; ++level) {
      const std::uint64_t entries_here = cp_tree_size >> (8 * level);
      if (entries_here == 0) break;
      const std::uint64_t full = entries_here >> 8;
      upper_written_[level] = full;
      for (std::uint64_t i = full * kTileLeaves; i < entries_here; ++i) {
        const std::optional<TilePage> below = load_page(level - 1, i);
        if (!below.has_value() || below->count != kTileLeaves) {
          detail = "tile segment does not cover the checkpointed tree";
          return IoError::corrupt;
        }
        upper_pending_[level].push_back(ct::fold_perfect(below->leaves.data(), kTileLeaves));
      }
    }
  }
  if (cp.has_value()) {
    sth_ = cp->sth;
    seal_seq_ = cp->seal_seq;
    last_timestamp_ms_ = cp->last_timestamp_ms;
  }

  // Resident tail seed: the leaves of the last, possibly partial tile.
  tail_base_ = cp_tree_size / kTileLeaves * kTileLeaves;
  if (cp_tree_size > tail_base_) {
    const std::optional<TilePage> tail_page = load_page(0, cp_tree_size / kTileLeaves);
    if (!tail_page.has_value() || tail_page->count < cp_tree_size - tail_base_) {
      detail = "tile segment does not cover the checkpointed tree";
      return IoError::corrupt;
    }
    tail_leaves_.assign(tail_page->leaves.begin(),
                        tail_page->leaves.begin() +
                            static_cast<std::ptrdiff_t>(cp_tree_size - tail_base_));
  }

  // 4. Entry segment: stream the checkpointed prefix, CRC-checking every
  // frame and seeding one index mark per stride. Full mode also decodes
  // each record and cross-checks it against the tile leaves.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entry_marks;
  std::uint64_t entry_frames = 0;
  if (cp_entry_bytes > 0) {
    const std::shared_ptr<RandomReadFile> entry_scan = env_->open_read(kEntryFile);
    if (entry_scan == nullptr) {
      detail = "cannot read entry segment";
      return IoError::io;
    }
    FrameCursor cursor(*entry_scan, 0, cp_entry_bytes);
    RecordType type{};
    Bytes payload;
    std::optional<TilePage> cross_page;  // current level-0 page, full mode
    for (;;) {
      const std::uint64_t at = cursor.offset();
      const FrameCursor::Status status = cursor.next(type, payload);
      if (status == FrameCursor::Status::end) break;
      if (status == FrameCursor::Status::io) {
        detail = "cannot read entry segment";
        return IoError::io;
      }
      if (status == FrameCursor::Status::corrupt) {
        detail = "entry segment corrupt inside the checkpointed prefix";
        return IoError::corrupt;
      }
      if (type != RecordType::entry) {
        detail = "entry segment holds a non-entry frame";
        return IoError::corrupt;
      }
      if (entry_frames >= cp_tree_size) {
        detail = "entry segment disagrees with the tile leaves";
        return IoError::corrupt;
      }
      if (entry_frames % options_.entry_index_stride == 0) {
        entry_marks.emplace_back(entry_frames, at);
      }
      if (options_.recovery_verify == LogStoreOptions::Verify::full) {
        const std::optional<DurableEntry> entry =
            decode_entry(BytesView{payload.data(), payload.size()});
        if (!entry.has_value()) {
          detail = "entry segment frame does not decode";
          return IoError::corrupt;
        }
        crypto::Digest leaf;
        if (entry_frames >= tail_base_) {
          leaf = tail_leaves_[static_cast<std::size_t>(entry_frames - tail_base_)];
        } else {
          const std::uint64_t tile = entry_frames / kTileLeaves;
          if (!cross_page.has_value() || cross_page->tile_index != tile) {
            cross_page = load_page(0, tile);
            if (!cross_page.has_value()) {
              detail = "tile segment does not cover the checkpointed tree";
              return IoError::corrupt;
            }
          }
          leaf = cross_page->leaves[static_cast<std::size_t>(entry_frames % kTileLeaves)];
        }
        if (entry->index != entry_frames || entry->leaf_hash != leaf) {
          detail = "entry segment disagrees with the tile leaves";
          return IoError::corrupt;
        }
      }
      ++entry_frames;
    }
  }
  if (entry_frames != cp_tree_size) {
    detail = "entry segment does not cover the checkpointed tree";
    return IoError::corrupt;
  }

  // 5. WAL replay: every durable seal re-folds its batch and must
  // reproduce the sealed root. Entries after the last durable seal are
  // unsealed submissions — discarded, visibly. O(WAL tail) memory: this
  // is the only part of recovery that retains per-entry state.
  Bytes wal_img;
  if (!env_->read_file(kWalFile, wal_img).ok()) {
    detail = "cannot read wal";
    return IoError::io;
  }
  const WalScan wal = wal_scan(wal_img);
  std::map<std::uint64_t, DurableEntry> staged;
  std::uint64_t committed_wal_bytes = 0;  // offset after the last applied/stale seal
  std::uint64_t offset = 0;
  for (const WalRecord& record : wal.records) {
    const std::uint64_t offset_after = offset + frame_size(record);
    if (record.type == RecordType::entry) {
      std::optional<DurableEntry> entry = decode_entry(record.payload);
      if (!entry.has_value()) break;  // framed but malformed: stop trusting here
      if (entry->index < accumulator_.size()) {
        ++recovery_.stale_wal_records;  // re-covered by the checkpoint
      } else {
        staged[entry->index] = std::move(*entry);
      }
    } else if (record.type == RecordType::seal) {
      std::optional<SealRecord> seal = decode_seal(record.payload);
      if (!seal.has_value()) break;
      if (seal->sth.tree_size <= accumulator_.size()) {
        ++recovery_.stale_wal_records;  // the checkpoint already covers it
        committed_wal_bytes = offset_after;
      } else {
        std::vector<DurableEntry> batch;
        bool complete = true;
        for (std::uint64_t i = accumulator_.size(); i < seal->sth.tree_size; ++i) {
          auto it = staged.find(i);
          if (it == staged.end()) {
            complete = false;
            break;
          }
          batch.push_back(std::move(it->second));
          staged.erase(it);
        }
        if (!complete) {
          detail = "durable seal references entries the wal does not hold";
          return IoError::corrupt;
        }
        ct::RootAccumulator probe = accumulator_;
        for (const DurableEntry& entry : batch) probe.add(entry.leaf_hash);
        if (probe.root() != seal->sth.root_hash) {
          detail = "durable seal's root hash does not match its entries";
          return IoError::corrupt;
        }
        accumulator_ = std::move(probe);
        for (DurableEntry& entry : batch) {
          tail_leaves_.push_back(entry.leaf_hash);
          last_timestamp_ms_ = std::max(last_timestamp_ms_, entry.timestamp_ms);
          if (entry.index % options_.entry_index_stride == 0) {
            pending_entry_marks_.emplace_back(entry.index, entry_frames_pending_.size());
          }
          wal_frame(entry_frames_pending_, RecordType::entry, encode_entry(entry));
          wal_tail_entries_.push_back(std::move(entry));
        }
        last_timestamp_ms_ = std::max(last_timestamp_ms_, seal->sth.timestamp_ms);
        sth_ = seal->sth;
        seal_seq_ = seal->seal_seq;
        ++recovery_.replayed_batches;
        recovery_.replayed_entries += batch.size();
        committed_wal_bytes = offset_after;
      }
    } else {
      break;  // a checkpoint frame inside the wal: foreign, stop trusting
    }
    offset = offset_after;
  }
  recovery_.discarded_unsealed = staged.size();
  recovery_.wal_torn_bytes = wal_img.size() - committed_wal_bytes;

  // 6. Reopen for appending, truncating every torn/unsealed tail so the
  // garbage can never be re-read as data.
  IoError file_error = IoError::none;
  wal_ = env_->open_append(kWalFile, committed_wal_bytes, &file_error);
  if (wal_ == nullptr) {
    detail = "cannot reopen wal";
    return file_error;
  }
  tiles_ = env_->open_append(kTileFile, cp_tile_bytes, &file_error);
  if (tiles_ == nullptr) {
    detail = "cannot reopen tile segment";
    return file_error;
  }
  entries_ = env_->open_append(kEntryFile, cp_entry_bytes, &file_error);
  if (entries_ == nullptr) {
    detail = "cannot reopen entry segment";
    return file_error;
  }
  manifest_ = env_->open_append(kManifestFile, manifest_valid_bytes, &file_error);
  if (manifest_ == nullptr) {
    detail = "cannot reopen manifest";
    return file_error;
  }
  tiles_persisted_leaves_ = cp_tree_size;

  // 7. Stand up the read path (the append opens above created any
  // missing files, so these handles always resolve).
  tile_read_ = env_->open_read(kTileFile, &file_error);
  if (tile_read_ == nullptr) {
    detail = "cannot open tile segment for reading";
    return file_error;
  }
  entry_read_ = env_->open_read(kEntryFile, &file_error);
  if (entry_read_ == nullptr) {
    detail = "cannot open entry segment for reading";
    return file_error;
  }
  cache_ = std::make_unique<TileCache>(
      tile_read_, directory_,
      TileCacheOptions{options_.tile_cache_bytes, options_.tile_cache_shards});
  reader_ = std::make_unique<SegmentReader>(entry_read_, options_.entry_index_stride);
  for (const auto& [index, mark_offset] : entry_marks) reader_->add_mark(index, mark_offset);
  reader_->set_coverage(cp_tree_size, cp_entry_bytes);
  directory_->set_paged_leaves(cp_tree_size);

  recovery_.opened_fresh = manifest_img.empty() && wal_img.empty() && tile_disk_bytes == 0 &&
                           entry_disk_bytes == 0;
  recovery_.tree_size = accumulator_.size();
  recovery_.recovery_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            started)
          .count());
  StoreMetrics& metrics = store_metrics();
  metrics.replayed_entries.inc(recovery_.replayed_entries);
  metrics.discarded_unsealed.inc(recovery_.discarded_unsealed);
  metrics.recovery_us.observe(static_cast<double>(recovery_.recovery_us));
  obs::flight_note("storage.recovered", recovery_.tree_size);
  return IoError::none;
}

IoResult LogStore::fail_with(IoError error) {
  if (last_error_ == IoError::none) {
    last_error_ = error;
    store_metrics().failures.inc();
    obs::flight_note("storage.failed", static_cast<std::uint64_t>(error));
  }
  return IoResult::fail(error);
}

IoResult LogStore::commit_batch(const BatchCommit& batch) {
  if (failed()) return IoResult::fail(last_error_);
  if (closed_) return IoResult::fail(IoError::io);
  if (batch.entries.empty()) return IoResult::fail(IoError::corrupt);

  // Validate before writing a byte: the batch must extend the tree
  // contiguously and reproduce the signed root. A mismatch is a caller
  // bug — surfacing it here keeps garbage out of the WAL.
  const std::uint64_t first = accumulator_.size();
  ct::RootAccumulator probe = accumulator_;
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    if (batch.entries[i].index != first + i) return IoResult::fail(IoError::corrupt);
    probe.add(batch.entries[i].leaf_hash);
  }
  if (batch.sth.tree_size != probe.size() || batch.sth.root_hash != probe.root()) {
    return IoResult::fail(IoError::corrupt);
  }

  obs::ScopedTimer timer(store_metrics().commit_us);
  Bytes frames;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> marks;  // (index, rel offset)
  for (const DurableEntry& entry : batch.entries) {
    if (entry.index % options_.entry_index_stride == 0) {
      marks.emplace_back(entry.index, frames.size());
    }
    wal_frame(frames, RecordType::entry, encode_entry(entry));
  }
  const std::size_t entry_frame_bytes = frames.size();
  wal_frame(frames, RecordType::seal,
            encode_seal(SealRecord{first, batch.seal_seq, batch.sth}));
  IoResult io = wal_->append(frames);
  if (!io.ok()) return fail_with(io.error);
  io = wal_->sync();
  if (!io.ok()) return fail_with(io.error);

  // The batch is durable; apply it to the in-memory image. The entry
  // frames (not the seal) also queue for the entry segment, which the
  // next checkpoint appends and fsyncs.
  const std::size_t rel_base = entry_frames_pending_.size();
  entry_frames_pending_.insert(entry_frames_pending_.end(), frames.begin(),
                               frames.begin() + static_cast<std::ptrdiff_t>(entry_frame_bytes));
  for (const auto& [index, rel] : marks) pending_entry_marks_.emplace_back(index, rel_base + rel);
  for (const DurableEntry& entry : batch.entries) {
    tail_leaves_.push_back(entry.leaf_hash);
    last_timestamp_ms_ = std::max(last_timestamp_ms_, entry.timestamp_ms);
  }
  accumulator_ = std::move(probe);
  sth_ = batch.sth;
  seal_seq_ = batch.seal_seq;
  last_timestamp_ms_ = std::max(last_timestamp_ms_, batch.sth.timestamp_ms);
  StoreMetrics& metrics = store_metrics();
  metrics.commits.inc();
  metrics.committed_entries.inc(batch.entries.size());

  ++batches_since_checkpoint_;
  if (options_.checkpoint_interval_batches != 0 &&
      batches_since_checkpoint_ >= options_.checkpoint_interval_batches) {
    // A checkpoint failure cannot un-commit the batch: report ok, but the
    // store is poisoned for every later write.
    (void)checkpoint();
  }
  return IoResult::success();
}

IoResult LogStore::cascade_entry(unsigned level, const crypto::Digest& digest,
                                 std::vector<PendingTile>& written, Bytes& page) {
  crypto::Digest carry = digest;
  for (unsigned current = level;; ++current) {
    if (upper_pending_.size() <= current) upper_pending_.resize(current + 1);
    if (upper_written_.size() <= current) upper_written_.resize(current + 1, 0);
    upper_pending_[current].push_back(carry);
    if (upper_pending_[current].size() < kTileLeaves) return IoResult::success();
    const std::uint64_t tile = upper_written_[current];
    page.clear();
    encode_tile_page(page, tile, upper_pending_[current].data(), kTileLeaves, current);
    const std::uint64_t at = tiles_->size();
    const IoResult io = tiles_->append(page);
    if (!io.ok()) return io;
    written.push_back(PendingTile{current, tile, at, static_cast<std::uint32_t>(kTileLeaves)});
    carry = ct::fold_perfect(upper_pending_[current].data(), kTileLeaves);
    upper_pending_[current].clear();
    ++upper_written_[current];
  }
}

IoResult LogStore::write_dirty_tiles(std::vector<PendingTile>& written) {
  const std::uint64_t tree = accumulator_.size();
  if (tree <= tiles_persisted_leaves_) return IoResult::success();
  Bytes page;
  for (std::uint64_t t = tiles_persisted_leaves_ / kTileLeaves; t * kTileLeaves < tree; ++t) {
    const std::uint64_t begin = t * kTileLeaves;
    const std::uint64_t count = std::min<std::uint64_t>(kTileLeaves, tree - begin);
    const crypto::Digest* src =
        tail_leaves_.data() + static_cast<std::ptrdiff_t>(begin - tail_base_);
    page.clear();
    encode_tile_page(page, t, src, count);
    const std::uint64_t at = tiles_->size();
    const IoResult io = tiles_->append(page);
    if (!io.ok()) return io;
    written.push_back(PendingTile{0, t, at, static_cast<std::uint32_t>(count)});
    if (count == kTileLeaves) {
      // The tile just became full: its root enters the upper cascade
      // (each full tile cascades exactly once across the store's life).
      const IoResult cascaded = cascade_entry(1, ct::fold_perfect(src, kTileLeaves), written, page);
      if (!cascaded.ok()) return cascaded;
    }
  }
  return IoResult::success();
}

IoResult LogStore::checkpoint() {
  if (failed()) return IoResult::fail(last_error_);
  if (closed_) return IoResult::fail(IoError::io);
  if (!sth_.has_value()) return IoResult::success();  // nothing to anchor yet
  if (batches_since_checkpoint_ == 0 && entry_frames_pending_.empty() &&
      accumulator_.size() == tiles_persisted_leaves_) {
    return IoResult::success();  // the manifest already covers this state
  }

  // Segments first, fsync'd before the manifest frame that references
  // them; the WAL is reset only after the manifest frame is durable.
  // Every crash window between these steps recovers: an older manifest
  // anchor plus the still-present WAL reproduce the same tree.
  std::vector<PendingTile> tiles_written;
  IoResult io = write_dirty_tiles(tiles_written);
  if (!io.ok()) return fail_with(io.error);
  const std::uint64_t entry_seg_base = entries_->size();
  if (!entry_frames_pending_.empty()) {
    io = entries_->append(entry_frames_pending_);
    if (!io.ok()) return fail_with(io.error);
  }
  io = tiles_->sync();
  if (!io.ok()) return fail_with(io.error);
  io = entries_->sync();
  if (!io.ok()) return fail_with(io.error);

  CheckpointRecord record;
  record.sth = *sth_;
  record.frontier = accumulator_.frontier();
  record.seal_seq = seal_seq_;
  record.last_timestamp_ms = last_timestamp_ms_;
  record.tile_bytes = tiles_->size();
  record.entry_bytes = entries_->size();
  io = wal_append(*manifest_, RecordType::checkpoint, encode_checkpoint(record));
  if (!io.ok()) return fail_with(io.error);
  io = manifest_->sync();
  if (!io.ok()) return fail_with(io.error);

  // The wal's batches are all behind the manifest now: reset it.
  wal_.reset();
  io = env_->remove(kWalFile);
  if (!io.ok()) return fail_with(io.error);
  IoError file_error = IoError::none;
  wal_ = env_->open_append(kWalFile, 0, &file_error);
  if (wal_ == nullptr) return fail_with(file_error);

  // Publish the read-path state only now, when every byte it names is
  // durable: the directory serves preads, so it must never point at
  // bytes still in the writer's buffer.
  for (const PendingTile& tile : tiles_written) {
    directory_->record(tile.level, tile.tile, tile.offset, tile.count);
  }
  for (const auto& [index, rel] : pending_entry_marks_) {
    reader_->add_mark(index, entry_seg_base + rel);
  }
  reader_->set_coverage(accumulator_.size(), entries_->size());
  directory_->set_paged_leaves(accumulator_.size());
  tiles_persisted_leaves_ = accumulator_.size();

  // Trim the resident tail to the last (possibly partial) tile: leaves
  // covered by fsync'd pages never also live resident.
  const std::uint64_t new_base = tiles_persisted_leaves_ / kTileLeaves * kTileLeaves;
  if (new_base > tail_base_) {
    tail_leaves_.erase(tail_leaves_.begin(),
                       tail_leaves_.begin() + static_cast<std::ptrdiff_t>(new_base - tail_base_));
    tail_base_ = new_base;
  }
  wal_tail_entries_.clear();
  wal_tail_entries_.shrink_to_fit();
  entry_frames_pending_.clear();
  pending_entry_marks_.clear();
  batches_since_checkpoint_ = 0;
  store_metrics().checkpoints.inc();
  return IoResult::success();
}

IoError LogStore::stream_paged_leaves(
    std::uint64_t begin, std::uint64_t end,
    const std::function<bool(std::uint64_t, const crypto::Digest*, std::uint64_t)>& fn) {
  end = std::min(end, paged_leaves());
  for (std::uint64_t at = begin; at < end;) {
    const std::uint64_t tile = at / kTileLeaves;
    const std::uint64_t stop = std::min(end, (tile + 1) * kTileLeaves);
    const TileCache::PagePtr page = cache_->get(0, tile, stop - tile * kTileLeaves);
    if (!page) return IoError::corrupt;
    if (!fn(at, page->leaves.data() + (at - tile * kTileLeaves), stop - at)) {
      return IoError::none;
    }
    at = stop;
  }
  return IoError::none;
}

PagedLeafSource LogStore::leaf_source() {
  return PagedLeafSource(*cache_, paged_leaves(), [this](std::uint64_t index) {
    return tail_leaf(index);  // throws std::out_of_range below tail_base
  });
}

IoResult LogStore::close() {
  if (closed_) return IoResult::success();
  IoResult io = IoResult::success();
  if (!failed()) io = checkpoint();
  closed_ = true;
  wal_.reset();
  tiles_.reset();
  entries_.reset();
  manifest_.reset();
  return io;
}

}  // namespace ctwatch::storage
