#include "ctwatch/storage/codec.hpp"

#include <stdexcept>

#include "ctwatch/ct/wire.hpp"

namespace ctwatch::storage {

namespace {

using ct::wire::Reader;

void put_digest(Bytes& out, const crypto::Digest& d) {
  out.insert(out.end(), d.begin(), d.end());
}

crypto::Digest read_digest(Reader& r) {
  const BytesView b = r.bytes(32);
  crypto::Digest d;
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

void put_signature(Bytes& out, const crypto::SignatureBlob& sig) {
  ct::wire::put_u8(out, static_cast<std::uint8_t>(sig.scheme));
  ct::wire::put_opaque16(out, sig.data);
}

crypto::SignatureBlob read_signature(Reader& r) {
  crypto::SignatureBlob sig;
  sig.scheme = static_cast<crypto::SignatureScheme>(r.u8());
  const BytesView data = r.opaque16();
  sig.data.assign(data.begin(), data.end());
  return sig;
}

void put_sth(Bytes& out, const ct::SignedTreeHead& sth) {
  ct::wire::put_u64(out, sth.tree_size);
  ct::wire::put_u64(out, sth.timestamp_ms);
  put_digest(out, sth.root_hash);
  put_signature(out, sth.signature);
}

ct::SignedTreeHead read_sth(Reader& r) {
  ct::SignedTreeHead sth;
  sth.tree_size = r.u64();
  sth.timestamp_ms = r.u64();
  sth.root_hash = read_digest(r);
  sth.signature = read_signature(r);
  return sth;
}

}  // namespace

Bytes encode_entry(const DurableEntry& entry) {
  Bytes out;
  out.reserve(96 + entry.issuer_cn.size() + (entry.has_body ? entry.entry.data.size() + 40 : 0));
  ct::wire::put_u64(out, entry.index);
  ct::wire::put_u64(out, entry.timestamp_ms);
  put_digest(out, entry.leaf_hash);
  put_digest(out, entry.fingerprint);
  ct::wire::put_opaque16(out, to_bytes(entry.issuer_cn));
  ct::wire::put_u8(out, entry.has_body ? 1 : 0);
  if (entry.has_body) {
    ct::wire::put_u16(out, static_cast<std::uint16_t>(entry.entry.type));
    ct::wire::put_opaque24(out, entry.entry.data);
    put_digest(out, entry.entry.issuer_key_hash);
  }
  return out;
}

std::optional<DurableEntry> decode_entry(BytesView payload) {
  try {
    Reader r(payload);
    DurableEntry entry;
    entry.index = r.u64();
    entry.timestamp_ms = r.u64();
    entry.leaf_hash = read_digest(r);
    entry.fingerprint = read_digest(r);
    const BytesView cn = r.opaque16();
    entry.issuer_cn.assign(cn.begin(), cn.end());
    const std::uint8_t has_body = r.u8();
    if (has_body > 1) return std::nullopt;
    entry.has_body = has_body == 1;
    if (entry.has_body) {
      const std::uint16_t type = r.u16();
      if (type > 1) return std::nullopt;
      entry.entry.type = static_cast<ct::EntryType>(type);
      const BytesView data = r.opaque24();
      entry.entry.data.assign(data.begin(), data.end());
      entry.entry.issuer_key_hash = read_digest(r);
    }
    if (!r.done()) return std::nullopt;
    return entry;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Bytes encode_seal(const SealRecord& seal) {
  Bytes out;
  out.reserve(140);
  ct::wire::put_u64(out, seal.first_index);
  ct::wire::put_u64(out, seal.seal_seq);
  put_sth(out, seal.sth);
  return out;
}

std::optional<SealRecord> decode_seal(BytesView payload) {
  try {
    Reader r(payload);
    SealRecord seal;
    seal.first_index = r.u64();
    seal.seal_seq = r.u64();
    seal.sth = read_sth(r);
    if (!r.done()) return std::nullopt;
    if (seal.first_index > seal.sth.tree_size) return std::nullopt;
    return seal;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

Bytes encode_checkpoint(const CheckpointRecord& checkpoint) {
  Bytes out;
  out.reserve(180 + checkpoint.frontier.size() * 32);
  put_sth(out, checkpoint.sth);
  ct::wire::put_u8(out, static_cast<std::uint8_t>(checkpoint.frontier.size()));
  for (const crypto::Digest& d : checkpoint.frontier) put_digest(out, d);
  ct::wire::put_u64(out, checkpoint.seal_seq);
  ct::wire::put_u64(out, checkpoint.last_timestamp_ms);
  ct::wire::put_u64(out, checkpoint.tile_bytes);
  ct::wire::put_u64(out, checkpoint.entry_bytes);
  return out;
}

std::optional<CheckpointRecord> decode_checkpoint(BytesView payload) {
  try {
    Reader r(payload);
    CheckpointRecord checkpoint;
    checkpoint.sth = read_sth(r);
    const std::uint8_t frontier_count = r.u8();
    if (frontier_count > 64) return std::nullopt;
    checkpoint.frontier.reserve(frontier_count);
    for (std::uint8_t i = 0; i < frontier_count; ++i) {
      checkpoint.frontier.push_back(read_digest(r));
    }
    checkpoint.seal_seq = r.u64();
    checkpoint.last_timestamp_ms = r.u64();
    checkpoint.tile_bytes = r.u64();
    checkpoint.entry_bytes = r.u64();
    if (!r.done()) return std::nullopt;
    return checkpoint;
  } catch (const std::invalid_argument&) {
    return std::nullopt;
  }
}

}  // namespace ctwatch::storage
