#include "ctwatch/phishing/detector.hpp"

#include "ctwatch/dns/name.hpp"

namespace ctwatch::phishing {

const std::vector<BrandRule>& standard_rules() {
  static const std::vector<BrandRule> rules = {
      {"Apple", R"(appleid|apple\.com)", {"apple.com", "icloud.com"}},
      {"PayPal", R"(paypal)", {"paypal.com", "paypal.me"}},
      {"Microsoft",
       R"(hotmail|login\.live|outlook|microsoft)",
       {"microsoft.com", "live.com", "outlook.com", "hotmail.com", "office.com"}},
      {"Google", R"(google)", {"google.com", "googleapis.com", "google.de", "google.co.uk"}},
      {"eBay", R"(ebay)", {"ebay.com", "ebay.co.uk", "ebay.de", "ebay.com.au"}},
      {"Taxation",
       R"(ato\.gov\.au|hmrc\.gov\.uk|irs\.gov)",
       {"ato.gov.au", "hmrc.gov.uk", "irs.gov"}},
  };
  return rules;
}

PhishingDetector::PhishingDetector(const dns::PublicSuffixList& psl, std::vector<BrandRule> rules)
    : psl_(&psl), rules_(std::move(rules)) {
  compiled_.reserve(rules_.size());
  for (const BrandRule& rule : rules_) {
    compiled_.emplace_back(rule.pattern, std::regex::ECMAScript | std::regex::icase);
  }
}

std::vector<Finding> PhishingDetector::scan(std::span<const std::string> fqdns) {
  std::vector<Finding> findings;
  for (const std::string& raw : fqdns) {
    ++scanned_;
    const auto name = dns::DnsName::parse(raw);
    if (!name) {
      ++skipped_;
      continue;
    }
    const auto split = psl_->split(*name);
    if (!split) {
      ++skipped_;
      continue;
    }
    const std::string text = name->to_string();
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (!std::regex_search(text, compiled_[i])) continue;
      // Exclude the brand's own domains: a match inside the legitimate
      // registrable domain is not phishing.
      if (rules_[i].legitimate_domains.contains(split->registrable_domain)) continue;
      findings.push_back(
          Finding{rules_[i].brand, text, split->public_suffix, split->registrable_domain});
      break;  // first matching brand wins
    }
  }
  return findings;
}

std::map<std::string, BrandSummary> PhishingDetector::summarize(
    const std::vector<Finding>& findings) {
  std::map<std::string, BrandSummary> out;
  for (const Finding& finding : findings) {
    BrandSummary& summary = out[finding.brand];
    ++summary.count;
    if (summary.example.empty()) summary.example = finding.fqdn;
    ++summary.by_suffix[finding.public_suffix];
  }
  return out;
}

}  // namespace ctwatch::phishing
