#include "ctwatch/phishing/detector.hpp"

#include "ctwatch/dns/name.hpp"

namespace ctwatch::phishing {

const std::vector<BrandRule>& standard_rules() {
  // Keywords: see the contract on BrandRule::keywords — one dot-free
  // literal per regex alternative (a branch like "apple\.com" still always
  // contains "apple" without the dot).
  static const std::vector<BrandRule> rules = {
      {"Apple", R"(appleid|apple\.com)", {"apple.com", "icloud.com"}, {"apple"}},
      {"PayPal", R"(paypal)", {"paypal.com", "paypal.me"}, {"paypal"}},
      {"Microsoft",
       R"(hotmail|login\.live|outlook|microsoft)",
       {"microsoft.com", "live.com", "outlook.com", "hotmail.com", "office.com"},
       {"hotmail", "live", "outlook", "microsoft"}},
      {"Google",
       R"(google)",
       {"google.com", "googleapis.com", "google.de", "google.co.uk"},
       {"google"}},
      {"eBay", R"(ebay)", {"ebay.com", "ebay.co.uk", "ebay.de", "ebay.com.au"}, {"ebay"}},
      {"Taxation",
       R"(ato\.gov\.au|hmrc\.gov\.uk|irs\.gov)",
       {"ato.gov.au", "hmrc.gov.uk", "irs.gov"},
       {"ato", "hmrc", "irs"}},
  };
  return rules;
}

PhishingDetector::PhishingDetector(const dns::PublicSuffixList& psl, std::vector<BrandRule> rules)
    : psl_(&psl), rules_(std::move(rules)) {
  compiled_.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    compiled_.emplace_back(rules_[i].pattern, std::regex::ECMAScript | std::regex::icase);
    if (i < 63 && rules_[i].keywords.empty()) always_mask_ |= 1ull << i;
  }
}

std::uint64_t PhishingDetector::label_mask(namepool::LabelId id) {
  if (id >= label_masks_.size()) label_masks_.resize(id + 1, kMaskUnset);
  std::uint64_t& slot = label_masks_[id];
  if (slot != kMaskUnset) return slot;
  const std::string_view text = pool_->labels().text(id);
  std::uint64_t mask = 0;
  const std::size_t n = std::min<std::size_t>(rules_.size(), 63);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& keyword : rules_[i].keywords) {
      if (text.find(keyword) != std::string_view::npos) {
        mask |= 1ull << i;
        break;
      }
    }
  }
  slot = mask;
  return mask;
}

void PhishingDetector::scan_one(namepool::NameRef ref, std::vector<Finding>& findings) {
  const auto split = psl_->split(*pool_, ref);
  if (!split) {
    ++skipped_;
    return;
  }
  std::uint64_t mask = always_mask_;
  for (const namepool::LabelId id : pool_->ids(ref)) mask |= label_mask(id);
  if (mask == 0 && rules_.size() <= 63) return;  // no rule can match; skip the regexes

  const std::string text = pool_->to_string(ref);
  std::string registrable;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i < 63 && !(mask >> i & 1)) continue;
    ++regex_evaluations_;
    if (!std::regex_search(text, compiled_[i])) continue;
    // Exclude the brand's own domains: a match inside the legitimate
    // registrable domain is not phishing.
    if (registrable.empty()) registrable = pool_->to_string(split->registrable_domain);
    if (rules_[i].legitimate_domains.contains(registrable)) continue;
    findings.push_back(
        Finding{rules_[i].brand, text, pool_->to_string(split->public_suffix), registrable});
    break;  // first matching brand wins
  }
}

std::vector<Finding> PhishingDetector::scan(std::span<const std::string> fqdns) {
  std::vector<Finding> findings;
  for (const std::string& raw : fqdns) {
    ++scanned_;
    const auto ref = dns::DnsName::parse_into(*pool_, raw);
    if (!ref) {
      ++skipped_;
      continue;
    }
    scan_one(*ref, findings);
  }
  return findings;
}

std::vector<Finding> PhishingDetector::scan_refs(std::span<const namepool::NameRef> refs) {
  std::vector<Finding> findings;
  for (const namepool::NameRef ref : refs) {
    ++scanned_;
    scan_one(ref, findings);
  }
  return findings;
}

std::map<std::string, BrandSummary> PhishingDetector::summarize(
    const std::vector<Finding>& findings) {
  std::map<std::string, BrandSummary> out;
  for (const Finding& finding : findings) {
    BrandSummary& summary = out[finding.brand];
    ++summary.count;
    if (summary.example.empty()) summary.example = finding.fqdn;
    ++summary.by_suffix[finding.public_suffix];
  }
  return out;
}

}  // namespace ctwatch::phishing
