#include "ctwatch/phishing/detector.hpp"

#include <iterator>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/par/par.hpp"

namespace ctwatch::phishing {

const std::vector<BrandRule>& standard_rules() {
  // Keywords: see the contract on BrandRule::keywords — one dot-free
  // literal per regex alternative (a branch like "apple\.com" still always
  // contains "apple" without the dot).
  static const std::vector<BrandRule> rules = {
      {"Apple", R"(appleid|apple\.com)", {"apple.com", "icloud.com"}, {"apple"}},
      {"PayPal", R"(paypal)", {"paypal.com", "paypal.me"}, {"paypal"}},
      {"Microsoft",
       R"(hotmail|login\.live|outlook|microsoft)",
       {"microsoft.com", "live.com", "outlook.com", "hotmail.com", "office.com"},
       {"hotmail", "live", "outlook", "microsoft"}},
      {"Google",
       R"(google)",
       {"google.com", "googleapis.com", "google.de", "google.co.uk"},
       {"google"}},
      {"eBay", R"(ebay)", {"ebay.com", "ebay.co.uk", "ebay.de", "ebay.com.au"}, {"ebay"}},
      {"Taxation",
       R"(ato\.gov\.au|hmrc\.gov\.uk|irs\.gov)",
       {"ato.gov.au", "hmrc.gov.uk", "irs.gov"},
       {"ato", "hmrc", "irs"}},
  };
  return rules;
}

PhishingDetector::PhishingDetector(const dns::PublicSuffixList& psl, std::vector<BrandRule> rules)
    : psl_(&psl), rules_(std::move(rules)) {
  compiled_.reserve(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    compiled_.emplace_back(rules_[i].pattern, std::regex::ECMAScript | std::regex::icase);
    if (i < 63 && rules_[i].keywords.empty()) always_mask_ |= 1ull << i;
  }
}

std::uint64_t PhishingDetector::label_mask(namepool::LabelId id) const {
  std::atomic<std::uint64_t>* slot = masks_->slot(id);
  if (slot) {
    const std::uint64_t cached = slot->load(std::memory_order_relaxed);
    if (cached != kMaskUnset) return cached;
  }
  const std::string_view text = pool_->labels().text(id);
  std::uint64_t mask = 0;
  const std::size_t n = std::min<std::size_t>(rules_.size(), 63);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& keyword : rules_[i].keywords) {
      if (text.find(keyword) != std::string_view::npos) {
        mask |= 1ull << i;
        break;
      }
    }
  }
  if (slot) slot->store(mask, std::memory_order_relaxed);
  return mask;
}

void PhishingDetector::scan_one(namepool::NameRef ref, std::vector<Finding>& findings,
                                ScanTally& tally) const {
  const auto split = psl_->split(*pool_, ref);
  if (!split) {
    ++tally.skipped;
    return;
  }
  std::uint64_t mask = always_mask_;
  for (const namepool::LabelId id : pool_->ids(ref)) mask |= label_mask(id);
  if (mask == 0 && rules_.size() <= 63) return;  // no rule can match; skip the regexes

  const std::string text = pool_->to_string(ref);
  std::string registrable;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (i < 63 && !(mask >> i & 1)) continue;
    ++tally.regex_evaluations;
    if (!std::regex_search(text, compiled_[i])) continue;
    // Exclude the brand's own domains: a match inside the legitimate
    // registrable domain is not phishing.
    if (registrable.empty()) registrable = pool_->to_string(split->registrable_domain);
    if (rules_[i].legitimate_domains.contains(registrable)) continue;
    findings.push_back(
        Finding{rules_[i].brand, text, pool_->to_string(split->public_suffix), registrable});
    break;  // first matching brand wins
  }
}

std::vector<Finding> PhishingDetector::merge_chunks(
    std::vector<Finding> findings, std::vector<std::vector<Finding>>& chunk_findings,
    std::vector<ScanTally>& tallies) {
  // Chunks cover contiguous input slices, so chunk-order concatenation is
  // the serial findings order; the tallies are order-independent sums.
  for (const ScanTally& tally : tallies) {
    scanned_ += tally.scanned;
    skipped_ += tally.skipped;
    regex_evaluations_ += tally.regex_evaluations;
  }
  for (std::vector<Finding>& chunk : chunk_findings) {
    findings.insert(findings.end(), std::make_move_iterator(chunk.begin()),
                    std::make_move_iterator(chunk.end()));
  }
  return findings;
}

std::vector<Finding> PhishingDetector::scan(std::span<const std::string> fqdns) {
  const par::ChunkPlan plan = par::ChunkPlan::over(fqdns.size(), 256);
  std::vector<std::vector<Finding>> chunk_findings(plan.chunks);
  std::vector<ScanTally> tallies(plan.chunks);
  par::parallel_for_chunks(fqdns.size(), 256, [&](std::size_t c, par::IndexRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      ++tallies[c].scanned;
      const auto ref = dns::DnsName::parse_into(*pool_, fqdns[i]);
      if (!ref) {
        ++tallies[c].skipped;
        continue;
      }
      scan_one(*ref, chunk_findings[c], tallies[c]);
    }
  });
  return merge_chunks({}, chunk_findings, tallies);
}

std::vector<Finding> PhishingDetector::scan_refs(std::span<const namepool::NameRef> refs) {
  const par::ChunkPlan plan = par::ChunkPlan::over(refs.size(), 256);
  std::vector<std::vector<Finding>> chunk_findings(plan.chunks);
  std::vector<ScanTally> tallies(plan.chunks);
  par::parallel_for_chunks(refs.size(), 256, [&](std::size_t c, par::IndexRange range) {
    for (std::size_t i = range.begin; i < range.end; ++i) {
      ++tallies[c].scanned;
      scan_one(refs[i], chunk_findings[c], tallies[c]);
    }
  });
  return merge_chunks({}, chunk_findings, tallies);
}

std::map<std::string, BrandSummary> PhishingDetector::summarize(
    const std::vector<Finding>& findings) {
  std::map<std::string, BrandSummary> out;
  for (const Finding& finding : findings) {
    BrandSummary& summary = out[finding.brand];
    ++summary.count;
    if (summary.example.empty()) summary.example = finding.fqdn;
    ++summary.by_suffix[finding.public_suffix];
  }
  return out;
}

}  // namespace ctwatch::phishing
