#include "ctwatch/enumeration/enumerator.hpp"

#include <algorithm>
#include <map>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::enumeration {

namespace {

struct FunnelMetrics {
  obs::Counter& candidates = obs::Registry::global().counter("enum.funnel.candidates");
  obs::Counter& test_replies = obs::Registry::global().counter("enum.funnel.test_replies");
  obs::Counter& control_replies = obs::Registry::global().counter("enum.funnel.control_replies");
  obs::Counter& unroutable = obs::Registry::global().counter("enum.funnel.unroutable_dropped");
  obs::Counter& confirmed = obs::Registry::global().counter("enum.funnel.confirmed");
  obs::Counter& novel = obs::Registry::global().counter("enum.funnel.novel");
  obs::Counter& lost_test = obs::Registry::global().counter("enum.funnel.lost_test_queries");
  obs::Counter& lost_control = obs::Registry::global().counter("enum.funnel.lost_control_queries");
  obs::Counter& dns_retries = obs::Registry::global().counter("enum.funnel.dns_retries");
};

FunnelMetrics& funnel_metrics() {
  static FunnelMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> SubdomainEnumerator::build_plan() const {
  std::vector<std::pair<std::string, std::string>> plan;
  for (const auto& [label, count] : census_->label_counts()) {
    if (count < options_.min_label_count) continue;
    const auto it = census_->label_suffix_counts().find(label);
    if (it == census_->label_suffix_counts().end()) continue;
    // Rank this label's suffixes by occurrence count.
    std::vector<std::pair<std::string, std::uint64_t>> suffixes;
    for (const auto& [suffix, n] : it->second) {
      if (options_.excluded_suffixes.contains(suffix)) continue;
      suffixes.emplace_back(suffix, n);
    }
    std::sort(suffixes.begin(), suffixes.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (suffixes.size() > options_.top_suffixes_per_label) {
      suffixes.resize(options_.top_suffixes_per_label);
    }
    for (const auto& [suffix, n] : suffixes) plan.emplace_back(label, suffix);
  }
  return plan;
}

FunnelResult SubdomainEnumerator::run(const std::vector<std::string>& domain_list,
                                      const std::set<std::string>& sonar,
                                      const dns::RecursiveResolver& resolver,
                                      const net::RoutingTable& routing, Rng& rng,
                                      SimTime when) const {
  CTWATCH_SPAN("enum.funnel.run");
  FunnelResult result;
  const auto plan = build_plan();
  std::set<std::string> labels_used;
  for (const auto& [label, suffix] : plan) labels_used.insert(label);
  result.labels_selected = labels_used.size();
  result.label_suffix_pairs = plan.size();

  // Group the domain list by public suffix once.
  std::map<std::string, std::vector<const std::string*>> by_suffix;
  for (const std::string& domain : domain_list) {
    const auto split = psl_->split(domain);
    if (!split) continue;
    // Only registrable domains themselves participate in construction.
    if (split->subdomain_labels.empty()) {
      by_suffix[split->public_suffix].push_back(&domain);
    }
  }

  // One verification lookup, hardened against a lossy resolver: a query
  // that comes back timed_out/servfail is re-asked up to dns_max_retries
  // times with doubling virtual-time backoff (so outage windows can pass
  // underneath). Only after the budget is spent is the probe `lost` —
  // unknown, which the funnel accounts separately from negative.
  struct Probe {
    bool lost = false;      ///< still lossy after all retries
    bool positive = false;  ///< resolved to an A record
    bool routable = false;
    bool too_long = false;
  };
  auto probe = [&](const std::string& fqdn) -> Probe {
    Probe p;
    const auto name = dns::DnsName::parse(fqdn);
    if (!name) return p;
    SimTime attempt_when = when;
    std::int64_t backoff = options_.retry_backoff_s;
    for (int attempt = 0;; ++attempt) {
      const dns::ResolveResult res = resolver.resolve(*name, dns::RrType::A, attempt_when,
                                                      std::nullopt, options_.max_cname_hops);
      if (!dns::is_lossy(res.status)) {
        if (res.status == dns::ResolveStatus::chain_too_long) {
          p.too_long = true;
          return p;
        }
        if (res.status != dns::ResolveStatus::ok) return p;
        const auto a = res.first_a();
        if (!a) return p;
        p.positive = true;
        p.routable = routing.routable(*a);
        return p;
      }
      if (res.status == dns::ResolveStatus::timed_out) {
        ++result.dns_timeouts;
      } else {
        ++result.dns_servfails;
      }
      if (attempt >= options_.dns_max_retries) {
        p.lost = true;
        return p;
      }
      ++result.dns_retries;
      attempt_when += backoff;
      backoff *= 2;
    }
  };

  for (const auto& [label, suffix] : plan) {
    const auto it = by_suffix.find(suffix);
    if (it == by_suffix.end()) continue;
    for (const std::string* domain : it->second) {
      ++result.candidates;
      const std::string candidate = label + "." + *domain;

      const Probe test = probe(candidate);
      if (test.lost) {
        // The test answer is unknown; probing the control could not make
        // the candidate confirmable. Count the loss, skip the control.
        ++result.lost_test_queries;
        continue;
      }
      if (test.too_long) ++result.chain_too_long;
      if (test.positive) {
        ++result.test_replies;
      } else {
        ++result.test_unanswered;
      }

      // The paper scans the pseudo-random control for every candidate, not
      // just the answered ones; both reply counts are funnel outputs.
      Probe control;
      if (options_.use_controls) {
        const std::string control_fqdn =
            rng.alnum_label(options_.control_label_length) + "." + *domain;
        control = probe(control_fqdn);
        if (control.positive) ++result.control_replies;
      }

      if (!test.positive) continue;
      if (options_.use_routing_filter && !test.routable) {
        ++result.unroutable_dropped;
        continue;
      }
      if (control.lost) {
        // Cannot prove the zone is not a default-A responder: reject
        // conservatively, but count why.
        ++result.lost_control_queries;
        continue;
      }
      if (control.positive) {
        ++result.control_rejected;  // the zone answers anything; reject
        continue;
      }
      ++result.confirmed;
      if (sonar.contains(candidate)) {
        ++result.known_in_sonar;
      } else {
        ++result.novel;
      }
      if (result.discoveries.size() < options_.keep_discoveries) {
        result.discoveries.push_back(candidate);
      }
    }
  }

  // One bulk update per run keeps the per-candidate loop free of metric
  // traffic while the registry still sees every funnel stage.
  FunnelMetrics& metrics = funnel_metrics();
  metrics.candidates.inc(result.candidates);
  metrics.test_replies.inc(result.test_replies);
  metrics.control_replies.inc(result.control_replies);
  metrics.unroutable.inc(result.unroutable_dropped);
  metrics.confirmed.inc(result.confirmed);
  metrics.novel.inc(result.novel);
  metrics.lost_test.inc(result.lost_test_queries);
  metrics.lost_control.inc(result.lost_control_queries);
  metrics.dns_retries.inc(result.dns_retries);
  obs::log_info("enum.funnel", "funnel complete",
                {{"candidates", result.candidates},
                 {"test_replies", result.test_replies},
                 {"confirmed", result.confirmed},
                 {"novel", result.novel},
                 {"lost_test", result.lost_test_queries},
                 {"lost_control", result.lost_control_queries}});
  return result;
}

}  // namespace ctwatch::enumeration
