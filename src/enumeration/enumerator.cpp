#include "ctwatch/enumeration/enumerator.hpp"

#include <algorithm>
#include <map>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::enumeration {

namespace {

struct FunnelMetrics {
  obs::Counter& candidates = obs::Registry::global().counter("enum.funnel.candidates");
  obs::Counter& test_replies = obs::Registry::global().counter("enum.funnel.test_replies");
  obs::Counter& control_replies = obs::Registry::global().counter("enum.funnel.control_replies");
  obs::Counter& unroutable = obs::Registry::global().counter("enum.funnel.unroutable_dropped");
  obs::Counter& confirmed = obs::Registry::global().counter("enum.funnel.confirmed");
  obs::Counter& novel = obs::Registry::global().counter("enum.funnel.novel");
};

FunnelMetrics& funnel_metrics() {
  static FunnelMetrics metrics;
  return metrics;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> SubdomainEnumerator::build_plan() const {
  std::vector<std::pair<std::string, std::string>> plan;
  for (const auto& [label, count] : census_->label_counts()) {
    if (count < options_.min_label_count) continue;
    const auto it = census_->label_suffix_counts().find(label);
    if (it == census_->label_suffix_counts().end()) continue;
    // Rank this label's suffixes by occurrence count.
    std::vector<std::pair<std::string, std::uint64_t>> suffixes;
    for (const auto& [suffix, n] : it->second) {
      if (options_.excluded_suffixes.contains(suffix)) continue;
      suffixes.emplace_back(suffix, n);
    }
    std::sort(suffixes.begin(), suffixes.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    if (suffixes.size() > options_.top_suffixes_per_label) {
      suffixes.resize(options_.top_suffixes_per_label);
    }
    for (const auto& [suffix, n] : suffixes) plan.emplace_back(label, suffix);
  }
  return plan;
}

FunnelResult SubdomainEnumerator::run(const std::vector<std::string>& domain_list,
                                      const std::set<std::string>& sonar,
                                      const dns::RecursiveResolver& resolver,
                                      const net::RoutingTable& routing, Rng& rng,
                                      SimTime when) const {
  CTWATCH_SPAN("enum.funnel.run");
  FunnelResult result;
  const auto plan = build_plan();
  std::set<std::string> labels_used;
  for (const auto& [label, suffix] : plan) labels_used.insert(label);
  result.labels_selected = labels_used.size();
  result.label_suffix_pairs = plan.size();

  // Group the domain list by public suffix once.
  std::map<std::string, std::vector<const std::string*>> by_suffix;
  for (const std::string& domain : domain_list) {
    const auto split = psl_->split(domain);
    if (!split) continue;
    // Only registrable domains themselves participate in construction.
    if (split->subdomain_labels.empty()) {
      by_suffix[split->public_suffix].push_back(&domain);
    }
  }

  auto resolves = [&](const std::string& fqdn, bool& routable,
                      bool& too_long) -> bool {
    routable = false;
    too_long = false;
    const auto name = dns::DnsName::parse(fqdn);
    if (!name) return false;
    const dns::ResolveResult res =
        resolver.resolve(*name, dns::RrType::A, when, std::nullopt, options_.max_cname_hops);
    if (res.status == dns::ResolveStatus::chain_too_long) {
      too_long = true;
      return false;
    }
    if (res.status != dns::ResolveStatus::ok) return false;
    const auto a = res.first_a();
    if (!a) return false;
    routable = routing.routable(*a);
    return true;
  };

  for (const auto& [label, suffix] : plan) {
    const auto it = by_suffix.find(suffix);
    if (it == by_suffix.end()) continue;
    for (const std::string* domain : it->second) {
      ++result.candidates;
      const std::string candidate = label + "." + *domain;

      bool routable = false;
      bool too_long = false;
      const bool test_ok = resolves(candidate, routable, too_long);
      if (too_long) ++result.chain_too_long;
      if (test_ok) ++result.test_replies;

      // The paper scans the pseudo-random control for every candidate, not
      // just the answered ones; both reply counts are funnel outputs.
      bool control_ok = false;
      if (options_.use_controls) {
        const std::string control =
            rng.alnum_label(options_.control_label_length) + "." + *domain;
        bool control_routable = false;
        bool control_too_long = false;
        control_ok = resolves(control, control_routable, control_too_long);
        if (control_ok) ++result.control_replies;
      }

      if (!test_ok) continue;
      if (options_.use_routing_filter && !routable) {
        ++result.unroutable_dropped;
        continue;
      }
      if (control_ok) continue;  // the zone answers anything; reject
      ++result.confirmed;
      if (sonar.contains(candidate)) {
        ++result.known_in_sonar;
      } else {
        ++result.novel;
      }
      if (result.discoveries.size() < options_.keep_discoveries) {
        result.discoveries.push_back(candidate);
      }
    }
  }

  // One bulk update per run keeps the per-candidate loop free of metric
  // traffic while the registry still sees every funnel stage.
  FunnelMetrics& metrics = funnel_metrics();
  metrics.candidates.inc(result.candidates);
  metrics.test_replies.inc(result.test_replies);
  metrics.control_replies.inc(result.control_replies);
  metrics.unroutable.inc(result.unroutable_dropped);
  metrics.confirmed.inc(result.confirmed);
  metrics.novel.inc(result.novel);
  obs::log_info("enum.funnel", "funnel complete",
                {{"candidates", result.candidates},
                 {"test_replies", result.test_replies},
                 {"confirmed", result.confirmed},
                 {"novel", result.novel}});
  return result;
}

}  // namespace ctwatch::enumeration
