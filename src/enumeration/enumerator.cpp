#include "ctwatch/enumeration/enumerator.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/obs/obs.hpp"

namespace ctwatch::enumeration {

namespace {

struct FunnelMetrics {
  obs::Counter& candidates = obs::Registry::global().counter("enum.funnel.candidates");
  obs::Counter& unique_candidates =
      obs::Registry::global().counter("enum.funnel.unique_candidates");
  obs::Counter& test_replies = obs::Registry::global().counter("enum.funnel.test_replies");
  obs::Counter& control_replies = obs::Registry::global().counter("enum.funnel.control_replies");
  obs::Counter& unroutable = obs::Registry::global().counter("enum.funnel.unroutable_dropped");
  obs::Counter& confirmed = obs::Registry::global().counter("enum.funnel.confirmed");
  obs::Counter& novel = obs::Registry::global().counter("enum.funnel.novel");
  obs::Counter& lost_test = obs::Registry::global().counter("enum.funnel.lost_test_queries");
  obs::Counter& lost_control = obs::Registry::global().counter("enum.funnel.lost_control_queries");
  obs::Counter& dns_retries = obs::Registry::global().counter("enum.funnel.dns_retries");
};

FunnelMetrics& funnel_metrics() {
  static FunnelMetrics metrics;
  return metrics;
}

/// A registrable domain admitted to construction: its list text plus its
/// interned form (composition prepends a LabelId to `ref`).
struct ConstructionDomain {
  const std::string* text;
  namepool::NameRef ref;
};

/// One suffix's admitted registrable domains, plus what batch composition
/// needs: the refs as a contiguous span and the longest domain text (for
/// the whole-group 253-char fast path).
struct DomainGroup {
  std::vector<ConstructionDomain> domains;
  std::vector<namepool::NameRef> refs;
  std::size_t max_text = 0;
};

/// Groups the domain list by interned public suffix. Only registrable
/// domains themselves participate in construction.
std::unordered_map<namepool::NameRef, DomainGroup, namepool::NameRefHash> group_domains(
    namepool::NamePool& pool, const dns::PublicSuffixList& psl,
    const std::vector<std::string>& domain_list) {
  std::unordered_map<namepool::NameRef, DomainGroup, namepool::NameRefHash> by_suffix;
  for (const std::string& domain : domain_list) {
    const auto ref = dns::DnsName::parse_into(pool, domain);
    if (!ref) continue;
    const auto split = psl.split(pool, *ref);
    if (!split) continue;
    if (split->subdomain_label_count == 0) {
      DomainGroup& group = by_suffix[split->public_suffix];
      group.domains.push_back({&domain, *ref});
      group.refs.push_back(*ref);
      group.max_text = std::max(group.max_text, domain.size());
    }
  }
  return by_suffix;
}

}  // namespace

std::vector<SubdomainEnumerator::PlanEntry> SubdomainEnumerator::build_plan_refs() const {
  namepool::NamePool& pool = census_->pool();
  // Labels in lexicographic order (the historical ordered-map iteration);
  // the plan order feeds the RNG stream, so it must stay stable.
  std::vector<std::pair<std::string_view, namepool::LabelId>> labels;
  for (const auto& [id, count] : census_->label_counts_by_id()) {
    if (count < options_.min_label_count) continue;
    labels.emplace_back(pool.labels().text(id), id);
  }
  std::sort(labels.begin(), labels.end());

  std::vector<PlanEntry> plan;
  const auto& by_label = census_->label_suffix_counts_by_id();
  for (const auto& [label_text, label_id] : labels) {
    const auto it = by_label.find(label_id);
    if (it == by_label.end()) continue;
    // Rank this label's suffixes by occurrence count.
    struct RankedSuffix {
      std::string text;
      std::uint64_t count;
      namepool::NameRef ref;
    };
    std::vector<RankedSuffix> suffixes;
    for (const auto& [suffix, n] : it->second) {
      std::string text = pool.to_string(suffix);
      if (options_.excluded_suffixes.contains(text)) continue;
      suffixes.push_back({std::move(text), n, suffix});
    }
    std::sort(suffixes.begin(), suffixes.end(), [](const auto& a, const auto& b) {
      return a.count != b.count ? a.count > b.count : a.text < b.text;
    });
    if (suffixes.size() > options_.top_suffixes_per_label) {
      suffixes.resize(options_.top_suffixes_per_label);
    }
    for (const auto& ranked : suffixes) plan.push_back({label_id, ranked.ref});
  }
  return plan;
}

std::vector<std::pair<std::string, std::string>> SubdomainEnumerator::build_plan() const {
  namepool::NamePool& pool = census_->pool();
  std::vector<std::pair<std::string, std::string>> plan;
  for (const PlanEntry& entry : build_plan_refs()) {
    plan.emplace_back(pool.labels().text(entry.label), pool.to_string(entry.suffix));
  }
  return plan;
}

SubdomainEnumerator::CandidateSet SubdomainEnumerator::generate_candidates(
    const std::vector<std::string>& domain_list) const {
  CTWATCH_SPAN("enum.generate_candidates");
  namepool::NamePool& pool = census_->pool();
  CandidateSet out;
  const auto plan = build_plan_refs();
  const auto by_suffix = group_domains(pool, *psl_, domain_list);
  std::size_t upper_bound = 0;
  for (const PlanEntry& entry : plan) {
    const auto it = by_suffix.find(entry.suffix);
    if (it != by_suffix.end()) upper_bound += it->second.domains.size();
  }
  out.refs.reserve(upper_bound);
  std::vector<namepool::NameRef> admitted;  // scratch for groups with long names
  for (const PlanEntry& entry : plan) {
    const auto it = by_suffix.find(entry.suffix);
    if (it == by_suffix.end()) continue;
    const DomainGroup& group = it->second;
    const std::size_t label_len = pool.labels().text(entry.label).size();
    if (label_len + 1 + group.max_text <= 253) {
      // Whole group fits: one lock acquisition for the entire suffix.
      out.unique += pool.with_prefix_batch(entry.label, group.refs, out.refs);
      out.composed += group.refs.size();
    } else {
      admitted.clear();
      for (const ConstructionDomain& domain : group.domains) {
        if (label_len + 1 + domain.text->size() > 253) {
          ++out.too_long;
          continue;
        }
        admitted.push_back(domain.ref);
      }
      out.unique += pool.with_prefix_batch(entry.label, admitted, out.refs);
      out.composed += admitted.size();
    }
  }
  return out;
}

FunnelResult SubdomainEnumerator::run(const std::vector<std::string>& domain_list,
                                      const std::set<std::string>& sonar,
                                      const dns::RecursiveResolver& resolver,
                                      const net::RoutingTable& routing, Rng& rng,
                                      SimTime when) const {
  CTWATCH_SPAN("enum.funnel.run");
  namepool::NamePool& pool = census_->pool();
  FunnelResult result;
  const auto plan = build_plan_refs();
  std::unordered_set<namepool::LabelId> labels_used;
  for (const PlanEntry& entry : plan) labels_used.insert(entry.label);
  result.labels_selected = labels_used.size();
  result.label_suffix_pairs = plan.size();

  // Group the domain list by public suffix once.
  const auto by_suffix = group_domains(pool, *psl_, domain_list);

  // One verification lookup, hardened against a lossy resolver: a query
  // that comes back timed_out/servfail is re-asked up to dns_max_retries
  // times with doubling virtual-time backoff (so outage windows can pass
  // underneath). Only after the budget is spent is the probe `lost` —
  // unknown, which the funnel accounts separately from negative.
  struct Probe {
    bool lost = false;      ///< still lossy after all retries
    bool positive = false;  ///< resolved to an A record
    bool routable = false;
    bool too_long = false;
  };
  auto probe_name = [&](const dns::DnsName& name) -> Probe {
    Probe p;
    SimTime attempt_when = when;
    std::int64_t backoff = options_.retry_backoff_s;
    for (int attempt = 0;; ++attempt) {
      const dns::ResolveResult res = resolver.resolve(name, dns::RrType::A, attempt_when,
                                                      std::nullopt, options_.max_cname_hops);
      if (!dns::is_lossy(res.status)) {
        if (res.status == dns::ResolveStatus::chain_too_long) {
          p.too_long = true;
          return p;
        }
        if (res.status != dns::ResolveStatus::ok) return p;
        const auto a = res.first_a();
        if (!a) return p;
        p.positive = true;
        p.routable = routing.routable(*a);
        return p;
      }
      if (res.status == dns::ResolveStatus::timed_out) {
        ++result.dns_timeouts;
      } else {
        ++result.dns_servfails;
      }
      if (attempt >= options_.dns_max_retries) {
        p.lost = true;
        return p;
      }
      ++result.dns_retries;
      attempt_when += backoff;
      backoff *= 2;
    }
  };
  auto probe_text = [&](const std::string& fqdn) -> Probe {
    const auto name = dns::DnsName::parse(fqdn);
    if (!name) return Probe{};
    return probe_name(*name);
  };

  for (const PlanEntry& entry : plan) {
    const auto it = by_suffix.find(entry.suffix);
    if (it == by_suffix.end()) continue;
    const std::string_view label_text = pool.labels().text(entry.label);
    for (const ConstructionDomain& domain : it->second.domains) {
      ++result.candidates;
      std::string candidate;
      candidate.reserve(label_text.size() + 1 + domain.text->size());
      candidate += label_text;
      candidate += '.';
      candidate += *domain.text;

      // Candidate composition is integer work against the pool; only a
      // name whose textual form would be unparseable (> 253 chars) is
      // skipped, mirroring the string path's parse failure.
      Probe test;
      if (candidate.size() <= 253) {
        const auto comp = pool.with_prefix(domain.ref, entry.label);
        if (comp.fresh) ++result.unique_candidates;
        test = probe_name(dns::DnsName::materialize(pool, comp.ref));
      }
      if (test.lost) {
        // The test answer is unknown; probing the control could not make
        // the candidate confirmable. Count the loss, skip the control.
        ++result.lost_test_queries;
        continue;
      }
      if (test.too_long) ++result.chain_too_long;
      if (test.positive) {
        ++result.test_replies;
      } else {
        ++result.test_unanswered;
      }

      // The paper scans the pseudo-random control for every candidate, not
      // just the answered ones; both reply counts are funnel outputs.
      Probe control;
      if (options_.use_controls) {
        const std::string control_fqdn =
            rng.alnum_label(options_.control_label_length) + "." + *domain.text;
        control = probe_text(control_fqdn);
        if (control.positive) ++result.control_replies;
      }

      if (!test.positive) continue;
      if (options_.use_routing_filter && !test.routable) {
        ++result.unroutable_dropped;
        continue;
      }
      if (control.lost) {
        // Cannot prove the zone is not a default-A responder: reject
        // conservatively, but count why.
        ++result.lost_control_queries;
        continue;
      }
      if (control.positive) {
        ++result.control_rejected;  // the zone answers anything; reject
        continue;
      }
      ++result.confirmed;
      if (sonar.contains(candidate)) {
        ++result.known_in_sonar;
      } else {
        ++result.novel;
      }
      if (result.discoveries.size() < options_.keep_discoveries) {
        result.discoveries.push_back(candidate);
      }
    }
  }

  // One bulk update per run keeps the per-candidate loop free of metric
  // traffic while the registry still sees every funnel stage.
  FunnelMetrics& metrics = funnel_metrics();
  metrics.candidates.inc(result.candidates);
  metrics.unique_candidates.inc(result.unique_candidates);
  metrics.test_replies.inc(result.test_replies);
  metrics.control_replies.inc(result.control_replies);
  metrics.unroutable.inc(result.unroutable_dropped);
  metrics.confirmed.inc(result.confirmed);
  metrics.novel.inc(result.novel);
  metrics.lost_test.inc(result.lost_test_queries);
  metrics.lost_control.inc(result.lost_control_queries);
  metrics.dns_retries.inc(result.dns_retries);
  obs::log_info("enum.funnel", "funnel complete",
                {{"candidates", result.candidates},
                 {"test_replies", result.test_replies},
                 {"confirmed", result.confirmed},
                 {"novel", result.novel},
                 {"lost_test", result.lost_test_queries},
                 {"lost_control", result.lost_control_queries}});
  return result;
}

}  // namespace ctwatch::enumeration
