#include "ctwatch/enumeration/enumerator.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "ctwatch/chaos/fault.hpp"
#include "ctwatch/dns/name.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/par/par.hpp"

namespace ctwatch::enumeration {

namespace {

struct FunnelMetrics {
  obs::Counter& candidates = obs::Registry::global().counter("enum.funnel.candidates");
  obs::Counter& unique_candidates =
      obs::Registry::global().counter("enum.funnel.unique_candidates");
  obs::Counter& test_replies = obs::Registry::global().counter("enum.funnel.test_replies");
  obs::Counter& control_replies = obs::Registry::global().counter("enum.funnel.control_replies");
  obs::Counter& unroutable = obs::Registry::global().counter("enum.funnel.unroutable_dropped");
  obs::Counter& confirmed = obs::Registry::global().counter("enum.funnel.confirmed");
  obs::Counter& novel = obs::Registry::global().counter("enum.funnel.novel");
  obs::Counter& lost_test = obs::Registry::global().counter("enum.funnel.lost_test_queries");
  obs::Counter& lost_control = obs::Registry::global().counter("enum.funnel.lost_control_queries");
  obs::Counter& dns_retries = obs::Registry::global().counter("enum.funnel.dns_retries");
  obs::Gauge& imbalance = obs::Registry::global().gauge("par.imbalance.funnel");
  obs::LogLinearHistogram& stage_us = obs::Registry::global().latency("enum.funnel.stage_us");
};

FunnelMetrics& funnel_metrics() {
  static FunnelMetrics metrics;
  return metrics;
}

/// A registrable domain admitted to construction: its list text plus its
/// interned form (composition prepends a LabelId to `ref`).
struct ConstructionDomain {
  const std::string* text;
  namepool::NameRef ref;
};

/// One suffix's admitted registrable domains, plus what batch composition
/// needs: the refs as a contiguous span and the longest domain text (for
/// the whole-group 253-char fast path).
struct DomainGroup {
  std::vector<ConstructionDomain> domains;
  std::vector<namepool::NameRef> refs;
  std::size_t max_text = 0;
};

/// Groups the domain list by interned public suffix. Only registrable
/// domains themselves participate in construction.
std::unordered_map<namepool::NameRef, DomainGroup, namepool::NameRefHash> group_domains(
    namepool::NamePool& pool, const dns::PublicSuffixList& psl,
    const std::vector<std::string>& domain_list) {
  std::unordered_map<namepool::NameRef, DomainGroup, namepool::NameRefHash> by_suffix;
  for (const std::string& domain : domain_list) {
    const auto ref = dns::DnsName::parse_into(pool, domain);
    if (!ref) continue;
    const auto split = psl.split(pool, *ref);
    if (!split) continue;
    if (split->subdomain_label_count == 0) {
      DomainGroup& group = by_suffix[split->public_suffix];
      group.domains.push_back({&domain, *ref});
      group.refs.push_back(*ref);
      group.max_text = std::max(group.max_text, domain.size());
    }
  }
  return by_suffix;
}

}  // namespace

std::vector<SubdomainEnumerator::PlanEntry> SubdomainEnumerator::build_plan_refs() const {
  namepool::NamePool& pool = census_->pool();
  // Labels in lexicographic order (the historical ordered-map iteration);
  // the plan order feeds the RNG stream, so it must stay stable.
  std::vector<std::pair<std::string_view, namepool::LabelId>> labels;
  for (const auto& [id, count] : census_->label_counts_by_id()) {
    if (count < options_.min_label_count) continue;
    labels.emplace_back(pool.labels().text(id), id);
  }
  std::sort(labels.begin(), labels.end());

  std::vector<PlanEntry> plan;
  const auto& by_label = census_->label_suffix_counts_by_id();
  for (const auto& [label_text, label_id] : labels) {
    const auto it = by_label.find(label_id);
    if (it == by_label.end()) continue;
    // Rank this label's suffixes by occurrence count.
    struct RankedSuffix {
      std::string text;
      std::uint64_t count;
      namepool::NameRef ref;
    };
    std::vector<RankedSuffix> suffixes;
    for (const auto& [suffix, n] : it->second) {
      std::string text = pool.to_string(suffix);
      if (options_.excluded_suffixes.contains(text)) continue;
      suffixes.push_back({std::move(text), n, suffix});
    }
    std::sort(suffixes.begin(), suffixes.end(), [](const auto& a, const auto& b) {
      return a.count != b.count ? a.count > b.count : a.text < b.text;
    });
    if (suffixes.size() > options_.top_suffixes_per_label) {
      suffixes.resize(options_.top_suffixes_per_label);
    }
    for (const auto& ranked : suffixes) plan.push_back({label_id, ranked.ref});
  }
  return plan;
}

std::vector<std::pair<std::string, std::string>> SubdomainEnumerator::build_plan() const {
  namepool::NamePool& pool = census_->pool();
  std::vector<std::pair<std::string, std::string>> plan;
  for (const PlanEntry& entry : build_plan_refs()) {
    plan.emplace_back(pool.labels().text(entry.label), pool.to_string(entry.suffix));
  }
  return plan;
}

SubdomainEnumerator::CandidateSet SubdomainEnumerator::generate_candidates(
    const std::vector<std::string>& domain_list) const {
  CTWATCH_SPAN("enum.generate_candidates");
  namepool::NamePool& pool = census_->pool();
  CandidateSet out;
  const auto plan = build_plan_refs();
  const auto by_suffix = group_domains(pool, *psl_, domain_list);
  std::size_t upper_bound = 0;
  for (const PlanEntry& entry : plan) {
    const auto it = by_suffix.find(entry.suffix);
    if (it != by_suffix.end()) upper_bound += it->second.domains.size();
  }
  // Composition runs chunked over the plan. Distinct plan entries can
  // never compose the same FQDN (label1.domain1 == label2.domain2 forces
  // the same entry), so the per-chunk `unique` counts partition cleanly,
  // and concatenating chunk refs in chunk order reproduces the serial
  // composition order exactly — chunks cover contiguous plan slices.
  const par::ChunkPlan cplan = par::ChunkPlan::over(plan.size(), 4);
  std::vector<CandidateSet> partials(cplan.chunks);
  par::parallel_for_chunks(plan.size(), 4, [&](std::size_t c, par::IndexRange range) {
    CandidateSet& part = partials[c];
    std::vector<namepool::NameRef> admitted;  // scratch for groups with long names
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const PlanEntry& entry = plan[i];
      const auto it = by_suffix.find(entry.suffix);
      if (it == by_suffix.end()) continue;
      const DomainGroup& group = it->second;
      const std::size_t label_len = pool.labels().text(entry.label).size();
      if (label_len + 1 + group.max_text <= 253) {
        // Whole group fits: one lock acquisition for the entire suffix.
        part.unique += pool.with_prefix_batch(entry.label, group.refs, part.refs);
        part.composed += group.refs.size();
      } else {
        admitted.clear();
        for (const ConstructionDomain& domain : group.domains) {
          if (label_len + 1 + domain.text->size() > 253) {
            ++part.too_long;
            continue;
          }
          admitted.push_back(domain.ref);
        }
        part.unique += pool.with_prefix_batch(entry.label, admitted, part.refs);
        part.composed += admitted.size();
      }
    }
  });
  out.refs.reserve(upper_bound);
  for (CandidateSet& part : partials) {
    out.refs.insert(out.refs.end(), part.refs.begin(), part.refs.end());
    out.composed += part.composed;
    out.unique += part.unique;
    out.too_long += part.too_long;
  }
  return out;
}

FunnelResult SubdomainEnumerator::run(const std::vector<std::string>& domain_list,
                                      const std::set<std::string>& sonar,
                                      const dns::RecursiveResolver& resolver,
                                      const net::RoutingTable& routing, Rng& rng,
                                      SimTime when) const {
  CTWATCH_SPAN("enum.funnel.run");
  obs::ScopedTimer stage_timer(funnel_metrics().stage_us);
  namepool::NamePool& pool = census_->pool();
  FunnelResult result;
  const auto plan = build_plan_refs();
  std::unordered_set<namepool::LabelId> labels_used;
  for (const PlanEntry& entry : plan) labels_used.insert(entry.label);
  result.labels_selected = labels_used.size();
  result.label_suffix_pairs = plan.size();

  // Group the domain list by public suffix once.
  const auto by_suffix = group_domains(pool, *psl_, domain_list);

  // One verification lookup, hardened against a lossy resolver: a query
  // that comes back timed_out/servfail is re-asked up to dns_max_retries
  // times with doubling virtual-time backoff (so outage windows can pass
  // underneath). Only after the budget is spent is the probe `lost` —
  // unknown, which the funnel accounts separately from negative.
  struct Probe {
    bool lost = false;      ///< still lossy after all retries
    bool positive = false;  ///< resolved to an A record
    bool routable = false;
    bool too_long = false;
  };

  // Verification runs chunked over the plan. Each chunk owns a
  // FunnelResult partial, an Rng derived from one base draw, and a
  // chaos::StreamScope keyed by the chunk index — all pure functions of
  // the chunk decomposition, never of the thread count, so the whole
  // funnel (fault draws included) is byte-identical at 1 and N threads.
  // The caller's rng advances by exactly one draw per run.
  const par::ChunkPlan cplan = par::ChunkPlan::over(plan.size(), 4);
  std::vector<FunnelResult> partials(cplan.chunks);
  const std::uint64_t rng_base = rng();

  par::parallel_for_chunks(plan.size(), 4, [&](std::size_t c, par::IndexRange range) {
    FunnelResult& part = partials[c];
    std::uint64_t derive = rng_base ^ (0x9e3779b97f4a7c15ULL * (c + 1));
    Rng chunk_rng(splitmix64(derive));
    chaos::StreamScope scope(c);

    auto probe_name = [&](const dns::DnsName& name) -> Probe {
      Probe p;
      SimTime attempt_when = when;
      std::int64_t backoff = options_.retry_backoff_s;
      for (int attempt = 0;; ++attempt) {
        const dns::ResolveResult res = resolver.resolve(name, dns::RrType::A, attempt_when,
                                                        std::nullopt, options_.max_cname_hops);
        if (!dns::is_lossy(res.status)) {
          if (res.status == dns::ResolveStatus::chain_too_long) {
            p.too_long = true;
            return p;
          }
          if (res.status != dns::ResolveStatus::ok) return p;
          const auto a = res.first_a();
          if (!a) return p;
          p.positive = true;
          p.routable = routing.routable(*a);
          return p;
        }
        if (res.status == dns::ResolveStatus::timed_out) {
          ++part.dns_timeouts;
        } else {
          ++part.dns_servfails;
        }
        if (attempt >= options_.dns_max_retries) {
          p.lost = true;
          return p;
        }
        ++part.dns_retries;
        attempt_when += backoff;
        backoff *= 2;
      }
    };
    auto probe_text = [&](const std::string& fqdn) -> Probe {
      const auto name = dns::DnsName::parse(fqdn);
      if (!name) return Probe{};
      return probe_name(*name);
    };

    for (std::size_t i = range.begin; i < range.end; ++i) {
      const PlanEntry& entry = plan[i];
      const auto it = by_suffix.find(entry.suffix);
      if (it == by_suffix.end()) continue;
      const std::string_view label_text = pool.labels().text(entry.label);
      for (const ConstructionDomain& domain : it->second.domains) {
        ++part.candidates;
        std::string candidate;
        candidate.reserve(label_text.size() + 1 + domain.text->size());
        candidate += label_text;
        candidate += '.';
        candidate += *domain.text;

        // Candidate composition is integer work against the pool; only a
        // name whose textual form would be unparseable (> 253 chars) is
        // skipped, mirroring the string path's parse failure.
        Probe test;
        if (candidate.size() <= 253) {
          const auto comp = pool.with_prefix(domain.ref, entry.label);
          if (comp.fresh) ++part.unique_candidates;
          test = probe_name(dns::DnsName::materialize(pool, comp.ref));
        }
        if (test.lost) {
          // The test answer is unknown; probing the control could not make
          // the candidate confirmable. Count the loss, skip the control.
          ++part.lost_test_queries;
          continue;
        }
        if (test.too_long) ++part.chain_too_long;
        if (test.positive) {
          ++part.test_replies;
        } else {
          ++part.test_unanswered;
        }

        // The paper scans the pseudo-random control for every candidate,
        // not just the answered ones; both reply counts are funnel outputs.
        Probe control;
        if (options_.use_controls) {
          const std::string control_fqdn =
              chunk_rng.alnum_label(options_.control_label_length) + "." + *domain.text;
          control = probe_text(control_fqdn);
          if (control.positive) ++part.control_replies;
        }

        if (!test.positive) continue;
        if (options_.use_routing_filter && !test.routable) {
          ++part.unroutable_dropped;
          continue;
        }
        if (control.lost) {
          // Cannot prove the zone is not a default-A responder: reject
          // conservatively, but count why.
          ++part.lost_control_queries;
          continue;
        }
        if (control.positive) {
          ++part.control_rejected;  // the zone answers anything; reject
          continue;
        }
        ++part.confirmed;
        if (sonar.contains(candidate)) {
          ++part.known_in_sonar;
        } else {
          ++part.novel;
        }
        if (part.discoveries.size() < options_.keep_discoveries) {
          part.discoveries.push_back(candidate);
        }
      }
    }
  });

  // Merge in chunk order. Chunks cover contiguous plan slices, so
  // concatenating the per-chunk discovery samples (each already capped)
  // and truncating to the cap equals the serial capped list.
  std::uint64_t imbalance_max = 0;
  for (FunnelResult& part : partials) {
    result.candidates += part.candidates;
    result.unique_candidates += part.unique_candidates;
    result.test_replies += part.test_replies;
    result.test_unanswered += part.test_unanswered;
    result.control_replies += part.control_replies;
    result.unroutable_dropped += part.unroutable_dropped;
    result.chain_too_long += part.chain_too_long;
    result.control_rejected += part.control_rejected;
    result.confirmed += part.confirmed;
    result.known_in_sonar += part.known_in_sonar;
    result.novel += part.novel;
    result.lost_test_queries += part.lost_test_queries;
    result.lost_control_queries += part.lost_control_queries;
    result.dns_timeouts += part.dns_timeouts;
    result.dns_servfails += part.dns_servfails;
    result.dns_retries += part.dns_retries;
    imbalance_max = std::max(imbalance_max, part.candidates);
    for (std::string& discovery : part.discoveries) {
      if (result.discoveries.size() >= options_.keep_discoveries) break;
      result.discoveries.push_back(std::move(discovery));
    }
  }
  // One bulk update per run keeps the per-candidate loop free of metric
  // traffic while the registry still sees every funnel stage.
  FunnelMetrics& metrics = funnel_metrics();
  if (result.candidates > 0 && cplan.chunks > 0) {
    const double mean =
        static_cast<double>(result.candidates) / static_cast<double>(cplan.chunks);
    metrics.imbalance.set(
        static_cast<std::int64_t>(static_cast<double>(imbalance_max) * 1000.0 / mean));
  }
  metrics.candidates.inc(result.candidates);
  metrics.unique_candidates.inc(result.unique_candidates);
  metrics.test_replies.inc(result.test_replies);
  metrics.control_replies.inc(result.control_replies);
  metrics.unroutable.inc(result.unroutable_dropped);
  metrics.confirmed.inc(result.confirmed);
  metrics.novel.inc(result.novel);
  metrics.lost_test.inc(result.lost_test_queries);
  metrics.lost_control.inc(result.lost_control_queries);
  metrics.dns_retries.inc(result.dns_retries);
  obs::log_info("enum.funnel", "funnel complete",
                {{"candidates", result.candidates},
                 {"test_replies", result.test_replies},
                 {"confirmed", result.confirmed},
                 {"novel", result.novel},
                 {"lost_test", result.lost_test_queries},
                 {"lost_control", result.lost_control_queries}});
  return result;
}

}  // namespace ctwatch::enumeration
