#include "ctwatch/enumeration/census.hpp"

#include <algorithm>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/x509/redaction.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::enumeration {

void SubdomainCensus::add_names(std::span<const std::string> names) {
  for (const std::string& raw : names) {
    ++stats_.names_in;
    if (x509::is_redacted_name(raw)) {
      ++stats_.redacted;
      continue;
    }
    const auto ref = dns::DnsName::parse_into(*pool_, raw);
    if (!ref) {
      ++stats_.invalid_rejected;
      continue;
    }
    if (!seen_.insert(*ref).second) {
      ++stats_.duplicates;
      continue;
    }
    caches_valid_ = false;
    const auto split = psl_->split(*pool_, *ref);
    if (!split) {
      ++stats_.invalid_rejected;  // the name is itself a public suffix
      continue;
    }
    ++stats_.valid_fqdns;
    domains_by_suffix_ref_[split->public_suffix].insert(split->registrable_domain);
    if (split->subdomain_label_count > 0) {
      // The paper counts the label leading the FQDN (e.g. "www" for
      // www.dev.example.org leads; deeper labels describe structure).
      const namepool::LabelId label = pool_->ids(*ref)[0];
      ++label_counts_ref_[label];
      ++label_suffix_ref_[label][split->public_suffix];
      ++total_occurrences_;
    }
  }
}

std::uint64_t SubdomainCensus::label_count(std::string_view label) const {
  const auto id = pool_->labels().find(label);
  if (!id) return 0;
  const auto it = label_counts_ref_.find(*id);
  return it == label_counts_ref_.end() ? 0 : it->second;
}

void SubdomainCensus::materialize_caches() const {
  if (caches_valid_) return;
  label_counts_.clear();
  label_suffix_.clear();
  domains_by_suffix_.clear();
  for (const auto& [id, count] : label_counts_ref_) {
    label_counts_.emplace(pool_->labels().text(id), count);
  }
  for (const auto& [id, suffixes] : label_suffix_ref_) {
    auto& per_label = label_suffix_[std::string(pool_->labels().text(id))];
    for (const auto& [suffix, count] : suffixes) {
      per_label.emplace(pool_->to_string(suffix), count);
    }
  }
  for (const auto& [suffix, domains] : domains_by_suffix_ref_) {
    auto& per_suffix = domains_by_suffix_[pool_->to_string(suffix)];
    for (const namepool::NameRef domain : domains) {
      per_suffix.insert(pool_->to_string(domain));
    }
  }
  caches_valid_ = true;
}

const std::map<std::string, std::uint64_t>& SubdomainCensus::label_counts() const {
  materialize_caches();
  return label_counts_;
}

const std::map<std::string, std::map<std::string, std::uint64_t>>&
SubdomainCensus::label_suffix_counts() const {
  materialize_caches();
  return label_suffix_;
}

const std::map<std::string, std::set<std::string>>& SubdomainCensus::domains_by_suffix() const {
  materialize_caches();
  return domains_by_suffix_;
}

std::vector<std::pair<std::string, std::uint64_t>> SubdomainCensus::top_labels(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> all;
  all.reserve(label_counts_ref_.size());
  for (const auto& [id, count] : label_counts_ref_) {
    all.emplace_back(std::string(pool_->labels().text(id)), count);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::map<std::string, std::string> SubdomainCensus::top_label_per_suffix() const {
  // suffix -> (best label, count); ties go to the lexicographically
  // smaller label, matching the historical ordered-map iteration.
  std::map<std::string, std::pair<std::string, std::uint64_t>> best;
  for (const auto& [id, suffixes] : label_suffix_ref_) {
    const std::string_view label = pool_->labels().text(id);
    for (const auto& [suffix, count] : suffixes) {
      auto [it, inserted] = best.try_emplace(pool_->to_string(suffix));
      auto& slot = it->second;
      if (count > slot.second || (count == slot.second && (inserted || label < slot.first))) {
        slot = {std::string(label), count};
      }
    }
  }
  std::map<std::string, std::string> out;
  for (const auto& [suffix, pair] : best) out[suffix] = pair.first;
  return out;
}

WordlistComparison compare_wordlist(std::span<const std::string> wordlist,
                                    const SubdomainCensus& census) {
  WordlistComparison out;
  out.wordlist_size = wordlist.size();
  for (const std::string& word : wordlist) {
    if (census.label_count(word) > 0) ++out.present_in_ct;
  }
  return out;
}

namespace {
std::vector<std::string> synthetic_wordlist(std::size_t size, std::size_t real_hits,
                                            std::uint64_t salt) {
  // A handful of labels that do occur in the wild, padded with the kind of
  // exotic concatenations brute-force lists are full of.
  static const std::vector<std::string> kRealistic = {
      "www",   "mail",  "smtp",  "ftp",   "webmail", "api",    "dev",   "test",
      "admin", "blog",  "shop",  "cloud", "secure",  "mobile", "cpanel", "remote"};
  std::vector<std::string> out;
  out.reserve(size);
  for (std::size_t i = 0; i < std::min(real_hits, kRealistic.size()); ++i) {
    out.push_back(kRealistic[i]);
  }
  std::uint64_t state = salt;
  while (out.size() < size) {
    const std::uint64_t x = splitmix64(state);
    out.push_back("zz-guess-" + std::to_string(x % 1000000) + "-host");
  }
  return out;
}
}  // namespace

std::vector<std::string> subbrute_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 16, 0x5b);  // the paper: 16 of 101k hit
}

std::vector<std::string> dnsrecon_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 12, 0xd7);  // the paper: 12 of 1.9k hit
}

}  // namespace ctwatch::enumeration
