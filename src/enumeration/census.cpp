#include "ctwatch/enumeration/census.hpp"

#include <algorithm>
#include <iterator>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/obs/obs.hpp"
#include "ctwatch/par/par.hpp"
#include "ctwatch/x509/redaction.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::enumeration {

namespace {
obs::Gauge& census_imbalance_gauge() {
  static obs::Gauge& gauge = obs::Registry::global().gauge("par.imbalance.census");
  return gauge;
}
}  // namespace

void SubdomainCensus::add_names(std::span<const std::string> names) {
  if (names.empty()) return;
  stats_.names_in += names.size();

  // Shard-local partial census state; every field is an order-independent
  // count or set, so the shard-order merge below reproduces the serial
  // single-loop ingestion exactly.
  struct ShardState {
    std::uint64_t inserted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t suffix_only = 0;
    std::uint64_t valid_fqdns = 0;
    std::uint64_t occurrences = 0;
    std::unordered_map<namepool::LabelId, std::uint64_t> label_counts;
    std::unordered_map<namepool::LabelId, RefCountMap> label_suffix;
    std::unordered_map<namepool::NameRef, RefSet, namepool::NameRefHash> domains_by_suffix;
  };
  par::ShardedAccumulator<ShardState> shards(kShards);

  // Phase 1 — parse: chunks of the batch run concurrently (the pool
  // interns canonically, so equal names yield equal refs no matter which
  // thread interns first); surviving refs are bucketed by shard.
  struct ChunkParse {
    std::uint64_t redacted = 0;
    std::uint64_t unparsable = 0;
    std::vector<std::vector<namepool::NameRef>> buckets;
  };
  const par::ChunkPlan plan = par::ChunkPlan::over(names.size(), 256);
  std::vector<ChunkParse> parsed(plan.chunks);
  par::parallel_for_chunks(names.size(), 256, [&](std::size_t c, par::IndexRange range) {
    ChunkParse& out = parsed[c];
    out.buckets.resize(kShards);
    for (std::size_t i = range.begin; i < range.end; ++i) {
      const std::string& raw = names[i];
      if (x509::is_redacted_name(raw)) {
        ++out.redacted;
        continue;
      }
      const auto ref = dns::DnsName::parse_into(*pool_, raw);
      if (!ref) {
        ++out.unparsable;
        continue;
      }
      out.buckets[shards.shard_for(*ref, namepool::NameRefHash{})].push_back(*ref);
    }
  });

  // Phase 2 — count: each shard walks its buckets in chunk order, owning
  // its slice of the census-level dedup set and its partial maps; no two
  // shards ever hold the same key, so nothing is locked and nothing is
  // order-dependent.
  par::parallel_for(kShards, 1, [&](std::size_t s) {
    ShardState& state = shards.shard(s);
    RefSet& seen = seen_shards_[s];
    for (const ChunkParse& chunk : parsed) {
      for (const namepool::NameRef ref : chunk.buckets[s]) {
        if (!seen.insert(ref).second) {
          ++state.duplicates;
          continue;
        }
        ++state.inserted;
        const auto split = psl_->split(*pool_, ref);
        if (!split) {
          ++state.suffix_only;  // the name is itself a public suffix
          continue;
        }
        ++state.valid_fqdns;
        state.domains_by_suffix[split->public_suffix].insert(split->registrable_domain);
        if (split->subdomain_label_count > 0) {
          // The paper counts the label leading the FQDN (e.g. "www" for
          // www.dev.example.org leads; deeper labels describe structure).
          const namepool::LabelId label = pool_->ids(ref)[0];
          ++state.label_counts[label];
          ++state.label_suffix[label][split->public_suffix];
          ++state.occurrences;
        }
      }
    }
  });

  // Phase 3 — merge, serial, chunk order for parse stats then shard order
  // for counts.
  for (const ChunkParse& chunk : parsed) {
    stats_.redacted += chunk.redacted;
    stats_.invalid_rejected += chunk.unparsable;
  }
  std::uint64_t inserted_total = 0;
  shards.for_each_ordered([&](std::size_t, ShardState& state) {
    inserted_total += state.inserted;
    stats_.duplicates += state.duplicates;
    stats_.invalid_rejected += state.suffix_only;
    stats_.valid_fqdns += state.valid_fqdns;
    total_occurrences_ += state.occurrences;
    for (const auto& [label, count] : state.label_counts) label_counts_ref_[label] += count;
    for (auto& [label, suffixes] : state.label_suffix) {
      RefCountMap& target = label_suffix_ref_[label];
      for (const auto& [suffix, count] : suffixes) target[suffix] += count;
    }
    for (auto& [suffix, domains] : state.domains_by_suffix) {
      domains_by_suffix_ref_[suffix].merge(domains);
    }
  });
  if (inserted_total > 0) caches_valid_ = false;
  census_imbalance_gauge().set(shards.imbalance_milli(
      [](const ShardState& state) { return state.inserted + state.duplicates; }));
}

std::uint64_t SubdomainCensus::label_count(std::string_view label) const {
  const auto id = pool_->labels().find(label);
  if (!id) return 0;
  const auto it = label_counts_ref_.find(*id);
  return it == label_counts_ref_.end() ? 0 : it->second;
}

void SubdomainCensus::materialize_caches() const {
  if (caches_valid_) return;
  label_counts_.clear();
  label_suffix_.clear();
  domains_by_suffix_.clear();
  for (const auto& [id, count] : label_counts_ref_) {
    label_counts_.emplace(pool_->labels().text(id), count);
  }
  for (const auto& [id, suffixes] : label_suffix_ref_) {
    auto& per_label = label_suffix_[std::string(pool_->labels().text(id))];
    for (const auto& [suffix, count] : suffixes) {
      per_label.emplace(pool_->to_string(suffix), count);
    }
  }
  for (const auto& [suffix, domains] : domains_by_suffix_ref_) {
    auto& per_suffix = domains_by_suffix_[pool_->to_string(suffix)];
    for (const namepool::NameRef domain : domains) {
      per_suffix.insert(pool_->to_string(domain));
    }
  }
  caches_valid_ = true;
}

const std::map<std::string, std::uint64_t>& SubdomainCensus::label_counts() const {
  materialize_caches();
  return label_counts_;
}

const std::map<std::string, std::map<std::string, std::uint64_t>>&
SubdomainCensus::label_suffix_counts() const {
  materialize_caches();
  return label_suffix_;
}

const std::map<std::string, std::set<std::string>>& SubdomainCensus::domains_by_suffix() const {
  materialize_caches();
  return domains_by_suffix_;
}

std::vector<std::pair<std::string, std::uint64_t>> SubdomainCensus::top_labels(
    std::size_t n) const {
  // Snapshot the ids serially (cheap), then materialize + sort chunk-wise
  // and combine with an order-merge. Label texts are unique, so the rank
  // comparator is a total order and the merged sequence is the same at
  // every thread count.
  std::vector<std::pair<namepool::LabelId, std::uint64_t>> entries;
  entries.reserve(label_counts_ref_.size());
  for (const auto& [id, count] : label_counts_ref_) entries.emplace_back(id, count);
  using Ranked = std::vector<std::pair<std::string, std::uint64_t>>;
  const auto by_rank = [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  };
  Ranked all = par::parallel_reduce(
      entries.size(), 1024, Ranked{},
      [&](std::size_t, par::IndexRange range) {
        Ranked part;
        part.reserve(range.size());
        for (std::size_t i = range.begin; i < range.end; ++i) {
          part.emplace_back(std::string(pool_->labels().text(entries[i].first)),
                            entries[i].second);
        }
        std::sort(part.begin(), part.end(), by_rank);
        return part;
      },
      [&](Ranked a, Ranked b) {
        Ranked merged;
        merged.reserve(a.size() + b.size());
        std::merge(std::make_move_iterator(a.begin()), std::make_move_iterator(a.end()),
                   std::make_move_iterator(b.begin()), std::make_move_iterator(b.end()),
                   std::back_inserter(merged), by_rank);
        return merged;
      });
  if (all.size() > n) all.resize(n);
  return all;
}

std::map<std::string, std::string> SubdomainCensus::top_label_per_suffix() const {
  // suffix -> (best label, count); ties go to the lexicographically
  // smaller label, matching the historical ordered-map iteration.
  std::map<std::string, std::pair<std::string, std::uint64_t>> best;
  for (const auto& [id, suffixes] : label_suffix_ref_) {
    const std::string_view label = pool_->labels().text(id);
    for (const auto& [suffix, count] : suffixes) {
      auto [it, inserted] = best.try_emplace(pool_->to_string(suffix));
      auto& slot = it->second;
      if (count > slot.second || (count == slot.second && (inserted || label < slot.first))) {
        slot = {std::string(label), count};
      }
    }
  }
  std::map<std::string, std::string> out;
  for (const auto& [suffix, pair] : best) out[suffix] = pair.first;
  return out;
}

WordlistComparison compare_wordlist(std::span<const std::string> wordlist,
                                    const SubdomainCensus& census) {
  WordlistComparison out;
  out.wordlist_size = wordlist.size();
  for (const std::string& word : wordlist) {
    if (census.label_count(word) > 0) ++out.present_in_ct;
  }
  return out;
}

namespace {
std::vector<std::string> synthetic_wordlist(std::size_t size, std::size_t real_hits,
                                            std::uint64_t salt) {
  // A handful of labels that do occur in the wild, padded with the kind of
  // exotic concatenations brute-force lists are full of.
  static const std::vector<std::string> kRealistic = {
      "www",   "mail",  "smtp",  "ftp",   "webmail", "api",    "dev",   "test",
      "admin", "blog",  "shop",  "cloud", "secure",  "mobile", "cpanel", "remote"};
  std::vector<std::string> out;
  out.reserve(size);
  for (std::size_t i = 0; i < std::min(real_hits, kRealistic.size()); ++i) {
    out.push_back(kRealistic[i]);
  }
  std::uint64_t state = salt;
  while (out.size() < size) {
    const std::uint64_t x = splitmix64(state);
    out.push_back("zz-guess-" + std::to_string(x % 1000000) + "-host");
  }
  return out;
}
}  // namespace

std::vector<std::string> subbrute_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 16, 0x5b);  // the paper: 16 of 101k hit
}

std::vector<std::string> dnsrecon_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 12, 0xd7);  // the paper: 12 of 1.9k hit
}

}  // namespace ctwatch::enumeration
