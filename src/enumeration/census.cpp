#include "ctwatch/enumeration/census.hpp"

#include <algorithm>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/x509/redaction.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::enumeration {

void SubdomainCensus::add_names(std::span<const std::string> names) {
  for (const std::string& raw : names) {
    ++stats_.names_in;
    if (x509::is_redacted_name(raw)) {
      ++stats_.redacted;
      continue;
    }
    const auto name = dns::DnsName::parse(raw);
    if (!name) {
      ++stats_.invalid_rejected;
      continue;
    }
    const std::string canonical = name->to_string();
    if (!seen_.insert(canonical).second) {
      ++stats_.duplicates;
      continue;
    }
    const auto split = psl_->split(*name);
    if (!split) {
      ++stats_.invalid_rejected;  // the name is itself a public suffix
      continue;
    }
    ++stats_.valid_fqdns;
    domains_by_suffix_[split->public_suffix].insert(split->registrable_domain);
    if (!split->subdomain_labels.empty()) {
      // The paper counts the label leading the FQDN (e.g. "www" for
      // www.dev.example.org leads; deeper labels describe structure).
      const std::string& label = split->subdomain_labels.front();
      ++label_counts_[label];
      ++label_suffix_[label][split->public_suffix];
      ++total_occurrences_;
    }
  }
}

std::vector<std::pair<std::string, std::uint64_t>> SubdomainCensus::top_labels(
    std::size_t n) const {
  std::vector<std::pair<std::string, std::uint64_t>> all(label_counts_.begin(),
                                                         label_counts_.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::map<std::string, std::string> SubdomainCensus::top_label_per_suffix() const {
  // suffix -> (best label, count)
  std::map<std::string, std::pair<std::string, std::uint64_t>> best;
  for (const auto& [label, suffixes] : label_suffix_) {
    for (const auto& [suffix, count] : suffixes) {
      auto& slot = best[suffix];
      if (count > slot.second) slot = {label, count};
    }
  }
  std::map<std::string, std::string> out;
  for (const auto& [suffix, pair] : best) out[suffix] = pair.first;
  return out;
}

WordlistComparison compare_wordlist(std::span<const std::string> wordlist,
                                    const SubdomainCensus& census) {
  WordlistComparison out;
  out.wordlist_size = wordlist.size();
  for (const std::string& word : wordlist) {
    if (census.label_counts().contains(word)) ++out.present_in_ct;
  }
  return out;
}

namespace {
std::vector<std::string> synthetic_wordlist(std::size_t size, std::size_t real_hits,
                                            std::uint64_t salt) {
  // A handful of labels that do occur in the wild, padded with the kind of
  // exotic concatenations brute-force lists are full of.
  static const std::vector<std::string> kRealistic = {
      "www",   "mail",  "smtp",  "ftp",   "webmail", "api",    "dev",   "test",
      "admin", "blog",  "shop",  "cloud", "secure",  "mobile", "cpanel", "remote"};
  std::vector<std::string> out;
  out.reserve(size);
  for (std::size_t i = 0; i < std::min(real_hits, kRealistic.size()); ++i) {
    out.push_back(kRealistic[i]);
  }
  std::uint64_t state = salt;
  while (out.size() < size) {
    const std::uint64_t x = splitmix64(state);
    out.push_back("zz-guess-" + std::to_string(x % 1000000) + "-host");
  }
  return out;
}
}  // namespace

std::vector<std::string> subbrute_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 16, 0x5b);  // the paper: 16 of 101k hit
}

std::vector<std::string> dnsrecon_like_wordlist(std::size_t size) {
  return synthetic_wordlist(size, 12, 0xd7);  // the paper: 12 of 1.9k hit
}

}  // namespace ctwatch::enumeration
