#include "ctwatch/net/ip.hpp"

#include <cstdio>
#include <stdexcept>

#include "ctwatch/obs/log.hpp"
#include "ctwatch/util/strings.hpp"

namespace ctwatch::net {

std::optional<IPv4> IPv4::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  int n = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%n", &a, &b, &c, &d, &n) != 4 ||
      static_cast<std::size_t>(n) != text.size() || a > 255 || b > 255 || c > 255 || d > 255) {
    obs::log_trace("net.ip", "unparseable ipv4 address", {{"text", text}});
    return std::nullopt;
  }
  return IPv4(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
              static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string IPv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", value_ >> 24, value_ >> 16 & 0xff,
                value_ >> 8 & 0xff, value_ & 0xff);
  return buf;
}

IPv6 IPv6::from_hextets(const std::array<std::uint16_t, 8>& h) {
  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[2 * i] = static_cast<std::uint8_t>(h[i] >> 8);
    bytes[2 * i + 1] = static_cast<std::uint8_t>(h[i] & 0xff);
  }
  return IPv6(bytes);
}

std::optional<IPv6> IPv6::parse(const std::string& text) {
  // Split on "::" (at most one).
  const std::size_t gap = text.find("::");
  std::vector<std::string> head, tail;
  if (gap == std::string::npos) {
    head = split(text, ':');
  } else {
    if (text.find("::", gap + 1) != std::string::npos) return std::nullopt;
    const std::string left = text.substr(0, gap);
    const std::string right = text.substr(gap + 2);
    if (!left.empty()) head = split(left, ':');
    if (!right.empty()) tail = split(right, ':');
  }
  if (head.size() + tail.size() > 8 || (gap == std::string::npos && head.size() != 8)) {
    obs::log_trace("net.ip", "unparseable ipv6 address", {{"text", text}});
    return std::nullopt;
  }

  auto parse_hextet = [](const std::string& part) -> std::optional<std::uint16_t> {
    if (part.empty() || part.size() > 4) return std::nullopt;
    std::uint32_t v = 0;
    for (char c : part) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return std::nullopt;
      v = v << 4 | static_cast<std::uint32_t>(digit);
    }
    return static_cast<std::uint16_t>(v);
  };

  std::array<std::uint16_t, 8> hextets{};
  for (std::size_t i = 0; i < head.size(); ++i) {
    const auto h = parse_hextet(head[i]);
    if (!h) return std::nullopt;
    hextets[i] = *h;
  }
  for (std::size_t i = 0; i < tail.size(); ++i) {
    const auto h = parse_hextet(tail[i]);
    if (!h) return std::nullopt;
    hextets[8 - tail.size() + i] = *h;
  }
  return from_hextets(hextets);
}

std::string IPv6::to_string() const {
  std::array<std::uint16_t, 8> h{};
  for (std::size_t i = 0; i < 8; ++i) {
    h[i] = static_cast<std::uint16_t>(static_cast<std::uint16_t>(bytes_[2 * i]) << 8 |
                                      bytes_[2 * i + 1]);
  }
  // Longest zero run (length >= 2) gets "::".
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (h[static_cast<std::size_t>(i)] == 0) {
      int j = i;
      while (j < 8 && h[static_cast<std::size_t>(j)] == 0) ++j;
      if (j - i > best_len) {
        best_len = j - i;
        best_start = i;
      }
      i = j;
    } else {
      ++i;
    }
  }
  if (best_len < 2) best_start = -1;
  std::string out;
  auto emit_range = [&](int from, int to) {
    char buf[8];
    for (int i = from; i < to; ++i) {
      if (i > from) out += ":";
      std::snprintf(buf, sizeof buf, "%x", h[static_cast<std::size_t>(i)]);
      out += buf;
    }
  };
  if (best_start < 0) {
    emit_range(0, 8);
  } else {
    emit_range(0, best_start);
    out += "::";
    emit_range(best_start + best_len, 8);
  }
  return out;
}

Prefix4::Prefix4(IPv4 base, int length) : length_(length) {
  if (length < 0 || length > 32) throw std::invalid_argument("Prefix4: bad length");
  const std::uint32_t mask = length == 0 ? 0 : ~0u << (32 - length);
  base_ = IPv4(base.value() & mask);
}

std::optional<Prefix4> Prefix4::parse(const std::string& text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  const auto addr = IPv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  try {
    std::size_t used = 0;
    len = std::stoi(text.substr(slash + 1), &used);
    if (used != text.size() - slash - 1) return std::nullopt;
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (len < 0 || len > 32) {
    obs::log_trace("net.ip", "unparseable prefix length", {{"text", text}});
    return std::nullopt;
  }
  return Prefix4(*addr, len);
}

bool Prefix4::contains(IPv4 addr) const {
  const std::uint32_t mask = length_ == 0 ? 0 : ~0u << (32 - length_);
  return (addr.value() & mask) == base_.value();
}

bool Prefix4::covers(const Prefix4& other) const {
  return other.length_ >= length_ && contains(other.base_);
}

std::string Prefix4::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

Prefix4 slash24(IPv4 addr) { return Prefix4(addr, 24); }

}  // namespace ctwatch::net
