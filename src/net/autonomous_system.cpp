#include "ctwatch/net/autonomous_system.hpp"

#include <stdexcept>

namespace ctwatch::net {

void AsRegistry::add(const AsInfo& info) { ases_[info.asn] = info; }

void AsRegistry::announce(Asn asn, const Prefix4& prefix) {
  if (!ases_.contains(asn)) throw std::invalid_argument("AsRegistry: unknown ASN");
  announcements_.emplace_back(prefix, asn);
}

std::optional<AsInfo> AsRegistry::lookup(Asn asn) const {
  const auto it = ases_.find(asn);
  if (it == ases_.end()) return std::nullopt;
  return it->second;
}

std::optional<Asn> AsRegistry::origin(IPv4 addr) const {
  std::optional<Asn> best;
  int best_len = -1;
  for (const auto& [prefix, asn] : announcements_) {
    if (prefix.contains(addr) && prefix.length() > best_len) {
      best_len = prefix.length();
      best = asn;
    }
  }
  return best;
}

std::string AsRegistry::name_of(Asn asn) const {
  const auto info = lookup(asn);
  return info ? info->name : "AS" + std::to_string(asn);
}

void RoutingTable::add_route(const Prefix4& prefix) { routes_.push_back(prefix); }

void RoutingTable::add_all(const AsRegistry& registry) {
  for (const auto& [prefix, asn] : registry.announcements()) {
    (void)asn;
    routes_.push_back(prefix);
  }
}

bool RoutingTable::routable(IPv4 addr) const { return match(addr).has_value(); }

std::optional<Prefix4> RoutingTable::match(IPv4 addr) const {
  std::optional<Prefix4> best;
  for (const Prefix4& route : routes_) {
    if (route.contains(addr) && (!best || route.length() > best->length())) best = route;
  }
  return best;
}

}  // namespace ctwatch::net
