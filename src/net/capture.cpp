#include "ctwatch/net/capture.hpp"

#include <algorithm>
#include <set>

namespace ctwatch::net {

std::vector<ConnectionEvent> PacketCapture::between(SimTime from, SimTime to) const {
  std::vector<ConnectionEvent> out;
  for (const auto& e : events_) {
    if (e.time >= from && e.time < to) out.push_back(e);
  }
  return out;
}

std::vector<ConnectionEvent> PacketCapture::with_name(const std::string& fqdn) const {
  std::vector<ConnectionEvent> out;
  for (const auto& e : events_) {
    if (e.sni == fqdn || e.http_host == fqdn) out.push_back(e);
  }
  return out;
}

std::vector<ConnectionEvent> PacketCapture::to_address(const IPv6& addr) const {
  std::vector<ConnectionEvent> out;
  for (const auto& e : events_) {
    if (e.dst6 && *e.dst6 == addr) out.push_back(e);
  }
  return out;
}

std::vector<ConnectionEvent> PacketCapture::to_address(IPv4 addr) const {
  std::vector<ConnectionEvent> out;
  for (const auto& e : events_) {
    if (e.dst4 && *e.dst4 == addr) out.push_back(e);
  }
  return out;
}

std::vector<std::uint16_t> PacketCapture::ports_probed_by(IPv4 src) const {
  std::set<std::uint16_t> ports;
  for (const auto& e : events_) {
    if (e.src == src) ports.insert(e.dst_port);
  }
  return {ports.begin(), ports.end()};
}

}  // namespace ctwatch::net
