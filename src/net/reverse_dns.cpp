#include "ctwatch/net/reverse_dns.hpp"

#include <algorithm>

namespace ctwatch::net {

void ReverseDns::register_v4(IPv4 addr, std::string name) {
  v4_[addr.value()] = std::move(name);
}

void ReverseDns::register_v6(const IPv6& addr, std::string name) {
  v6_[addr.bytes()] = std::move(name);
}

std::optional<std::string> ReverseDns::lookup(IPv4 addr) const {
  const auto it = v4_.find(addr.value());
  if (it == v4_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> ReverseDns::lookup(const IPv6& addr) const {
  const auto it = v6_.find(addr.bytes());
  if (it == v6_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> ReverseDns::walk_v6(BytesView prefix) const {
  std::vector<std::string> out;
  for (const auto& [bytes, name] : v6_) {
    if (prefix.size() <= bytes.size() &&
        std::equal(prefix.begin(), prefix.end(), bytes.begin())) {
      out.push_back(name);
    }
  }
  return out;
}

}  // namespace ctwatch::net
