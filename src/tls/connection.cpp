#include "ctwatch/tls/connection.hpp"

namespace ctwatch::tls {

std::string to_string(SctDelivery delivery) {
  switch (delivery) {
    case SctDelivery::certificate:
      return "cert";
    case SctDelivery::tls_extension:
      return "tls";
    case SctDelivery::ocsp_staple:
      return "ocsp";
  }
  return "?";
}

SctList embedded_scts(const x509::Certificate& certificate) {
  const auto list = certificate.sct_list_value();
  if (!list) return {};
  try {
    return ct::parse_sct_list(*list);
  } catch (const std::invalid_argument&) {
    return {};
  }
}

}  // namespace ctwatch::tls
