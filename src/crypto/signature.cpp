#include "ctwatch/crypto/signature.hpp"

#include <stdexcept>

namespace ctwatch::crypto {

std::string to_string(SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::ecdsa_p256_sha256:
      return "ecdsa-p256-sha256";
    case SignatureScheme::hmac_sha256_simulated:
      return "hmac-sha256-simulated";
  }
  return "unknown";
}

std::unique_ptr<SimulatedSigner> SimulatedSigner::derive(const std::string& seed_label) {
  const Digest key = hmac_sha256(to_bytes("ctwatch-simulated-signer-v1"), to_bytes(seed_label));
  return std::make_unique<SimulatedSigner>(Bytes(key.begin(), key.end()));
}

SignatureBlob SimulatedSigner::sign(BytesView message) const {
  const Digest mac = hmac_sha256(key_, message);
  return SignatureBlob{scheme(), Bytes(mac.begin(), mac.end())};
}

bool verify_signature(BytesView public_key, BytesView message, const SignatureBlob& sig) {
  try {
    switch (sig.scheme) {
      case SignatureScheme::ecdsa_p256_sha256: {
        const AffinePoint q = AffinePoint::decode(public_key);
        return ecdsa_verify(q, message, EcdsaSignature::from_bytes(sig.data));
      }
      case SignatureScheme::hmac_sha256_simulated: {
        const Digest mac = hmac_sha256(public_key, message);
        if (sig.data.size() != mac.size()) return false;
        return std::equal(mac.begin(), mac.end(), sig.data.begin());
      }
    }
  } catch (const std::invalid_argument&) {
    return false;
  }
  return false;
}

std::unique_ptr<Signer> make_signer(const std::string& seed_label, SignatureScheme scheme) {
  switch (scheme) {
    case SignatureScheme::ecdsa_p256_sha256:
      return EcdsaSigner::derive(seed_label);
    case SignatureScheme::hmac_sha256_simulated:
      return SimulatedSigner::derive(seed_label);
  }
  throw std::invalid_argument("make_signer: unknown scheme");
}

}  // namespace ctwatch::crypto
