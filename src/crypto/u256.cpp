#include "ctwatch/crypto/u256.hpp"

#include <stdexcept>

namespace ctwatch::crypto {

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("U256: invalid hex digit");
}
}  // namespace

U256 U256::from_hex(const std::string& hex) {
  if (hex.empty() || hex.size() > 64) throw std::invalid_argument("U256::from_hex: bad length");
  U256 out;
  int shift = 0;
  std::size_t limb_idx = 0;
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    const auto v = static_cast<std::uint64_t>(hex_digit(*it));
    out.limb[limb_idx] |= v << shift;
    shift += 4;
    if (shift == 64) {
      shift = 0;
      ++limb_idx;
    }
  }
  return out;
}

U256 U256::from_bytes(BytesView be32) {
  if (be32.size() != 32) throw std::invalid_argument("U256::from_bytes: need 32 bytes");
  U256 out;
  for (int i = 0; i < 32; ++i) {
    const int limb_idx = (31 - i) / 8;
    const int byte_idx = (31 - i) % 8;
    out.limb[static_cast<std::size_t>(limb_idx)] |=
        static_cast<std::uint64_t>(be32[static_cast<std::size_t>(i)]) << (8 * byte_idx);
  }
  return out;
}

U256 U256::from_bytes_truncated(BytesView be) {
  Bytes padded(32, 0);
  const std::size_t take = std::min<std::size_t>(32, be.size());
  // Keep the *most significant* 32 bytes if longer; right-align if shorter.
  for (std::size_t i = 0; i < take; ++i) {
    padded[32 - take + i] = be[be.size() > 32 ? i : be.size() - take + i];
  }
  return from_bytes(padded);
}

Bytes U256::to_bytes() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    const int limb_idx = (31 - i) / 8;
    const int byte_idx = (31 - i) % 8;
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(
        limb[static_cast<std::size_t>(limb_idx)] >> (8 * byte_idx));
  }
  return out;
}

std::string U256::to_hex() const { return hex_encode(to_bytes()); }

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[static_cast<std::size_t>(i)] != 0) {
      return 64 * i + 64 - __builtin_clzll(limb[static_cast<std::size_t>(i)]);
    }
  }
  return 0;
}

bool U256::add(const U256& a, const U256& b, U256& out) {
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return carry != 0;
}

bool U256::sub(const U256& a, const U256& b, U256& out) {
  unsigned __int128 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const unsigned __int128 diff =
        static_cast<unsigned __int128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  return borrow != 0;
}

U512 U256::mul(const U256& a, const U256& b) {
  U512 out;
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const unsigned __int128 cur = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                                    out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

U256 U256::shr1() const {
  U256 out;
  for (std::size_t i = 0; i < 4; ++i) {
    out.limb[i] = limb[i] >> 1;
    if (i < 3) out.limb[i] |= limb[i + 1] << 63;
  }
  return out;
}

namespace modmath {

U256 add(const U256& a, const U256& b, const U256& m) {
  U256 sum;
  const bool carry = U256::add(a, b, sum);
  if (carry || sum >= m) {
    U256 reduced;
    U256::sub(sum, m, reduced);
    return reduced;
  }
  return sum;
}

U256 sub(const U256& a, const U256& b, const U256& m) {
  U256 diff;
  if (U256::sub(a, b, diff)) {
    U256 wrapped;
    U256::add(diff, m, wrapped);
    return wrapped;
  }
  return diff;
}

U256 reduce(const U256& x, const U256& m) {
  U256 r = x;
  while (r >= m) {
    U256 tmp;
    U256::sub(r, m, tmp);
    r = tmp;
  }
  return r;
}

U256 reduce(const U512& x, const U256& m) {
  if (m.is_zero()) throw std::domain_error("modmath::reduce: zero modulus");
  // Binary long division over the 512-bit value. r accumulates the remainder
  // and never exceeds 2m before the conditional subtraction.
  U256 r;
  const int top = 511;
  for (int i = top; i >= 0; --i) {
    // r = (r << 1) | bit(i)
    bool overflow = r.bit(255);
    U256 shifted;
    for (std::size_t k = 3; k > 0; --k) {
      shifted.limb[k] = (r.limb[k] << 1) | (r.limb[k - 1] >> 63);
    }
    shifted.limb[0] = (r.limb[0] << 1) | (x.bit(i) ? 1u : 0u);
    r = shifted;
    if (overflow || r >= m) {
      U256 tmp;
      U256::sub(r, m, tmp);
      r = tmp;
    }
  }
  return r;
}

U256 mul(const U256& a, const U256& b, const U256& m) {
  return reduce(U256::mul(a, b), m);
}

U256 inverse(const U256& a, const U256& m) {
  if (a.is_zero()) throw std::domain_error("modmath::inverse of zero");
  if (!m.is_odd()) throw std::domain_error("modmath::inverse requires odd modulus");
  // Binary extended GCD (HAC Algorithm 14.61 style, specialized for odd m).
  U256 u = reduce(a, m);
  U256 v = m;
  U256 x1{1};
  U256 x2{0};
  while (!u.is_zero() && !(u == U256{1}) && !(v == U256{1})) {
    while (!u.is_odd()) {
      u = u.shr1();
      if (x1.is_odd()) {
        U256 t;
        const bool carry = U256::add(x1, m, t);
        x1 = t.shr1();
        if (carry) x1.limb[3] |= 1ULL << 63;
      } else {
        x1 = x1.shr1();
      }
    }
    while (!v.is_odd()) {
      v = v.shr1();
      if (x2.is_odd()) {
        U256 t;
        const bool carry = U256::add(x2, m, t);
        x2 = t.shr1();
        if (carry) x2.limb[3] |= 1ULL << 63;
      } else {
        x2 = x2.shr1();
      }
    }
    if (u >= v) {
      U256 t;
      U256::sub(u, v, t);
      u = t;
      x1 = sub(x1, x2, m);
    } else {
      U256 t;
      U256::sub(v, u, t);
      v = t;
      x2 = sub(x2, x1, m);
    }
  }
  if (u.is_zero() && !(v == U256{1})) throw std::domain_error("modmath::inverse: not invertible");
  return (u == U256{1}) ? reduce(x1, m) : reduce(x2, m);
}

U256 pow(const U256& a, const U256& e, const U256& m) {
  U256 result{1};
  U256 base = reduce(a, m);
  const int bits = e.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (e.bit(i)) result = mul(result, base, m);
    base = mul(base, base, m);
  }
  return result;
}

}  // namespace modmath

}  // namespace ctwatch::crypto
