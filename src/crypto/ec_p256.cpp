#include "ctwatch/crypto/ec_p256.hpp"

#include <cstring>
#include <stdexcept>

namespace ctwatch::crypto {

namespace p256 {

const U256& prime() {
  static const U256 p = U256::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  return p;
}

const U256& order() {
  static const U256 n = U256::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  return n;
}

const U256& coeff_b() {
  static const U256 b = U256::from_hex(
      "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  return b;
}

namespace {

// Signed accumulator over 256-bit values: tracks value + overflow*2^256.
struct Acc {
  U256 v;
  int overflow = 0;  // multiples of 2^256, may be negative

  void add(const U256& x) {
    if (U256::add(v, x, v)) ++overflow;
  }
  void sub(const U256& x) {
    if (U256::sub(v, x, v)) --overflow;
  }
};

// Builds a U256 from eight 32-bit words given most-significant first.
U256 words_be(std::uint32_t w7, std::uint32_t w6, std::uint32_t w5, std::uint32_t w4,
              std::uint32_t w3, std::uint32_t w2, std::uint32_t w1, std::uint32_t w0) {
  return U256{static_cast<std::uint64_t>(w1) << 32 | w0,
              static_cast<std::uint64_t>(w3) << 32 | w2,
              static_cast<std::uint64_t>(w5) << 32 | w4,
              static_cast<std::uint64_t>(w7) << 32 | w6};
}

// NIST fast reduction modulo p (FIPS 186-4, D.2.3) for a 512-bit input.
U256 reduce_p(const U512& t) {
  std::uint32_t c[16];
  for (int i = 0; i < 16; ++i) {
    c[i] = static_cast<std::uint32_t>(t.limb[static_cast<std::size_t>(i / 2)] >> (32 * (i % 2)));
  }
  const U256 s1 = words_be(c[7], c[6], c[5], c[4], c[3], c[2], c[1], c[0]);
  const U256 s2 = words_be(c[15], c[14], c[13], c[12], c[11], 0, 0, 0);
  const U256 s3 = words_be(0, c[15], c[14], c[13], c[12], 0, 0, 0);
  const U256 s4 = words_be(c[15], c[14], 0, 0, 0, c[10], c[9], c[8]);
  const U256 s5 = words_be(c[8], c[13], c[15], c[14], c[13], c[11], c[10], c[9]);
  const U256 s6 = words_be(c[10], c[8], 0, 0, 0, c[13], c[12], c[11]);
  const U256 s7 = words_be(c[11], c[9], 0, 0, c[15], c[14], c[13], c[12]);
  const U256 s8 = words_be(c[12], 0, c[10], c[9], c[8], c[15], c[14], c[13]);
  const U256 s9 = words_be(c[13], 0, c[11], c[10], c[9], 0, c[15], c[14]);

  Acc acc{s1, 0};
  acc.add(s2);
  acc.add(s2);
  acc.add(s3);
  acc.add(s3);
  acc.add(s4);
  acc.add(s5);
  acc.sub(s6);
  acc.sub(s7);
  acc.sub(s8);
  acc.sub(s9);

  const U256& p = prime();
  while (acc.overflow > 0) {
    acc.sub(p);
  }
  while (acc.overflow < 0) {
    acc.add(p);
  }
  U256 r = acc.v;
  while (r >= p) {
    U256 tmp;
    U256::sub(r, p, tmp);
    r = tmp;
  }
  return r;
}

}  // namespace

U256 field_mul(const U256& a, const U256& b) { return reduce_p(U256::mul(a, b)); }
U256 field_sqr(const U256& a) { return reduce_p(U256::mul(a, a)); }

}  // namespace p256

namespace {

using p256::field_mul;
using p256::field_sqr;

U256 field_add(const U256& a, const U256& b) { return modmath::add(a, b, p256::prime()); }
U256 field_sub(const U256& a, const U256& b) { return modmath::sub(a, b, p256::prime()); }
U256 field_inv(const U256& a) { return modmath::inverse(a, p256::prime()); }

// Jacobian projective point: (X, Y, Z) with x = X/Z^2, y = Y/Z^3.
struct Jacobian {
  U256 X, Y, Z;  // Z == 0 encodes the point at infinity

  static Jacobian infinity() { return {U256{1}, U256{1}, U256{0}}; }
  static Jacobian from_affine(const AffinePoint& p) {
    if (p.infinity) return infinity();
    return {p.x, p.y, U256{1}};
  }
  [[nodiscard]] bool is_infinity() const { return Z.is_zero(); }

  [[nodiscard]] AffinePoint to_affine() const {
    if (is_infinity()) return AffinePoint{};
    const U256 zinv = field_inv(Z);
    const U256 zinv2 = field_sqr(zinv);
    const U256 zinv3 = field_mul(zinv2, zinv);
    return AffinePoint::make(field_mul(X, zinv2), field_mul(Y, zinv3));
  }
};

// dbl-2001-b: exploits a = -3.
Jacobian jacobian_double(const Jacobian& p) {
  if (p.is_infinity() || p.Y.is_zero()) return Jacobian::infinity();
  const U256 delta = field_sqr(p.Z);
  const U256 gamma = field_sqr(p.Y);
  const U256 beta = field_mul(p.X, gamma);
  const U256 t0 = field_sub(p.X, delta);
  const U256 t1 = field_add(p.X, delta);
  const U256 t2 = field_mul(t0, t1);
  const U256 alpha3 = field_add(field_add(t2, t2), t2);  // 3*(X-delta)*(X+delta)
  const U256 beta4 = field_add(field_add(beta, beta), field_add(beta, beta));
  const U256 beta8 = field_add(beta4, beta4);
  const U256 X3 = field_sub(field_sqr(alpha3), beta8);
  const U256 zy = field_add(p.Y, p.Z);
  const U256 Z3 = field_sub(field_sub(field_sqr(zy), gamma), delta);
  const U256 gamma2 = field_sqr(gamma);
  const U256 gamma2_8 = field_add(field_add(field_add(gamma2, gamma2), field_add(gamma2, gamma2)),
                                  field_add(field_add(gamma2, gamma2), field_add(gamma2, gamma2)));
  const U256 Y3 = field_sub(field_mul(alpha3, field_sub(beta4, X3)), gamma2_8);
  return {X3, Y3, Z3};
}

// add-2007-bl general Jacobian addition.
Jacobian jacobian_add(const Jacobian& p, const Jacobian& q) {
  if (p.is_infinity()) return q;
  if (q.is_infinity()) return p;
  const U256 Z1Z1 = field_sqr(p.Z);
  const U256 Z2Z2 = field_sqr(q.Z);
  const U256 U1 = field_mul(p.X, Z2Z2);
  const U256 U2 = field_mul(q.X, Z1Z1);
  const U256 S1 = field_mul(field_mul(p.Y, q.Z), Z2Z2);
  const U256 S2 = field_mul(field_mul(q.Y, p.Z), Z1Z1);
  const U256 H = field_sub(U2, U1);
  const U256 rr = field_add(field_sub(S2, S1), field_sub(S2, S1));
  if (H.is_zero()) {
    if (rr.is_zero()) return jacobian_double(p);
    return Jacobian::infinity();
  }
  const U256 H2 = field_add(H, H);
  const U256 I = field_sqr(H2);
  const U256 J = field_mul(H, I);
  const U256 V = field_mul(U1, I);
  const U256 X3 = field_sub(field_sub(field_sqr(rr), J), field_add(V, V));
  const U256 S1J = field_mul(S1, J);
  const U256 Y3 = field_sub(field_mul(rr, field_sub(V, X3)), field_add(S1J, S1J));
  const U256 Z3 = field_mul(
      field_sub(field_sub(field_sqr(field_add(p.Z, q.Z)), Z1Z1), Z2Z2), H);
  return {X3, Y3, Z3};
}

Jacobian jacobian_multiply(const U256& k, const Jacobian& point) {
  Jacobian result = Jacobian::infinity();
  const int bits = k.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    result = jacobian_double(result);
    if (k.bit(i)) result = jacobian_add(result, point);
  }
  return result;
}

}  // namespace

bool AffinePoint::on_curve() const {
  if (infinity) return true;
  const U256& p = p256::prime();
  if (!(x < p) || !(y < p)) return false;
  // y^2 == x^3 - 3x + b (mod p)
  const U256 lhs = field_sqr(y);
  const U256 x3 = field_mul(field_sqr(x), x);
  const U256 threex = field_add(field_add(x, x), x);
  const U256 rhs = field_add(field_sub(x3, threex), p256::coeff_b());
  return lhs == rhs;
}

Bytes AffinePoint::encode() const {
  if (infinity) return Bytes{0x00};
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  const Bytes xb = x.to_bytes();
  const Bytes yb = y.to_bytes();
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

AffinePoint AffinePoint::decode(BytesView data) {
  if (data.size() == 1 && data[0] == 0x00) return AffinePoint{};
  if (data.size() != 65 || data[0] != 0x04) {
    throw std::invalid_argument("AffinePoint::decode: not an uncompressed SEC1 point");
  }
  const AffinePoint p =
      AffinePoint::make(U256::from_bytes(data.subspan(1, 32)), U256::from_bytes(data.subspan(33, 32)));
  if (!p.on_curve()) throw std::invalid_argument("AffinePoint::decode: point not on curve");
  return p;
}

const AffinePoint& p256_generator() {
  static const AffinePoint g = AffinePoint::make(
      U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"),
      U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"));
  return g;
}

AffinePoint p256_multiply(const U256& k, const AffinePoint& point) {
  return jacobian_multiply(modmath::reduce(k, p256::order()), Jacobian::from_affine(point))
      .to_affine();
}

AffinePoint p256_double_multiply(const U256& u1, const U256& u2, const AffinePoint& q) {
  const Jacobian a = jacobian_multiply(u1, Jacobian::from_affine(p256_generator()));
  const Jacobian b = jacobian_multiply(u2, Jacobian::from_affine(q));
  return jacobian_add(a, b).to_affine();
}

AffinePoint p256_add(const AffinePoint& a, const AffinePoint& b) {
  return jacobian_add(Jacobian::from_affine(a), Jacobian::from_affine(b)).to_affine();
}

Bytes EcdsaSignature::to_bytes() const {
  Bytes out = r.to_bytes();
  const Bytes sb = s.to_bytes();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

EcdsaSignature EcdsaSignature::from_bytes(BytesView data) {
  if (data.size() != 64) throw std::invalid_argument("EcdsaSignature::from_bytes: need 64 bytes");
  return EcdsaSignature{U256::from_bytes(data.subspan(0, 32)), U256::from_bytes(data.subspan(32, 32))};
}

EcdsaKeyPair EcdsaKeyPair::derive(const std::string& seed_label) {
  // HKDF from the label; loop until the candidate lands in [1, n-1].
  const Bytes label = to_bytes(seed_label);
  const Digest prk = hmac_sha256(to_bytes("ctwatch-ecdsa-keygen-v1"), label);
  for (std::uint8_t attempt = 0;; ++attempt) {
    Bytes info = to_bytes("key");
    info.push_back(attempt);
    const Bytes candidate = hkdf_expand(BytesView{prk.data(), prk.size()}, info, 32);
    const U256 d = U256::from_bytes(candidate);
    if (!d.is_zero() && d < p256::order()) return from_private(d);
  }
}

EcdsaKeyPair EcdsaKeyPair::from_private(const U256& d) {
  if (d.is_zero() || !(d < p256::order())) {
    throw std::invalid_argument("EcdsaKeyPair: private scalar out of range");
  }
  return EcdsaKeyPair{d, p256_multiply(d, p256_generator())};
}

namespace {

// Digest -> scalar (bits2int for SHA-256 on a 256-bit curve, then mod n).
U256 digest_to_scalar(const Digest& digest) {
  U256 e = U256::from_bytes(BytesView{digest.data(), digest.size()});
  const U256& n = p256::order();
  if (!(e < n)) {
    U256 tmp;
    U256::sub(e, n, tmp);
    e = tmp;
  }
  return e;
}

// RFC 6979-style deterministic nonce derivation (HMAC-DRBG construction).
U256 deterministic_nonce(const U256& d, const Digest& digest) {
  std::array<std::uint8_t, 32> V{}, K{};
  V.fill(0x01);
  K.fill(0x00);
  const Bytes x = d.to_bytes();
  const Bytes h(digest.begin(), digest.end());

  auto hmac = [](const std::array<std::uint8_t, 32>& key, const Bytes& msg) {
    return hmac_sha256(BytesView{key.data(), key.size()}, msg);
  };
  auto step = [&](std::uint8_t tag, bool include_data) {
    Bytes msg(V.begin(), V.end());
    msg.push_back(tag);
    if (include_data) {
      msg.insert(msg.end(), x.begin(), x.end());
      msg.insert(msg.end(), h.begin(), h.end());
    }
    K = hmac(K, msg);
    V = hmac(K, Bytes(V.begin(), V.end()));
  };
  step(0x00, true);
  step(0x01, true);
  const U256& n = p256::order();
  while (true) {
    V = hmac(K, Bytes(V.begin(), V.end()));
    const U256 k = U256::from_bytes(BytesView{V.data(), V.size()});
    if (!k.is_zero() && k < n) return k;
    step(0x00, false);
  }
}

}  // namespace

EcdsaSignature EcdsaKeyPair::sign_digest(const Digest& digest) const {
  const U256& n = p256::order();
  const U256 e = digest_to_scalar(digest);
  U256 k = deterministic_nonce(d_, digest);
  while (true) {
    const AffinePoint R = p256_multiply(k, p256_generator());
    const U256 r = modmath::reduce(R.x, n);
    if (!r.is_zero()) {
      const U256 kinv = modmath::inverse(k, n);
      const U256 rd = modmath::mul(r, d_, n);
      const U256 s = modmath::mul(kinv, modmath::add(e, rd, n), n);
      if (!s.is_zero()) return EcdsaSignature{r, s};
    }
    // Exceedingly unlikely; perturb the nonce deterministically and retry.
    k = modmath::add(k, U256{1}, n);
    if (k.is_zero()) k = U256{1};
  }
}

EcdsaSignature EcdsaKeyPair::sign(BytesView message) const {
  return sign_digest(Sha256::hash(message));
}

bool ecdsa_verify_digest(const AffinePoint& public_key, const Digest& digest,
                         const EcdsaSignature& sig) {
  const U256& n = p256::order();
  if (public_key.infinity || !public_key.on_curve()) return false;
  if (sig.r.is_zero() || !(sig.r < n) || sig.s.is_zero() || !(sig.s < n)) return false;
  const U256 e = digest_to_scalar(digest);
  const U256 w = modmath::inverse(sig.s, n);
  const U256 u1 = modmath::mul(e, w, n);
  const U256 u2 = modmath::mul(sig.r, w, n);
  const AffinePoint R = p256_double_multiply(u1, u2, public_key);
  if (R.infinity) return false;
  return modmath::reduce(R.x, n) == sig.r;
}

bool ecdsa_verify(const AffinePoint& public_key, BytesView message, const EcdsaSignature& sig) {
  return ecdsa_verify_digest(public_key, Sha256::hash(message), sig);
}

}  // namespace ctwatch::crypto
