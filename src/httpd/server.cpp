#include "ctwatch/httpd/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#else
#include <poll.h>
#endif

#include "ctwatch/obs/flight.hpp"
#include "ctwatch/obs/log.hpp"
#include "ctwatch/obs/metrics.hpp"
#include "ctwatch/obs/trace.hpp"

namespace ctwatch::httpd {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnId = 2;
/// Parser-buffer ceiling: past this we stop draining the socket and let
/// TCP flow control push back (re-polled from the sweep, so no ET stall).
constexpr std::size_t kReadPauseSlack = 64 * 1024;

struct EdgeMetrics {
  obs::Counter& accepted;
  obs::Counter& closed;
  obs::Counter& refused;
  obs::Counter& requests;
  obs::Counter& responses;
  obs::Counter& parse_rejects;
  obs::Counter& evicted_idle;
  obs::Counter& evicted_slow;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& chaos_accept_drops;
  obs::Counter& chaos_read_faults;
  obs::Counter& chaos_respond_faults;
  obs::Counter& stale_completions;
  obs::Gauge& open_conns;
};

EdgeMetrics& edge_metrics() {
  static EdgeMetrics metrics{
      obs::Registry::global().counter("httpd.conn.accepted"),
      obs::Registry::global().counter("httpd.conn.closed"),
      obs::Registry::global().counter("httpd.conn.refused"),
      obs::Registry::global().counter("httpd.requests"),
      obs::Registry::global().counter("httpd.responses"),
      obs::Registry::global().counter("httpd.parse_rejects"),
      obs::Registry::global().counter("httpd.conn.evicted_idle"),
      obs::Registry::global().counter("httpd.conn.evicted_slow"),
      obs::Registry::global().counter("httpd.bytes_in"),
      obs::Registry::global().counter("httpd.bytes_out"),
      obs::Registry::global().counter("httpd.chaos.accept_drops"),
      obs::Registry::global().counter("httpd.chaos.read_faults"),
      obs::Registry::global().counter("httpd.chaos.respond_faults"),
      obs::Registry::global().counter("httpd.completions_stale"),
      obs::Registry::global().gauge("httpd.conn.open"),
  };
  return metrics;
}

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// ---------------------------------------------------------------------------
// Poller: edge-triggered epoll on Linux, poll(2) elsewhere. The loop body
// is written to be correct under both (it always drains reads and writes
// to EAGAIN and tracks write interest itself).
// ---------------------------------------------------------------------------

struct PollEvent {
  std::uint64_t id = 0;
  bool readable = false;
  bool writable = false;
  bool error = false;
};

#if defined(__linux__)

class Poller {
 public:
  Poller() = default;
  ~Poller() {
    if (epfd_ >= 0) ::close(epfd_);
  }
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  bool init() {
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    return epfd_ >= 0;
  }

  bool add(int fd, std::uint64_t id, bool want_write) {
    return ctl(EPOLL_CTL_ADD, fd, id, want_write);
  }
  bool mod(int fd, std::uint64_t id, bool want_write) {
    return ctl(EPOLL_CTL_MOD, fd, id, want_write);
  }
  void del(int fd) { ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr); }

  void wait(int timeout_ms, std::vector<PollEvent>& out) {
    epoll_event events[128];
    const int n = ::epoll_wait(epfd_, events, 128, timeout_ms);
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.id = events[i].data.u64;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
  }

 private:
  bool ctl(int op, int fd, std::uint64_t id, bool want_write) {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET | (want_write ? EPOLLOUT : 0u);
    ev.data.u64 = id;
    return ::epoll_ctl(epfd_, op, fd, &ev) == 0;
  }
  int epfd_ = -1;
};

#else  // poll(2) fallback (level-triggered; same loop body works)

class Poller {
 public:
  bool init() { return true; }
  bool add(int fd, std::uint64_t id, bool want_write) {
    entries_[id] = {fd, want_write};
    return true;
  }
  bool mod(int fd, std::uint64_t id, bool want_write) {
    entries_[id] = {fd, want_write};
    return true;
  }
  void del(int fd) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.fd == fd) {
        entries_.erase(it);
        return;
      }
    }
  }

  void wait(int timeout_ms, std::vector<PollEvent>& out) {
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    fds.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) {
      short interest = POLLIN;
      if (entry.want_write) interest |= POLLOUT;
      fds.push_back({entry.fd, interest, 0});
      ids.push_back(id);
    }
    if (::poll(fds.data(), static_cast<nfds_t>(fds.size()), timeout_ms) <= 0) return;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      PollEvent ev;
      ev.id = ids[i];
      ev.readable = (fds[i].revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (fds[i].revents & POLLOUT) != 0;
      ev.error = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
  }

 private:
  struct Entry {
    int fd = -1;
    bool want_write = false;
  };
  std::unordered_map<std::uint64_t, Entry> entries_;
};

#endif

// ---------------------------------------------------------------------------
// Connection state machine
// ---------------------------------------------------------------------------

/// One queued response position. Slots fill out of order (async handlers)
/// but flush strictly in request order.
struct Slot {
  std::uint64_t seq = 0;
  bool ready = false;
  bool request_keep_alive = true;
  Response response;
  Clock::time_point parsed_at{};
  Clock::time_point ready_at{};  ///< earliest flush time (chaos latency)
  const Router::Route* route = nullptr;
};

struct Conn {
  int fd = -1;
  std::uint64_t id = 0;
  RequestParser parser;
  std::deque<Slot> slots;
  std::uint64_t next_slot_seq = 0;
  std::string out;
  std::size_t out_pos = 0;
  bool want_write = false;      ///< EPOLLOUT currently armed
  bool close_after_flush = false;
  bool no_more_requests = false;  ///< stop parsing (close requested / parse error)
  bool peer_eof = false;
  bool read_paused = false;  ///< parser buffer full; socket left undrained
  bool in_flush = false;     ///< flush() re-entrancy guard (sync completions)
  bool flush_again = false;  ///< a re-entrant flush was requested
  Clock::time_point last_activity{};
  Clock::time_point stall_since{};      ///< write stall clock (valid while out pending)
  Clock::time_point parse_resume_at{};  ///< chaos read stall deadline
};

/// Cross-thread mailbox: fd handoffs from the acceptor and response
/// completions from any thread. The wake pipe's write end lives and dies
/// under `mu` so completions can never write a closed fd.
struct InboxItem {
  int new_fd = -1;
  std::uint64_t conn_id = 0;
  std::uint64_t slot_seq = 0;
  bool has_response = false;
  Response response;
};

struct Inbox {
  std::mutex mu;
  bool closed = false;
  int wake_write_fd = -1;
  std::vector<InboxItem> items;
};

}  // namespace

struct Server::WorkerState {
  Server* server = nullptr;
  std::size_t index = 0;
  Poller poller;
  int wake_read_fd = -1;
  std::shared_ptr<Inbox> inbox;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = kFirstConnId;
  std::size_t rr_next = 0;  ///< acceptor's round-robin cursor (worker 0)
  Clock::time_point last_sweep{};
  std::vector<PollEvent> events;
  std::vector<std::uint64_t> scratch_ids;
};

namespace {

thread_local Server::WorkerState* t_current_worker = nullptr;

void wake_inbox_locked(Inbox& inbox) {
  if (inbox.wake_write_fd < 0) return;
  const char byte = 'x';
  [[maybe_unused]] const ssize_t n = ::write(inbox.wake_write_fd, &byte, 1);
}

std::uint64_t chaos_now_us() {
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch).count());
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerLoop: all per-connection logic. Free-standing struct (friended)
// so server.hpp stays free of the Conn/Poller internals.
// ---------------------------------------------------------------------------

struct WorkerLoop {
  Server& server;
  Server::WorkerState& w;
  EdgeMetrics& metrics = edge_metrics();

  const ServerOptions& opts() const { return server.options_; }

  // --- lifecycle ---

  void run() {
    t_current_worker = &w;
    while (server.running_.load(std::memory_order_acquire)) {
      w.events.clear();
      w.poller.wait(20, w.events);
      if (!server.running_.load(std::memory_order_acquire)) break;
      for (const PollEvent& ev : w.events) {
        if (ev.id == kWakeId) {
          drain_wake();
        } else if (ev.id == kListenId) {
          do_accept();
        } else {
          handle_conn_event(ev);
        }
      }
      drain_inbox();
      sweep();
    }
    shutdown();
    t_current_worker = nullptr;
  }

  void shutdown() {
    for (auto& [id, conn] : w.conns) {
      ::close(conn->fd);
      metrics.closed.inc();
      metrics.open_conns.add(-1);
      server.open_.fetch_sub(1, std::memory_order_relaxed);
    }
    w.conns.clear();
    {
      std::lock_guard<std::mutex> lock(w.inbox->mu);
      w.inbox->closed = true;
      if (w.inbox->wake_write_fd >= 0) {
        ::close(w.inbox->wake_write_fd);
        w.inbox->wake_write_fd = -1;
      }
    }
    if (w.wake_read_fd >= 0) {
      ::close(w.wake_read_fd);
      w.wake_read_fd = -1;
    }
  }

  void drain_wake() {
    char drain[256];
    while (::read(w.wake_read_fd, drain, sizeof drain) > 0) {
    }
  }

  // --- accept path (worker 0 only) ---

  void do_accept() {
    for (;;) {
      const int fd = ::accept(server.listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or transient (EMFILE): the next event retries
      }
      if (server.draining_.load(std::memory_order_acquire)) {
        // Graceful shutdown: the listener stays open (so clients get a
        // clean close, not a RST from a vanished socket), but no new
        // connection is admitted past the door.
        ::close(fd);
        metrics.refused.inc();
        continue;
      }
      server.accepted_.fetch_add(1, std::memory_order_relaxed);
      metrics.accepted.inc();
      if (opts().chaos != nullptr &&
          opts().chaos->evaluate(opts().chaos_prefix + ".accept", chaos_now_us()).faulted()) {
        // Ingress fault: the connection never existed as far as the
        // server is concerned. Count first, then close — the close is
        // the client-visible event, and observers (tests) must not see
        // it before the counter reflects it.
        server.chaos_accept_drops_.fetch_add(1, std::memory_order_relaxed);
        metrics.chaos_accept_drops.inc();
        obs::flight_note("httpd.accept_drop");
        ::close(fd);
        continue;
      }
      if (server.open_.load(std::memory_order_relaxed) >= opts().max_connections) {
        ::close(fd);
        metrics.refused.inc();
        obs::flight_note("httpd.conn_refused", server.open_.load(std::memory_order_relaxed));
        continue;
      }
      if (!set_nonblocking(fd)) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      server.open_.fetch_add(1, std::memory_order_relaxed);
      metrics.open_conns.add(1);

      const std::size_t target = w.rr_next++ % server.workers_.size();
      if (target == w.index) {
        adopt(fd);
      } else {
        Inbox& inbox = *server.workers_[target]->inbox;
        std::lock_guard<std::mutex> lock(inbox.mu);
        if (inbox.closed) {
          ::close(fd);
          server.open_.fetch_sub(1, std::memory_order_relaxed);
          metrics.open_conns.add(-1);
          continue;
        }
        InboxItem item;
        item.new_fd = fd;
        inbox.items.push_back(std::move(item));
        wake_inbox_locked(inbox);
      }
    }
  }

  void adopt(int fd) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = w.next_conn_id++;
    conn->parser = RequestParser(opts().limits);
    conn->last_activity = Clock::now();
    if (!w.poller.add(fd, conn->id, false)) {
      ::close(fd);
      server.open_.fetch_sub(1, std::memory_order_relaxed);
      metrics.open_conns.add(-1);
      return;
    }
    obs::flight_note("httpd.conn_open", conn->id);
    w.conns.emplace(conn->id, std::move(conn));
  }

  // --- inbox: fd handoffs + async completions ---

  void drain_inbox() {
    std::vector<InboxItem> items;
    {
      std::lock_guard<std::mutex> lock(w.inbox->mu);
      items.swap(w.inbox->items);
    }
    for (InboxItem& item : items) {
      if (item.new_fd >= 0) {
        adopt(item.new_fd);
      } else if (item.has_response) {
        deliver(item.conn_id, item.slot_seq, std::move(item.response));
      }
    }
  }

  /// Fills a slot with its response (from the worker thread) and flushes
  /// whatever became sendable. Stale deliveries — the connection or slot
  /// died first — are dropped and counted.
  void deliver(std::uint64_t conn_id, std::uint64_t slot_seq, Response response) {
    const auto it = w.conns.find(conn_id);
    if (it == w.conns.end()) {
      metrics.stale_completions.inc();
      return;
    }
    Conn& c = *it->second;
    Slot* slot = nullptr;
    for (Slot& s : c.slots) {
      if (s.seq == slot_seq) {
        slot = &s;
        break;
      }
    }
    if (slot == nullptr || slot->ready) {
      metrics.stale_completions.inc();
      return;
    }
    const Clock::time_point now = Clock::now();
    slot->ready_at = now;
    if (opts().chaos != nullptr) {
      const chaos::FaultDecision d =
          opts().chaos->evaluate(opts().chaos_prefix + ".respond", chaos_now_us());
      if (d.faulted()) {
        response = error_response(503, "injected_fault", "chaos: response fault injected");
        metrics.chaos_respond_faults.inc();
        obs::flight_note("httpd.chaos_respond", conn_id);
      }
      if (d.latency_us > 0) {
        slot->ready_at = now + std::chrono::microseconds(d.latency_us);
      }
    }
    slot->response = std::move(response);
    slot->ready = true;
    flush(c);
  }

  // --- read / parse / dispatch ---

  void handle_conn_event(const PollEvent& ev) {
    const auto it = w.conns.find(ev.id);
    if (it == w.conns.end()) return;  // closed earlier this iteration
    Conn& c = *it->second;
    if (ev.error) {
      close_conn(c, "error");
      return;
    }
    if (ev.writable) {
      if (!write_out(c)) return;  // connection died
    }
    if (ev.readable) {
      read_in(c);
    }
  }

  /// Drains the socket into the parser buffer, then parses. Returns
  /// false if the connection was closed.
  bool read_in(Conn& c) {
    char buf[16384];
    bool got_bytes = false;
    for (;;) {
      if (c.parser.buffered() >
          opts().limits.max_head_bytes + opts().limits.max_body_bytes + kReadPauseSlack) {
        c.read_paused = true;  // sweep re-enters once the backlog drains
        break;
      }
      const ssize_t n = ::read(c.fd, buf, sizeof buf);
      if (n > 0) {
        got_bytes = true;
        c.parser.feed(buf, static_cast<std::size_t>(n));
        metrics.bytes_in.inc(static_cast<std::uint64_t>(n));
        c.last_activity = Clock::now();
        continue;
      }
      if (n == 0) {
        c.peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(c, "read_error");
      return false;
    }
    if (got_bytes && opts().chaos != nullptr) {
      const chaos::FaultDecision d =
          opts().chaos->evaluate(opts().chaos_prefix + ".read", chaos_now_us());
      if (d.kind == chaos::FaultKind::error) {
        // A violent ingress fault: the connection is torn down with
        // whatever was mid-flight.
        metrics.chaos_read_faults.inc();
        obs::flight_note("httpd.chaos_read_abort", c.id);
        close_conn(c, "chaos_read");
        return false;
      }
      if (d.latency_us > 0) {
        metrics.chaos_read_faults.inc();
        obs::flight_note("httpd.chaos_read_stall", c.id, d.latency_us);
        c.parse_resume_at = Clock::now() + std::chrono::microseconds(d.latency_us);
      }
    }
    return parse_and_dispatch(c);
  }

  bool parse_and_dispatch(Conn& c) {
    const Clock::time_point now = Clock::now();
    if (now < c.parse_resume_at) return true;  // chaos read stall in effect
    const std::uint64_t id = c.id;
    while (!c.no_more_requests && c.slots.size() < opts().max_pipeline &&
           c.out.size() - c.out_pos < opts().max_outbuf_bytes) {
      Request request;
      const ParseResult r = c.parser.next(request);
      if (r == ParseResult::need_more) break;
      if (r == ParseResult::request) {
        dispatch(c, std::move(request));
        // A handler that completes synchronously re-enters deliver ->
        // flush, which can close (and free) the connection before
        // dispatch returns. Touch `c` again only if it survived.
        if (w.conns.find(id) == w.conns.end()) return false;
        continue;
      }
      reject(c, r);
      if (w.conns.find(id) == w.conns.end()) return false;
      break;
    }
    if (c.peer_eof && !c.no_more_requests) {
      // The peer is done sending. Any queued responses still flush (it
      // may only have shut down its write side); nothing further parses.
      c.no_more_requests = true;
      if (c.slots.empty() && c.out_pos == c.out.size()) {
        close_conn(c, "peer_eof");
        return false;
      }
      c.close_after_flush = true;
    }
    return flush(c);
  }

  void dispatch(Conn& c, Request request) {
    server.requests_.fetch_add(1, std::memory_order_relaxed);
    metrics.requests.inc();
    Slot slot;
    slot.seq = c.next_slot_seq++;
    slot.parsed_at = Clock::now();
    slot.request_keep_alive = request.keep_alive;
    if (!request.keep_alive) c.no_more_requests = true;

    const Router::Route* route = nullptr;
    const Router::Match match = server.router_.find(request.method, request.path, &route);
    slot.route = route;
    c.slots.push_back(std::move(slot));
    const std::uint64_t seq = c.slots.back().seq;

    switch (match) {
      case Router::Match::not_found:
        deliver(c.id, seq, error_response(404, "not_found", "unknown path: " + request.path));
        return;
      case Router::Match::method_not_allowed:
        deliver(c.id, seq,
                error_response(405, "method_not_allowed",
                               request.method + " not served on " + request.path));
        return;
      case Router::Match::ok:
        break;
    }
    route->hits->inc();
    // The request span roots the causal tree: an add-chain handler's
    // logsvc.submit span (and the sequencer's seal spans behind it)
    // parent here, linking wire request to batch seal across threads.
    obs::Span request_span("httpd.request");
    Completion done = make_completion(c.id, seq);
    try {
      route->handler(request, std::move(done));
    } catch (const std::exception& e) {
      deliver(c.id, seq, error_response(500, "internal_error", e.what()));
    } catch (...) {
      deliver(c.id, seq, error_response(500, "internal_error", "handler threw"));
    }
  }

  Completion make_completion(std::uint64_t conn_id, std::uint64_t slot_seq) {
    auto used = std::make_shared<std::atomic<bool>>(false);
    std::weak_ptr<Inbox> weak_inbox = w.inbox;
    Server::WorkerState* worker = &w;
    Server* srv = &server;
    return [used, weak_inbox, worker, srv, conn_id, slot_seq](Response response) {
      if (used->exchange(true, std::memory_order_acq_rel)) return;
      if (t_current_worker == worker) {
        // Synchronous completion on the owning loop: deliver directly,
        // skipping the mailbox and its wake syscall.
        WorkerLoop loop{*srv, *worker};
        loop.deliver(conn_id, slot_seq, std::move(response));
        return;
      }
      const std::shared_ptr<Inbox> inbox = weak_inbox.lock();
      if (!inbox) return;
      std::lock_guard<std::mutex> lock(inbox->mu);
      if (inbox->closed) return;
      InboxItem item;
      item.conn_id = conn_id;
      item.slot_seq = slot_seq;
      item.has_response = true;
      item.response = std::move(response);
      inbox->items.push_back(std::move(item));
      wake_inbox_locked(*inbox);
    };
  }

  void reject(Conn& c, ParseResult r) {
    int status = 400;
    const char* code = "bad_request";
    switch (r) {
      case ParseResult::head_too_large:
        status = 431;
        code = "headers_too_large";
        break;
      case ParseResult::body_too_large:
        status = 413;
        code = "body_too_large";
        break;
      case ParseResult::unsupported:
        status = 501;
        code = "unsupported";
        break;
      default:
        break;
    }
    server.requests_.fetch_add(1, std::memory_order_relaxed);
    server.parse_rejects_.fetch_add(1, std::memory_order_relaxed);
    metrics.requests.inc();
    metrics.parse_rejects.inc();
    obs::flight_note("httpd.parse_reject", static_cast<std::uint64_t>(status), c.id);
    c.no_more_requests = true;
    Slot slot;
    slot.seq = c.next_slot_seq++;
    slot.parsed_at = Clock::now();
    slot.request_keep_alive = false;
    c.slots.push_back(std::move(slot));
    deliver(c.id, c.slots.back().seq,
            error_response(status, code, "request rejected by parser", /*keep_alive=*/false));
  }

  // --- write path ---

  /// Serializes every leading ready slot into the out buffer (strict
  /// request order), then writes. Returns false if the conn died.
  ///
  /// Handlers that complete synchronously re-enter flush from inside
  /// flush_step's dispatch; the guard turns the recursion into a loop
  /// (bounded stack no matter how deep the pipelined burst) and keeps
  /// a freed connection from being touched after a re-entrant close.
  bool flush(Conn& c) {
    if (c.in_flush) {
      c.flush_again = true;
      return true;
    }
    c.in_flush = true;
    const std::uint64_t id = c.id;
    for (;;) {
      c.flush_again = false;
      if (!flush_step(c)) return false;  // conn closed and freed
      if (w.conns.find(id) == w.conns.end()) return false;
      if (!c.flush_again) break;
    }
    c.in_flush = false;
    return true;
  }

  bool flush_step(Conn& c) {
    const Clock::time_point now = Clock::now();
    while (!c.slots.empty()) {
      Slot& s = c.slots.front();
      if (!s.ready || s.ready_at > now) break;
      Response& r = s.response;
      r.keep_alive = r.keep_alive && s.request_keep_alive;
      if (c.out.empty()) c.stall_since = now;  // write stall clock restarts
      c.out += r.serialize();
      server.responses_.fetch_add(1, std::memory_order_relaxed);
      metrics.responses.inc();
      if (s.route != nullptr && s.route->latency_us != nullptr) {
        s.route->latency_us->observe(
            std::chrono::duration<double, std::micro>(now - s.parsed_at).count());
      }
      const bool closing = !r.keep_alive;
      c.slots.pop_front();
      if (closing) {
        // Later pipelined slots are discarded per close semantics; their
        // completions will land as stale.
        c.close_after_flush = true;
        c.no_more_requests = true;
        c.slots.clear();
        break;
      }
    }
    if (!write_out(c)) return false;
    // Room may have opened for pipelined requests that were paused on
    // the outbuf/pipeline bounds. Re-check liveness after every
    // dispatch/reject: a synchronous completion can close the conn.
    const std::uint64_t id = c.id;
    while (w.conns.find(id) != w.conns.end() && !c.no_more_requests &&
           c.parser.buffered() > 0 && c.slots.size() < opts().max_pipeline &&
           c.out.size() - c.out_pos < opts().max_outbuf_bytes) {
      Request request;
      const ParseResult r = c.parser.next(request);
      if (r == ParseResult::request) {
        dispatch(c, std::move(request));
        continue;
      }
      if (parse_failed(r)) reject(c, r);
      break;
    }
    return w.conns.find(id) != w.conns.end();
  }

  bool write_out(Conn& c) {
    while (c.out_pos < c.out.size()) {
      const ssize_t n = ::write(c.fd, c.out.data() + c.out_pos, c.out.size() - c.out_pos);
      if (n > 0) {
        c.out_pos += static_cast<std::size_t>(n);
        metrics.bytes_out.inc(static_cast<std::uint64_t>(n));
        c.stall_since = Clock::now();
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!c.want_write) {
          c.want_write = true;
          w.poller.mod(c.fd, c.id, true);
        }
        // Compact a large flushed prefix so pathological slow clients
        // don't pin the full history of their responses.
        if (c.out_pos > (1u << 18)) {
          c.out.erase(0, c.out_pos);
          c.out_pos = 0;
        }
        return true;
      }
      close_conn(c, "write_error");
      return false;
    }
    c.out.clear();
    c.out_pos = 0;
    if (c.want_write) {
      c.want_write = false;
      w.poller.mod(c.fd, c.id, false);
    }
    if (c.close_after_flush && c.slots.empty()) {
      close_conn(c, "drained");
      return false;
    }
    return true;
  }

  void close_conn(Conn& c, const char* reason) {
    obs::flight_note("httpd.conn_close", c.id);
    (void)reason;
    w.poller.del(c.fd);
    ::close(c.fd);
    metrics.closed.inc();
    metrics.open_conns.add(-1);
    server.open_.fetch_sub(1, std::memory_order_relaxed);
    w.conns.erase(c.id);  // destroys c
  }

  // --- timers: eviction, chaos stalls, delayed slots, paused reads ---

  void sweep() {
    const Clock::time_point now = Clock::now();
    const bool draining = server.draining_.load(std::memory_order_acquire);
    if (!draining && now - w.last_sweep < std::chrono::milliseconds(10)) return;
    w.last_sweep = now;

    w.scratch_ids.clear();
    for (const auto& [id, conn] : w.conns) w.scratch_ids.push_back(id);

    for (const std::uint64_t id : w.scratch_ids) {
      const auto it = w.conns.find(id);
      if (it == w.conns.end()) continue;
      Conn& c = *it->second;

      // Draining: nothing further parses; in-flight responses still
      // flush, and the connection closes the moment it is quiescent.
      if (draining) {
        c.no_more_requests = true;
        if (c.slots.empty() && c.out_pos == c.out.size()) {
          close_conn(c, "draining");
          continue;
        }
        c.close_after_flush = true;
      }

      // Write stall: responses queued, client not draining them.
      if (c.out_pos < c.out.size() &&
          now - c.stall_since > opts().write_stall_timeout) {
        server.evicted_slow_.fetch_add(1, std::memory_order_relaxed);
        metrics.evicted_slow.inc();
        obs::flight_note("httpd.slow_evict", c.id);
        close_conn(c, "slow");
        continue;
      }
      // Idle: no request in flight, nothing buffered in either direction.
      if (c.slots.empty() && c.out_pos == c.out.size() &&
          now - c.last_activity > opts().idle_timeout) {
        server.evicted_idle_.fetch_add(1, std::memory_order_relaxed);
        metrics.evicted_idle.inc();
        obs::flight_note("httpd.idle_evict", c.id);
        close_conn(c, "idle");
        continue;
      }
      // Chaos read stall expired: parse what accumulated.
      if (c.parse_resume_at != Clock::time_point{} && now >= c.parse_resume_at) {
        c.parse_resume_at = {};
        if (!parse_and_dispatch(c)) continue;
      }
      // Delayed (chaos) response became flushable.
      if (!c.slots.empty() && c.slots.front().ready && c.slots.front().ready_at <= now) {
        if (!flush(c)) continue;
      }
      // Reads paused on a full parser buffer: resume once it drained.
      if (c.read_paused &&
          c.parser.buffered() <= opts().limits.max_head_bytes + opts().limits.max_body_bytes) {
        c.read_paused = false;
        if (!read_in(c)) continue;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

Server::Server(ServerOptions options, Router router)
    : options_(std::move(options)), router_(std::move(router)) {
  if (options_.workers < 1) options_.workers = 1;
}

Server::~Server() { stop(); }

bool Server::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const auto fail = [this] {
    ::close(listen_fd_);
    listen_fd_ = -1;
    workers_.clear();
    return false;
  };
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) return fail();
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 1024) != 0 || !set_nonblocking(listen_fd_)) {
    return fail();
  }
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return fail();
  }

  workers_.clear();
  for (int i = 0; i < options_.workers; ++i) {
    auto worker = std::make_unique<WorkerState>();
    worker->server = this;
    worker->index = static_cast<std::size_t>(i);
    worker->inbox = std::make_shared<Inbox>();
    int wake_fds[2] = {-1, -1};
    if (!worker->poller.init() || ::pipe(wake_fds) != 0) {
      for (auto& prior : workers_) {
        ::close(prior->wake_read_fd);
        ::close(prior->inbox->wake_write_fd);
      }
      return fail();
    }
    set_nonblocking(wake_fds[0]);
    set_nonblocking(wake_fds[1]);
    worker->wake_read_fd = wake_fds[0];
    worker->inbox->wake_write_fd = wake_fds[1];
    worker->poller.add(worker->wake_read_fd, kWakeId, false);
    if (i == 0) worker->poller.add(listen_fd_, kListenId, false);
    workers_.push_back(std::move(worker));
  }

  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.clear();
  for (auto& worker : workers_) {
    threads_.emplace_back([this, state = worker.get()] {
      WorkerLoop loop{*this, *state};
      loop.run();
    });
  }
  obs::log_info("httpd", "server started",
                {{"port", static_cast<std::uint64_t>(port())},
                 {"workers", static_cast<std::uint64_t>(options_.workers)}});
  return true;
}

bool Server::shutdown(std::chrono::milliseconds drain_deadline) {
  if (!running_.load(std::memory_order_acquire)) return true;
  draining_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->inbox->mu);
    wake_inbox_locked(*worker->inbox);
  }
  obs::log_info("httpd", "draining",
                {{"open", connections_open()},
                 {"deadline_ms", static_cast<std::uint64_t>(drain_deadline.count())}});
  const Clock::time_point deadline = Clock::now() + drain_deadline;
  while (open_.load(std::memory_order_relaxed) > 0 && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const bool drained = open_.load(std::memory_order_relaxed) == 0;
  if (!drained) {
    obs::log_warn("httpd", "drain deadline expired; forcing close",
                  {{"open", connections_open()}});
  }
  stop();
  return drained;
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->inbox->mu);
    wake_inbox_locked(*worker->inbox);
  }
  for (std::thread& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  port_.store(0, std::memory_order_release);
  draining_.store(false, std::memory_order_release);  // restartable
  obs::log_info("httpd", "server stopped", {});
}

}  // namespace ctwatch::httpd
