#include "ctwatch/httpd/ct_handlers.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "ctwatch/ct/log.hpp"
#include "ctwatch/ct/wire.hpp"
#include "ctwatch/httpd/json.hpp"
#include "ctwatch/obs/trace.hpp"
#include "ctwatch/util/encoding.hpp"

namespace ctwatch::httpd {

namespace {

std::string b64(BytesView data) { return base64_encode(data); }

/// Strict decimal u64 query parameter; nullopt when absent or malformed.
std::optional<std::uint64_t> param_u64(const Request& request, const std::string& name) {
  const auto raw = request.query_param(name);
  if (!raw || raw->empty() || raw->size() > 20) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : *raw) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

json::Value proof_json(const std::vector<crypto::Digest>& path, const char* key) {
  json::Array audit;
  audit.reserve(path.size());
  for (const crypto::Digest& node : path) audit.emplace_back(b64(node));
  json::Object out;
  out.emplace(key, json::Value(std::move(audit)));
  return json::Value(std::move(out));
}

json::Value sct_json(const ct::SignedCertificateTimestamp& sct) {
  Bytes sig;
  ct::wire::put_u8(sig, static_cast<std::uint8_t>(sct.signature.scheme));
  ct::wire::put_opaque16(sig, sct.signature.data);
  json::Object out;
  out.emplace("sct_version", json::Value(static_cast<double>(sct.version)));
  out.emplace("id", json::Value(b64(sct.log_id)));
  out.emplace("timestamp", json::Value(static_cast<double>(sct.timestamp_ms)));
  out.emplace("extensions", json::Value(b64(sct.extensions)));
  out.emplace("signature", json::Value(b64(sig)));
  return json::Value(std::move(out));
}

/// Parsed add-chain body: leaf certificate + issuer public key (from the
/// second chain element, when present).
struct ParsedChain {
  x509::Certificate leaf;
  Bytes issuer_public_key;
};

std::optional<ParsedChain> parse_chain_body(const std::string& body, std::size_t max_chain,
                                            std::string& error_detail) {
  const auto doc = json::parse(body);
  if (!doc || !doc->is_object()) {
    error_detail = "body is not a JSON object";
    return std::nullopt;
  }
  const json::Value* chain = doc->get("chain");
  if (chain == nullptr || !chain->is_array() || chain->as_array().empty()) {
    error_detail = "missing non-empty \"chain\" array";
    return std::nullopt;
  }
  if (chain->as_array().size() > max_chain) {
    error_detail = "chain too long";
    return std::nullopt;
  }
  std::vector<Bytes> ders;
  for (const json::Value& element : chain->as_array()) {
    if (!element.is_string()) {
      error_detail = "chain element is not a string";
      return std::nullopt;
    }
    auto der = try_base64_decode(element.as_string());
    if (!der) {
      error_detail = "chain element is not valid base64";
      return std::nullopt;
    }
    ders.push_back(*std::move(der));
  }
  ParsedChain out;
  try {
    out.leaf = x509::Certificate::decode(ders[0]);
    if (ders.size() > 1) {
      out.issuer_public_key = x509::Certificate::decode(ders[1]).tbs.public_key;
    }
  } catch (const std::exception& e) {
    error_detail = std::string("chain element is not a certificate: ") + e.what();
    return std::nullopt;
  }
  return out;
}

Response submit_status_response(logsvc::SubmitStatus status) {
  switch (status) {
    case logsvc::SubmitStatus::rejected_invalid:
      return error_response(400, "rejected_invalid", "chain did not verify");
    case logsvc::SubmitStatus::overloaded:
      return error_response(503, "overloaded", "submission queue full");
    case logsvc::SubmitStatus::shutdown:
      return error_response(503, "shutting_down", "log service is stopping");
    case logsvc::SubmitStatus::dropped:
      return error_response(503, "dropped", "submission lost at ingress (injected fault)");
    case logsvc::SubmitStatus::internal_error:
      return error_response(500, "internal_error", "signer failure");
    case logsvc::SubmitStatus::storage_error:
      return error_response(503, "storage_error", "durable commit failed; entry not integrated");
    case logsvc::SubmitStatus::ok:
      break;
  }
  return error_response(500, "internal_error", "unexpected submit status");
}

/// Shared add-chain / add-pre-chain plumbing; `pre` picks the entry kind.
void handle_add(logsvc::LogService& service, const CtApiOptions& options, bool pre,
                const Request& request, Completion done) {
  std::string detail;
  auto parsed = parse_chain_body(request.body, options.max_chain, detail);
  if (!parsed) {
    done(error_response(400, "bad_chain", detail));
    return;
  }
  // The completion runs on the sequencer thread once the batch seals;
  // `done` routes it back to the owning event loop (stale-safe).
  logsvc::CompletionFn completion = [done](const logsvc::SubmitOutcome& outcome) {
    if (outcome.status != logsvc::SubmitStatus::ok || !outcome.sct) {
      done(submit_status_response(outcome.status));
      return;
    }
    done(json_response(200, sct_json(*outcome.sct).dump()));
  };
  const SimTime now = options.clock();
  const logsvc::SubmitStatus status =
      pre ? service.submit_pre_chain(parsed->leaf, parsed->issuer_public_key, now,
                                     std::move(completion))
          : service.submit_chain(parsed->leaf, parsed->issuer_public_key, now,
                                 std::move(completion));
  if (status != logsvc::SubmitStatus::ok) {
    done(submit_status_response(status));
  }
}

/// Resolves the backing service for a request, answering 503 when the
/// selector declines. Every handler below goes through this, so the
/// per-request view decision covers the whole RFC 6962 surface.
logsvc::LogService* select_or_fail(const ViewSelector& select, const Request& request,
                                   const Completion& done) {
  logsvc::LogService* service = select(request);
  if (service == nullptr) {
    done(error_response(503, "no_backend", "no log view for this client"));
  }
  return service;
}

}  // namespace

void register_ct_api(Router& router, logsvc::LogService& service, CtApiOptions options) {
  register_ct_api(
      router, [&service](const Request&) { return &service; }, std::move(options));
}

void register_ct_api(Router& router, ViewSelector select, CtApiOptions options) {
  router.get("/ct/v1/get-sth", [select](const Request& request, Completion done) {
    logsvc::LogService* backend = select_or_fail(select, request, done);
    if (backend == nullptr) return;
    logsvc::LogService& service = *backend;
    const ct::SignedTreeHead sth = service.get_sth();
    Bytes sig;
    ct::wire::put_u8(sig, static_cast<std::uint8_t>(sth.signature.scheme));
    ct::wire::put_opaque16(sig, sth.signature.data);
    json::Object out;
    out.emplace("tree_size", json::Value(static_cast<double>(sth.tree_size)));
    out.emplace("timestamp", json::Value(static_cast<double>(sth.timestamp_ms)));
    out.emplace("sha256_root_hash", json::Value(b64(sth.root_hash)));
    out.emplace("tree_head_signature", json::Value(b64(sig)));
    done(json_response(200, json::Value(std::move(out)).dump()));
  });

  router.get("/ct/v1/get-sth-consistency", [select](const Request& request, Completion done) {
    logsvc::LogService* backend = select_or_fail(select, request, done);
    if (backend == nullptr) return;
    logsvc::LogService& service = *backend;
    const auto first = param_u64(request, "first");
    const auto second = param_u64(request, "second");
    if (!first || !second) {
      done(error_response(400, "bad_parameter", "first and second must be decimal tree sizes"));
      return;
    }
    try {
      done(json_response(
          200, proof_json(service.consistency_proof(*first, *second), "consistency").dump()));
    } catch (const std::out_of_range& e) {
      done(error_response(400, "bad_range", e.what()));
    }
  });

  router.get("/ct/v1/get-proof-by-hash", [select](const Request& request, Completion done) {
    logsvc::LogService* backend = select_or_fail(select, request, done);
    if (backend == nullptr) return;
    logsvc::LogService& service = *backend;
    const auto tree_size = param_u64(request, "tree_size");
    auto hash_b64 = request.query_param("hash");
    if (!tree_size || !hash_b64) {
      done(error_response(400, "bad_parameter", "hash and tree_size are required"));
      return;
    }
    // Clients that forget to percent-encode '+' get it back: base64
    // never contains a space, so the form-decoding ambiguity is safe to
    // reverse.
    std::replace(hash_b64->begin(), hash_b64->end(), ' ', '+');
    crypto::Digest leaf{};
    const auto raw = try_base64_decode(*hash_b64);
    if (!raw || raw->size() != leaf.size()) {
      done(error_response(400, "bad_hash", "hash is not base64 of a sha256 digest"));
      return;
    }
    std::copy(raw->begin(), raw->end(), leaf.begin());
    const auto index = service.leaf_index_of(leaf);
    if (!index || *index >= *tree_size) {
      done(error_response(404, "hash_not_found", "no such leaf in the requested tree"));
      return;
    }
    try {
      json::Value proof = proof_json(service.inclusion_proof(*index, *tree_size), "audit_path");
      json::Object out = proof.as_object();
      out.emplace("leaf_index", json::Value(static_cast<double>(*index)));
      done(json_response(200, json::Value(std::move(out)).dump()));
    } catch (const std::out_of_range& e) {
      done(error_response(400, "bad_range", e.what()));
    }
  });

  router.get("/ct/v1/get-entries", [select](const Request& request, Completion done) {
    logsvc::LogService* backend = select_or_fail(select, request, done);
    if (backend == nullptr) return;
    logsvc::LogService& service = *backend;
    const auto start = param_u64(request, "start");
    const auto end = param_u64(request, "end");
    if (!start || !end || *end < *start) {
      done(error_response(400, "bad_parameter", "start and end must satisfy start <= end"));
      return;
    }
    if (*start >= service.tree_size()) {
      done(error_response(400, "bad_range", "start is at or beyond the current tree size"));
      return;
    }
    // Inclusive [start, end] on the wire; the service clamps the window
    // to its max_get_entries and the published size (RFC 6962 lets a log
    // return fewer entries than requested).
    const std::uint64_t span = *end - *start;
    const std::uint64_t want = span == UINT64_MAX ? UINT64_MAX : span + 1;
    json::Array entries;
    for (const logsvc::EntryRecord& record : service.get_entries(*start, want)) {
      json::Object entry;
      entry.emplace("leaf_input",
                    json::Value(b64(ct::merkle_leaf_bytes(record.timestamp_ms,
                                                          record.signed_entry))));
      entry.emplace("extra_data", json::Value(std::string()));
      entries.push_back(json::Value(std::move(entry)));
    }
    json::Object out;
    out.emplace("entries", json::Value(std::move(entries)));
    done(json_response(200, json::Value(std::move(out)).dump()));
  });

  router.post("/ct/v1/add-chain",
              [select, options](const Request& request, Completion done) {
                CTWATCH_SPAN("httpd.add_chain");
                logsvc::LogService* backend = select_or_fail(select, request, done);
                if (backend == nullptr) return;
                handle_add(*backend, options, /*pre=*/false, request, std::move(done));
              });

  router.post("/ct/v1/add-pre-chain",
              [select, options](const Request& request, Completion done) {
                CTWATCH_SPAN("httpd.add_pre_chain");
                logsvc::LogService* backend = select_or_fail(select, request, done);
                if (backend == nullptr) return;
                handle_add(*backend, options, /*pre=*/true, request, std::move(done));
              });
}

}  // namespace ctwatch::httpd
