#include "ctwatch/httpd/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ctwatch::httpd::json {

namespace {

constexpr int kMaxDepth = 32;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::optional<std::string> parse_string_raw() {
    if (!consume('"')) return std::nullopt;
    std::string out;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;  // raw control char
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) return std::nullopt;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return std::nullopt;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return std::nullopt;
          }
          // UTF-8 encode the BMP code point; surrogate pairs are rejected
          // (the CT API never emits non-BMP text).
          if (code >= 0xD800 && code <= 0xDFFF) return std::nullopt;
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos;
    if (consume('-')) {
    }
    if (done() || peek() < '0' || peek() > '9') return std::nullopt;
    if (peek() == '0') {
      ++pos;
    } else {
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || peek() < '0' || peek() > '9') return std::nullopt;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || peek() < '0' || peek() > '9') return std::nullopt;
      while (!done() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (done()) return std::nullopt;
    const char c = peek();
    if (c == '"') {
      auto s = parse_string_raw();
      if (!s) return std::nullopt;
      return Value(std::move(*s));
    }
    if (c == '{') {
      ++pos;
      Object obj;
      skip_ws();
      if (consume('}')) return Value(std::move(obj));
      for (;;) {
        skip_ws();
        auto key = parse_string_raw();
        if (!key) return std::nullopt;
        skip_ws();
        if (!consume(':')) return std::nullopt;
        auto val = parse_value(depth + 1);
        if (!val) return std::nullopt;
        obj.insert_or_assign(std::move(*key), std::move(*val));
        skip_ws();
        if (consume(',')) continue;
        if (consume('}')) return Value(std::move(obj));
        return std::nullopt;
      }
    }
    if (c == '[') {
      ++pos;
      Array arr;
      skip_ws();
      if (consume(']')) return Value(std::move(arr));
      for (;;) {
        auto val = parse_value(depth + 1);
        if (!val) return std::nullopt;
        arr.push_back(std::move(*val));
        skip_ws();
        if (consume(',')) continue;
        if (consume(']')) return Value(std::move(arr));
        return std::nullopt;
      }
    }
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value(nullptr);
    return parse_number();
  }
};

void dump_into(const Value& v, std::string& out);

void dump_string(std::string_view s, std::string& out) {
  out.push_back('"');
  out += escape(s);
  out.push_back('"');
}

void dump_into(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::null:
      out += "null";
      return;
    case Value::Kind::boolean:
      out += v.as_bool() ? "true" : "false";
      return;
    case Value::Kind::number: {
      const double d = v.as_number();
      if (std::nearbyint(d) == d && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      }
      return;
    }
    case Value::Kind::string:
      dump_string(v.as_string(), out);
      return;
    case Value::Kind::array: {
      out.push_back('[');
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_into(item, out);
      }
      out.push_back(']');
      return;
    }
    case Value::Kind::object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, item] : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_into(item, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

const Array& Value::as_array() const {
  static const Array empty;
  return arr_ ? *arr_ : empty;
}

const Object& Value::as_object() const {
  static const Object empty;
  return obj_ ? *obj_ : empty;
}

const Value* Value::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& obj = as_object();
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<std::string_view> Value::get_string(std::string_view key) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return std::string_view(v->as_string());
}

std::optional<std::uint64_t> Value::get_u64(std::string_view key) const {
  const Value* v = get(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  const double d = v->as_number();
  if (d < 0 || std::nearbyint(d) != d || d > 9.0e15) return std::nullopt;
  return static_cast<std::uint64_t>(d);
}

std::string Value::dump() const {
  std::string out;
  dump_into(*this, out);
  return out;
}

std::optional<Value> parse(std::string_view text) {
  Parser parser{text};
  auto value = parser.parse_value(0);
  if (!value) return std::nullopt;
  parser.skip_ws();
  if (!parser.done()) return std::nullopt;  // trailing garbage
  return value;
}

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace ctwatch::httpd::json
