// obs::ExpoServer implemented on the shared httpd core. Lives in
// ct_httpd (not ct_obs) because the event loop sits above obs in the
// layering; the obs header only carries a pimpl.
#include "ctwatch/obs/expo.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <sstream>
#include <vector>

#include "ctwatch/httpd/server.hpp"
#include "ctwatch/obs/metrics.hpp"
#include "ctwatch/obs/trace.hpp"

namespace ctwatch::obs {

namespace {

std::string trace_json(std::size_t limit) {
  const std::vector<SpanRecord> spans = Tracer::global().recent_spans(limit);
  std::ostringstream out;
  out << "{\"spans\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent_id
        << ",\"trace\":" << span.trace_id << ",\"thread\":" << span.thread_id << ",\"name\":\""
        << span.name << "\",\"start_us\":" << span.start_us << ",\"dur_us\":" << span.duration_us
        << "}";
  }
  out << "]}";
  return out.str();
}

httpd::Response text_ok(std::string body, const char* content_type) {
  httpd::Response response;
  response.status = 200;
  response.content_type = content_type;
  response.body = std::move(body);
  return response;
}

httpd::Router make_routes() {
  using httpd::Completion;
  using httpd::Request;
  httpd::Router router;
  router.get("/metrics", [](const Request&, Completion done) {
    done(text_ok(Registry::global().render_prometheus(),
                 "text/plain; version=0.0.4; charset=utf-8"));
  });
  router.get("/vars", [](const Request&, Completion done) {
    done(text_ok(Registry::global().render_json(), "application/json"));
  });
  router.get("/trace", [](const Request&, Completion done) {
    done(text_ok(trace_json(256), "application/json"));
  });
  const auto banner = [](const Request&, Completion done) {
    done(text_ok("ctwatch obs\n", "text/plain; charset=utf-8"));
  };
  router.get("/", banner);
  router.get("/healthz", banner);
  return router;
}

}  // namespace

struct ExpoServer::Impl {
  explicit Impl(const Options& options)
      : server(
            [&options] {
              httpd::ServerOptions server_options;
              server_options.port = options.port;
              server_options.bind_address = options.bind_address;
              server_options.workers = 1;
              server_options.max_connections = 64;
              return server_options;
            }(),
            make_routes()) {}

  httpd::Server server;
};

ExpoServer::ExpoServer() : ExpoServer(Options{}) {}
ExpoServer::ExpoServer(Options options) : impl_(std::make_unique<Impl>(options)) {}
ExpoServer::~ExpoServer() = default;

bool ExpoServer::start() { return impl_->server.start(); }
void ExpoServer::stop() { impl_->server.stop(); }
bool ExpoServer::running() const { return impl_->server.running(); }
std::uint16_t ExpoServer::port() const { return impl_->server.port(); }
std::uint64_t ExpoServer::requests_served() const { return impl_->server.requests_served(); }

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
