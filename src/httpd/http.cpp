#include "ctwatch/httpd/http.hpp"

#include <algorithm>
#include <cctype>

namespace ctwatch::httpd {

namespace {

[[nodiscard]] char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// RFC 7230 token characters (method and header-name alphabet).
[[nodiscard]] bool is_token_char(char c) {
  if (std::isalnum(static_cast<unsigned char>(c)) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

[[nodiscard]] std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Strict decimal parse for Content-Length / numeric query params.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty() || s.size() > 19) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

/// Finds the end of the head (the blank line), accepting CRLF or bare LF
/// line endings. Returns npos while incomplete; sets `skip` to the
/// terminator length.
std::size_t find_head_end(std::string_view buf, std::size_t& skip) {
  const std::size_t crlf = buf.find("\r\n\r\n");
  const std::size_t lflf = buf.find("\n\n");
  if (crlf == std::string_view::npos && lflf == std::string_view::npos) return std::string_view::npos;
  if (crlf != std::string_view::npos && (lflf == std::string_view::npos || crlf < lflf)) {
    skip = 4;
    return crlf;
  }
  skip = 2;
  return lflf;
}

/// Splits a head into lines, tolerating CRLF or LF endings.
std::vector<std::string_view> split_lines(std::string_view head) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t nl = head.find('\n', pos);
    if (nl == std::string_view::npos) {
      if (pos < head.size()) lines.push_back(head.substr(pos));
      break;
    }
    std::size_t end = nl;
    if (end > pos && head[end - 1] == '\r') --end;
    lines.push_back(head.substr(pos, end - pos));
    pos = nl + 1;
  }
  return lines;
}

/// Parses the shared header block; false on malformed header line.
bool parse_header_lines(const std::vector<std::string_view>& lines,
                        std::vector<std::pair<std::string, std::string>>& out) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;
    // obs-fold continuation lines are obsolete and ambiguous: reject.
    if (line.front() == ' ' || line.front() == '\t') return false;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) return false;
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_token_char)) return false;
    out.emplace_back(std::string(name), std::string(trim_ows(line.substr(colon + 1))));
  }
  return true;
}

[[nodiscard]] std::optional<std::string_view> find_header(
    const std::vector<std::pair<std::string, std::string>>& headers, std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::optional<std::string> url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '%') {
      if (i + 2 >= in.size()) return std::nullopt;
      const int hi = hex_digit(in[i + 1]);
      const int lo = hex_digit(in[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>(hi << 4 | lo));
      i += 2;
    } else if (c == '+') {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::optional<std::string_view> Request::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<std::string> Request::query_param(std::string_view key) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair = rest.substr(0, amp);
    rest = (amp == std::string_view::npos) ? std::string_view{} : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    const std::string_view k = pair.substr(0, eq);
    if (k == key) {
      return url_decode(eq == std::string_view::npos ? std::string_view{} : pair.substr(eq + 1));
    }
  }
  return std::nullopt;
}

ParseResult RequestParser::parse_head(Request& out) {
  std::size_t skip = 0;
  const std::size_t head_end = find_head_end(buffer_, skip);
  if (head_end == std::string_view::npos) {
    if (buffer_.size() > limits_.max_head_bytes) return fail(ParseResult::head_too_large);
    return ParseResult::need_more;
  }
  if (head_end + skip > limits_.max_head_bytes) return fail(ParseResult::head_too_large);

  const std::vector<std::string_view> lines =
      split_lines(std::string_view(buffer_).substr(0, head_end));
  if (lines.empty()) return fail(ParseResult::bad_request);

  // Request line: METHOD SP target SP HTTP/1.x — single spaces, no tabs.
  const std::string_view request_line = lines[0];
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = (sp1 == std::string_view::npos)
                              ? std::string_view::npos
                              : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(ParseResult::bad_request);
  }
  const std::string_view method = request_line.substr(0, sp1);
  const std::string_view target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = request_line.substr(sp2 + 1);
  if (method.empty() || !std::all_of(method.begin(), method.end(), is_token_char)) {
    return fail(ParseResult::bad_request);
  }
  if (target.empty() || (target.front() != '/' && target != "*")) {
    return fail(ParseResult::bad_request);
  }
  bool http11 = true;
  if (version == "HTTP/1.1") {
    http11 = true;
  } else if (version == "HTTP/1.0") {
    http11 = false;
  } else if (version.substr(0, 5) == "HTTP/") {
    return fail(ParseResult::unsupported);
  } else {
    return fail(ParseResult::bad_request);
  }

  Request req;
  req.method = std::string(method);
  req.target = std::string(target);
  req.http11 = http11;
  if (!parse_header_lines(lines, req.headers)) return fail(ParseResult::bad_request);

  // Split and decode the target.
  const std::size_t qmark = target.find('?');
  const std::string_view raw_path = target.substr(0, qmark);
  if (qmark != std::string_view::npos) req.query = std::string(target.substr(qmark + 1));
  std::optional<std::string> decoded =
      (raw_path == "*") ? std::optional<std::string>("*") : url_decode(raw_path);
  // '+' means a literal plus in the path component; url_decode's
  // query-style '+'-to-space does not apply. Re-encode the difference.
  if (!decoded) return fail(ParseResult::bad_request);
  if (raw_path.find('+') != std::string_view::npos) {
    decoded->clear();
    for (std::size_t i = 0; i < raw_path.size(); ++i) {
      if (raw_path[i] == '%') {
        const int hi = i + 2 < raw_path.size() ? hex_digit(raw_path[i + 1]) : -1;
        const int lo = i + 2 < raw_path.size() ? hex_digit(raw_path[i + 2]) : -1;
        if (hi < 0 || lo < 0) return fail(ParseResult::bad_request);
        decoded->push_back(static_cast<char>(hi << 4 | lo));
        i += 2;
      } else {
        decoded->push_back(raw_path[i]);
      }
    }
  }
  req.path = std::move(*decoded);

  // Keep-alive: HTTP/1.1 defaults on, 1.0 defaults off.
  req.keep_alive = http11;
  if (const auto connection = find_header(req.headers, "connection")) {
    if (iequals(*connection, "close")) req.keep_alive = false;
    if (iequals(*connection, "keep-alive")) req.keep_alive = true;
  }

  // Body framing. Chunked transfer encoding is parseable-but-unserved.
  if (find_header(req.headers, "transfer-encoding")) return fail(ParseResult::unsupported);
  std::size_t content_length = 0;
  if (const auto cl = find_header(req.headers, "content-length")) {
    const auto parsed = parse_u64(trim_ows(*cl));
    if (!parsed) return fail(ParseResult::bad_request);
    if (*parsed > limits_.max_body_bytes) return fail(ParseResult::body_too_large);
    content_length = static_cast<std::size_t>(*parsed);
  }

  buffer_.erase(0, head_end + skip);
  if (content_length == 0) {
    out = std::move(req);
    return ParseResult::request;
  }
  pending_ = std::move(req);
  in_body_ = true;
  body_remaining_ = content_length;
  return ParseResult::need_more;  // caller loops; body may already be buffered
}

ParseResult RequestParser::next(Request& out) {
  if (error_) return *error_;
  for (;;) {
    if (in_body_) {
      if (buffer_.size() < body_remaining_) return ParseResult::need_more;
      pending_.body.assign(buffer_, 0, body_remaining_);
      buffer_.erase(0, body_remaining_);
      in_body_ = false;
      body_remaining_ = 0;
      out = std::move(pending_);
      pending_ = Request{};
      return ParseResult::request;
    }
    if (buffer_.empty()) return ParseResult::need_more;
    const ParseResult r = parse_head(out);
    if (r == ParseResult::request || parse_failed(r)) return r;
    if (!in_body_) return ParseResult::need_more;  // head incomplete
    // Head consumed, body pending: loop to try completing it now.
  }
}

void RequestParser::reset() {
  buffer_.clear();
  error_.reset();
  in_body_ = false;
  body_remaining_ = 0;
  pending_ = Request{};
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string Response::serialize() const {
  std::string out;
  out.reserve(128 + body.size());
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [name, value] : extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

Response json_response(int status, std::string body, bool keep_alive) {
  Response r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  r.keep_alive = keep_alive;
  return r;
}

Response text_response(int status, std::string body, bool keep_alive) {
  Response r;
  r.status = status;
  r.content_type = "text/plain; charset=utf-8";
  r.body = std::move(body);
  r.keep_alive = keep_alive;
  return r;
}

Response error_response(int status, std::string_view code, std::string_view detail,
                        bool keep_alive) {
  std::string body = "{\"error\":\"";
  body += code;
  body += "\",\"detail\":\"";
  for (char c : detail) {  // details are ASCII diagnostics; escape the JSON specials
    if (c == '"' || c == '\\') body += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    body += c;
  }
  body += "\"}";
  return json_response(status, std::move(body), keep_alive);
}

std::optional<std::string_view> ParsedResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

ParseResult ResponseParser::next(ParsedResponse& out) {
  for (;;) {
    if (in_body_) {
      if (buffer_.size() < body_remaining_) return ParseResult::need_more;
      pending_.body.assign(buffer_, 0, body_remaining_);
      buffer_.erase(0, body_remaining_);
      in_body_ = false;
      body_remaining_ = 0;
      out = std::move(pending_);
      pending_ = ParsedResponse{};
      return ParseResult::request;
    }
    std::size_t skip = 0;
    const std::size_t head_end = find_head_end(buffer_, skip);
    if (head_end == std::string_view::npos) return ParseResult::need_more;

    const std::vector<std::string_view> lines =
        split_lines(std::string_view(buffer_).substr(0, head_end));
    if (lines.empty()) return ParseResult::bad_request;
    const std::string_view status_line = lines[0];
    if (status_line.substr(0, 5) != "HTTP/") return ParseResult::bad_request;
    const std::size_t sp1 = status_line.find(' ');
    if (sp1 == std::string_view::npos || sp1 + 4 > status_line.size()) {
      return ParseResult::bad_request;
    }
    const auto code = parse_u64(status_line.substr(sp1 + 1, 3));
    if (!code || *code < 100 || *code > 599) return ParseResult::bad_request;

    ParsedResponse resp;
    resp.status = static_cast<int>(*code);
    if (!parse_header_lines(lines, resp.headers)) return ParseResult::bad_request;

    std::size_t content_length = 0;
    if (const auto cl = resp.header("content-length")) {
      const auto parsed = parse_u64(trim_ows(*cl));
      if (!parsed) return ParseResult::bad_request;
      content_length = static_cast<std::size_t>(*parsed);
    }
    buffer_.erase(0, head_end + skip);
    if (content_length == 0) {
      out = std::move(resp);
      return ParseResult::request;
    }
    pending_ = std::move(resp);
    in_body_ = true;
    body_remaining_ = content_length;
  }
}

void ResponseParser::reset() {
  buffer_.clear();
  in_body_ = false;
  body_remaining_ = 0;
  pending_ = ParsedResponse{};
}

}  // namespace ctwatch::httpd
