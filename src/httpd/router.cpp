#include "ctwatch/httpd/router.hpp"

#include <cctype>

namespace ctwatch::httpd {

namespace {

/// "/ct/v1/get-sth" -> "ct_v1_get_sth": a metric-name-safe route key.
std::string metric_key_for(const std::string& path) {
  std::string key;
  key.reserve(path.size());
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      key.push_back(c);
    } else if (!key.empty() && key.back() != '_') {
      key.push_back('_');
    }
  }
  while (!key.empty() && key.back() == '_') key.pop_back();
  if (key.empty()) key = "root";
  return key;
}

}  // namespace

Router& Router::handle(std::string method, std::string path, Handler handler) {
  for (Route& route : routes_) {
    if (route.method == method && route.path == path) {
      route.handler = std::move(handler);
      return *this;
    }
  }
  Route route;
  route.method = std::move(method);
  route.path = std::move(path);
  route.handler = std::move(handler);
  route.metric_key = metric_key_for(route.path);
  // Resolve the obs handles once here so the per-request path never
  // touches the registry lock.
  route.hits = &obs::Registry::global().counter("httpd.requests." + route.metric_key);
  route.latency_us = &obs::Registry::global().latency("httpd.latency." + route.metric_key);
  routes_.push_back(std::move(route));
  return *this;
}

Router::Match Router::find(const std::string& method, const std::string& path,
                           const Route** route) const {
  bool path_exists = false;
  for (const Route& candidate : routes_) {
    if (candidate.path != path) continue;
    path_exists = true;
    if (candidate.method == method) {
      *route = &candidate;
      return Match::ok;
    }
  }
  return path_exists ? Match::method_not_allowed : Match::not_found;
}

}  // namespace ctwatch::httpd
