#include "ctwatch/monitor/passive_monitor.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "ctwatch/obs/obs.hpp"
#include "ctwatch/par/par.hpp"

namespace ctwatch::monitor {

namespace {

struct MonitorMetrics {
  obs::Counter& connections = obs::Registry::global().counter("monitor.connections");
  obs::Counter& sct_cert = obs::Registry::global().counter("monitor.sct.cert");
  obs::Counter& sct_tls = obs::Registry::global().counter("monitor.sct.tls");
  obs::Counter& sct_ocsp = obs::Registry::global().counter("monitor.sct.ocsp");
  obs::Counter& sct_valid = obs::Registry::global().counter("monitor.sct.valid");
  obs::Counter& sct_invalid = obs::Registry::global().counter("monitor.sct.invalid");
  obs::Counter& cache_hits = obs::Registry::global().counter("monitor.cert_cache.hits");
  obs::Counter& cache_misses = obs::Registry::global().counter("monitor.cert_cache.misses");
};

MonitorMetrics& monitor_metrics() {
  static MonitorMetrics metrics;
  return metrics;
}

}  // namespace

void PassiveMonitor::process(const tls::ConnectionRecord& connection) {
  if (!connection.certificate) {
    throw std::invalid_argument("PassiveMonitor: connection without certificate");
  }
  MonitorMetrics& metrics = monitor_metrics();
  ++totals_.connections;
  metrics.connections.inc();
  DailyCounters& day = daily_[connection.time.day_index()];
  ++day.connections;
  if (connection.client_signals_sct) ++totals_.client_signaled;

  const CertAnalysis& analysis = analyze(connection);

  if (analysis.has_cert_sct) {
    ++totals_.sct_in_cert;
    ++day.sct_in_cert;
    metrics.sct_cert.inc();
  }
  if (analysis.has_tls_sct) {
    ++totals_.sct_in_tls;
    ++day.sct_in_tls;
    metrics.sct_tls.inc();
  }
  if (analysis.has_ocsp_sct) {
    ++totals_.sct_in_ocsp;
    ++day.sct_in_ocsp;
    metrics.sct_ocsp.inc();
  }
  if (analysis.has_cert_sct || analysis.has_tls_sct || analysis.has_ocsp_sct) {
    ++totals_.with_any_sct;
    ++day.with_any_sct;
    note_sct_connection(connection.time.day_index(), connection.server_name);
  }
  if (analysis.has_cert_sct && analysis.has_tls_sct) ++totals_.cert_and_tls;
  if (analysis.has_cert_sct && analysis.has_ocsp_sct) ++totals_.cert_and_ocsp;
  if (analysis.has_tls_sct && analysis.has_ocsp_sct) ++totals_.tls_and_ocsp;

  auto bump = [this, &metrics](const std::vector<std::pair<std::string, bool>>& channel,
                               tls::SctDelivery delivery) {
    for (const auto& [log_name, valid] : channel) {
      LogUsage& usage = log_usage_[log_name];
      switch (delivery) {
        case tls::SctDelivery::certificate:
          ++usage.cert_scts;
          break;
        case tls::SctDelivery::tls_extension:
          ++usage.tls_scts;
          break;
        case tls::SctDelivery::ocsp_staple:
          ++usage.ocsp_scts;
          break;
      }
      if (valid) {
        ++totals_.valid_scts;
        metrics.sct_valid.inc();
      } else {
        ++totals_.invalid_scts;
        metrics.sct_invalid.inc();
      }
    }
  };
  bump(analysis.cert_channel, tls::SctDelivery::certificate);
  bump(analysis.tls_channel, tls::SctDelivery::tls_extension);
  bump(analysis.ocsp_channel, tls::SctDelivery::ocsp_staple);
}

void PassiveMonitor::note_sct_connection(std::int64_t day, const std::string& server_name) {
  if (day != scratch_day_) {
    finalize_scratch_day();
    scratch_day_ = day;
  }
  ++scratch_counts_[server_names_->intern(server_name)];
}

void PassiveMonitor::finalize_scratch_day() {
  if (scratch_day_ < 0 || scratch_counts_.empty()) {
    scratch_counts_.clear();
    return;
  }
  // Highest count wins; ties go to the earlier-interned (first-seen) name,
  // making the attribution deterministic.
  namepool::LabelId top_id = 0;
  std::uint64_t top_count = 0;
  bool have_top = false;
  for (const auto& [id, count] : scratch_counts_) {
    if (!have_top || count > top_count || (count == top_count && id < top_id)) {
      top_id = id;
      top_count = count;
      have_top = true;
    }
  }
  auto& slot = daily_top_[scratch_day_];
  if (top_count > slot.second) slot = {std::string(server_names_->text(top_id)), top_count};
  scratch_counts_.clear();
}

const PassiveMonitor::CertAnalysis& PassiveMonitor::analyze(
    const tls::ConnectionRecord& connection) {
  const x509::Certificate* key = connection.certificate.get();
  if (const auto it = cache_.find(key); it != cache_.end()) {
    monitor_metrics().cache_hits.inc();
    return it->second;
  }
  monitor_metrics().cache_misses.inc();
  if (const auto it = pending_.find(key); it != pending_.end()) {
    CertAnalysis analysis = std::move(it->second);
    pending_.erase(it);
    return adopt_analysis(key, std::move(analysis));
  }
  return adopt_analysis(key, compute_analysis(connection));
}

const PassiveMonitor::CertAnalysis& PassiveMonitor::adopt_analysis(const x509::Certificate* key,
                                                                   CertAnalysis analysis) {
  ++totals_.unique_certificates;
  if (analysis.has_cert_sct) ++totals_.unique_certs_with_embedded_sct;
  for (InvalidSctObservation& observation : analysis.invalid_observations) {
    invalid_.push_back(std::move(observation));
  }
  analysis.invalid_observations.clear();
  return cache_.emplace(key, std::move(analysis)).first->second;
}

PassiveMonitor::CertAnalysis PassiveMonitor::compute_analysis(
    const tls::ConnectionRecord& connection) const {
  CertAnalysis analysis;

  const tls::SctList cert_scts = tls::embedded_scts(*connection.certificate);
  analysis.has_cert_sct = !cert_scts.empty();
  analysis.has_tls_sct =
      connection.tls_extension_scts && !connection.tls_extension_scts->empty();
  analysis.has_ocsp_sct = connection.ocsp_scts && !connection.ocsp_scts->empty();

  // Embedded SCTs cover the reconstructed precertificate entry; SCTs in the
  // TLS extension or a stapled OCSP response cover the final certificate.
  if (analysis.has_cert_sct) {
    const Bytes empty_key;
    const ct::SignedEntry precert_entry = ct::make_precert_entry(
        *connection.certificate,
        connection.issuer_public_key ? BytesView{*connection.issuer_public_key} : BytesView{empty_key});
    validate_channel(cert_scts, precert_entry, connection, tls::SctDelivery::certificate,
                     analysis.cert_channel, analysis.invalid_observations);
  }
  if (analysis.has_tls_sct || analysis.has_ocsp_sct) {
    const ct::SignedEntry x509_entry = ct::make_x509_entry(*connection.certificate);
    if (analysis.has_tls_sct) {
      validate_channel(*connection.tls_extension_scts, x509_entry, connection,
                       tls::SctDelivery::tls_extension, analysis.tls_channel,
                       analysis.invalid_observations);
    }
    if (analysis.has_ocsp_sct) {
      validate_channel(*connection.ocsp_scts, x509_entry, connection,
                       tls::SctDelivery::ocsp_staple, analysis.ocsp_channel,
                       analysis.invalid_observations);
    }
  }
  return analysis;
}

void PassiveMonitor::process_batch(std::span<const tls::ConnectionRecord> connections) {
  // Stage 1 — serial: the first connection of every not-yet-cached
  // certificate, in stream order.
  std::vector<std::size_t> fresh;
  {
    std::unordered_set<const x509::Certificate*> queued;
    for (std::size_t i = 0; i < connections.size(); ++i) {
      const x509::Certificate* key = connections[i].certificate.get();
      if (key == nullptr) continue;  // process() throws when replayed below
      if (cache_.contains(key) || pending_.contains(key)) continue;
      if (queued.insert(key).second) fresh.push_back(i);
    }
  }

  // Stage 2 — parallel: the expensive signature checks, one pure
  // compute_analysis per fresh certificate.
  std::vector<CertAnalysis> computed(fresh.size());
  par::parallel_for(fresh.size(), 1, [&](std::size_t i) {
    computed[i] = compute_analysis(connections[fresh[i]]);
  });

  // Stage 3 — serial: stage the analyses, then replay the stream through
  // the ordinary path; analyze() adopts each pending analysis at its
  // certificate's first connection, so every counter, order effect and
  // cache hit/miss metric lands exactly as in a record-by-record run.
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    pending_.emplace(connections[fresh[i]].certificate.get(), std::move(computed[i]));
  }
  for (const tls::ConnectionRecord& connection : connections) process(connection);
}

void PassiveMonitor::validate_channel(const tls::SctList& scts, const ct::SignedEntry& entry,
                                      const tls::ConnectionRecord& connection,
                                      tls::SctDelivery delivery,
                                      std::vector<std::pair<std::string, bool>>& out,
                                      std::vector<InvalidSctObservation>& invalid_out) const {
  for (const auto& sct : scts) {
    const ct::LogListEntry* log = logs_->find(sct.log_id);
    const std::string log_name = log != nullptr ? log->name : "<unknown>";
    const bool valid = log != nullptr && ct::verify_sct(sct, entry, log->public_key);
    if (!valid) {
      const crypto::Digest fp = connection.certificate->fingerprint();
      invalid_out.push_back(InvalidSctObservation{
          connection.server_name, connection.certificate->tbs.issuer.common_name, delivery,
          log != nullptr ? log->name : "", Bytes(fp.begin(), fp.end())});
      obs::log_debug("monitor", "sct validation failed",
                     {{"server", connection.server_name},
                      {"log", log_name},
                      {"issuer", connection.certificate->tbs.issuer.common_name}});
    }
    out.emplace_back(log_name, valid);
  }
}

}  // namespace ctwatch::monitor
