#include "ctwatch/monitor/ssl_log.hpp"

namespace ctwatch::monitor {

SslLogWriter::SslLogWriter(std::ostream& out, const ct::LogList& logs)
    : out_(&out), logs_(&logs) {
  // Bro-style header block.
  *out_ << "#separator \\x09\n"
        << "#fields\tts\tserver_name\tclient_sct_support\tcert_scts\ttls_scts\tocsp_scts"
           "\tvalid_scts\tinvalid_scts\tissuer\n";
}

void SslLogWriter::process(const tls::ConnectionRecord& connection) {
  std::size_t valid = 0, invalid = 0;
  std::size_t cert_count = 0, tls_count = 0, ocsp_count = 0;

  auto validate = [&](const tls::SctList& scts, const ct::SignedEntry& entry) {
    for (const auto& sct : scts) {
      const ct::LogListEntry* log = logs_->find(sct.log_id);
      if (log != nullptr && ct::verify_sct(sct, entry, log->public_key)) {
        ++valid;
      } else {
        ++invalid;
      }
    }
  };

  std::string issuer;
  if (connection.certificate) {
    issuer = connection.certificate->tbs.issuer.common_name;
    const tls::SctList cert_scts = tls::embedded_scts(*connection.certificate);
    cert_count = cert_scts.size();
    if (!cert_scts.empty()) {
      const Bytes empty;
      validate(cert_scts,
               ct::make_precert_entry(*connection.certificate,
                                      connection.issuer_public_key
                                          ? BytesView{*connection.issuer_public_key}
                                          : BytesView{empty}));
    }
    const bool staple = (connection.tls_extension_scts && !connection.tls_extension_scts->empty()) ||
                        (connection.ocsp_scts && !connection.ocsp_scts->empty());
    if (staple) {
      const ct::SignedEntry x509_entry = ct::make_x509_entry(*connection.certificate);
      if (connection.tls_extension_scts) {
        tls_count = connection.tls_extension_scts->size();
        validate(*connection.tls_extension_scts, x509_entry);
      }
      if (connection.ocsp_scts) {
        ocsp_count = connection.ocsp_scts->size();
        validate(*connection.ocsp_scts, x509_entry);
      }
    }
  }

  *out_ << connection.time.unix_seconds() << '\t' << connection.server_name << '\t'
        << (connection.client_signals_sct ? 'T' : 'F') << '\t' << cert_count << '\t'
        << tls_count << '\t' << ocsp_count << '\t' << valid << '\t' << invalid << '\t'
        << issuer << '\n';
  ++lines_;
}

}  // namespace ctwatch::monitor
