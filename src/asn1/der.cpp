#include "ctwatch/asn1/der.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "ctwatch/obs/log.hpp"
#include "ctwatch/util/strings.hpp"

namespace ctwatch::asn1 {

namespace {

// DER parse failures surface as exceptions to the caller; the default-
// silent structured log adds the byte offset for pipeline debugging.
[[noreturn]] void parse_error(const char* reason, std::size_t offset) {
  obs::log_debug("asn1.der", "parse error", {{"reason", reason}, {"offset", offset}});
  throw std::invalid_argument(std::string("DER parser: ") + reason);
}

}  // namespace

Oid Oid::parse(const std::string& dotted) {
  Oid oid;
  for (const std::string& part : split(dotted, '.')) {
    if (part.empty()) throw std::invalid_argument("Oid::parse: empty arc in " + dotted);
    std::uint64_t value = 0;
    for (char c : part) {
      if (c < '0' || c > '9') throw std::invalid_argument("Oid::parse: non-digit in " + dotted);
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xffffffffULL) throw std::invalid_argument("Oid::parse: arc too large");
    }
    oid.arcs.push_back(static_cast<std::uint32_t>(value));
  }
  if (oid.arcs.size() < 2) throw std::invalid_argument("Oid::parse: need at least two arcs");
  if (oid.arcs[0] > 2 || (oid.arcs[0] < 2 && oid.arcs[1] > 39)) {
    throw std::invalid_argument("Oid::parse: invalid leading arcs");
  }
  return oid;
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(arcs[i]);
  }
  return out;
}

Bytes encode_length(std::size_t length) {
  Bytes out;
  if (length < 0x80) {
    out.push_back(static_cast<std::uint8_t>(length));
    return out;
  }
  Bytes digits;
  while (length > 0) {
    digits.push_back(static_cast<std::uint8_t>(length & 0xff));
    length >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | digits.size()));
  out.insert(out.end(), digits.rbegin(), digits.rend());
  return out;
}

Bytes tlv(std::uint8_t tag, BytesView value) {
  Bytes out;
  out.reserve(value.size() + 6);
  out.push_back(tag);
  const Bytes len = encode_length(value.size());
  out.insert(out.end(), len.begin(), len.end());
  out.insert(out.end(), value.begin(), value.end());
  return out;
}

Bytes encode_boolean(bool value) {
  const std::uint8_t body = value ? 0xff : 0x00;
  return tlv(kTagBoolean, BytesView{&body, 1});
}

Bytes encode_integer(std::int64_t value) {
  // Minimal two's-complement big-endian encoding.
  Bytes body;
  bool more = true;
  while (more) {
    const auto byte = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
    body.push_back(byte);
    // Stop when remaining bits are a pure sign extension of this byte.
    more = !((value == 0 && !(byte & 0x80)) || (value == -1 && (byte & 0x80)));
  }
  std::reverse(body.begin(), body.end());
  return tlv(kTagInteger, body);
}

Bytes encode_integer_unsigned(BytesView magnitude) {
  std::size_t start = 0;
  while (start < magnitude.size() && magnitude[start] == 0) ++start;
  Bytes body;
  if (start == magnitude.size()) {
    body.push_back(0);
  } else {
    if (magnitude[start] & 0x80) body.push_back(0);
    body.insert(body.end(), magnitude.begin() + static_cast<std::ptrdiff_t>(start),
                magnitude.end());
  }
  return tlv(kTagInteger, body);
}

Bytes encode_octet_string(BytesView value) { return tlv(kTagOctetString, value); }

Bytes encode_bit_string(BytesView value) {
  Bytes body;
  body.reserve(value.size() + 1);
  body.push_back(0);  // no unused bits
  body.insert(body.end(), value.begin(), value.end());
  return tlv(kTagBitString, body);
}

Bytes encode_null() { return tlv(kTagNull, BytesView{}); }

Bytes encode_oid(const Oid& oid) {
  if (oid.arcs.size() < 2) throw std::invalid_argument("encode_oid: need at least two arcs");
  Bytes body;
  auto push_base128 = [&body](std::uint64_t v) {
    std::uint8_t chunks[10];
    int n = 0;
    do {
      chunks[n++] = static_cast<std::uint8_t>(v & 0x7f);
      v >>= 7;
    } while (v > 0);
    for (int i = n - 1; i >= 0; --i) {
      body.push_back(static_cast<std::uint8_t>(chunks[i] | (i > 0 ? 0x80 : 0x00)));
    }
  };
  push_base128(static_cast<std::uint64_t>(oid.arcs[0]) * 40 + oid.arcs[1]);
  for (std::size_t i = 2; i < oid.arcs.size(); ++i) push_base128(oid.arcs[i]);
  return tlv(kTagOid, body);
}

Bytes encode_utf8_string(const std::string& value) {
  return tlv(kTagUtf8String, to_bytes(value));
}

Bytes encode_printable_string(const std::string& value) {
  return tlv(kTagPrintableString, to_bytes(value));
}

Bytes encode_ia5_string(const std::string& value) { return tlv(kTagIa5String, to_bytes(value)); }

Bytes encode_utc_time(SimTime t) {
  const CivilTime c = t.civil();
  if (c.year < 1950 || c.year > 2049) {
    throw std::invalid_argument("encode_utc_time: year outside UTCTime range");
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "%02d%02d%02d%02d%02d%02dZ", c.year % 100, c.month, c.day,
                c.hour, c.minute, c.second);
  return tlv(kTagUtcTime, to_bytes(buf));
}

Bytes encode_generalized_time(SimTime t) {
  const CivilTime c = t.civil();
  char buf[20];
  std::snprintf(buf, sizeof buf, "%04d%02d%02d%02d%02d%02dZ", c.year, c.month, c.day, c.hour,
                c.minute, c.second);
  return tlv(kTagGeneralizedTime, to_bytes(buf));
}

Bytes encode_sequence(const std::vector<Bytes>& elements) {
  Bytes body;
  for (const Bytes& e : elements) body.insert(body.end(), e.begin(), e.end());
  return tlv(kTagSequence, body);
}

Bytes encode_set_of(std::vector<Bytes> elements) {
  std::sort(elements.begin(), elements.end());
  Bytes body;
  for (const Bytes& e : elements) body.insert(body.end(), e.begin(), e.end());
  return tlv(kTagSet, body);
}

Bytes encode_explicit(unsigned n, BytesView inner) {
  return tlv(context_tag(n, /*constructed=*/true), inner);
}

Tlv Parser::next() {
  if (done()) parse_error("input exhausted", pos_);
  const std::size_t start = pos_;
  const std::uint8_t tag = data_[pos_++];
  if ((tag & 0x1f) == 0x1f) parse_error("multi-byte tags unsupported", start);
  if (pos_ >= data_.size()) parse_error("truncated length", start);
  std::size_t length = 0;
  const std::uint8_t first = data_[pos_++];
  if (first < 0x80) {
    length = first;
  } else {
    const std::size_t count = first & 0x7f;
    if (count == 0 || count > sizeof(std::size_t)) {
      parse_error("unsupported length form", start);
    }
    if (pos_ + count > data_.size()) parse_error("truncated length", start);
    for (std::size_t i = 0; i < count; ++i) length = length << 8 | data_[pos_++];
    if (length < 0x80) parse_error("non-minimal length", start);
  }
  if (pos_ + length > data_.size()) parse_error("truncated value", start);
  Tlv out;
  out.tag = tag;
  out.value = data_.subspan(pos_, length);
  out.raw = data_.subspan(start, pos_ + length - start);
  pos_ += length;
  return out;
}

Tlv Parser::expect(std::uint8_t tag) {
  const Tlv t = next();
  if (t.tag != tag) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "DER parser: expected tag 0x%02x, got 0x%02x", tag, t.tag);
    obs::log_debug("asn1.der", "tag mismatch", {{"expected", tag}, {"got", t.tag}});
    throw std::invalid_argument(buf);
  }
  return t;
}

std::uint8_t Parser::peek_tag() const { return done() ? 0 : data_[pos_]; }

bool decode_boolean(const Tlv& t) {
  if (t.tag != kTagBoolean || t.value.size() != 1) {
    throw std::invalid_argument("decode_boolean: not a BOOLEAN");
  }
  return t.value[0] != 0;
}

std::int64_t decode_integer(const Tlv& t) {
  if (t.tag != kTagInteger || t.value.empty() || t.value.size() > 8) {
    throw std::invalid_argument("decode_integer: not a small INTEGER");
  }
  std::int64_t v = (t.value[0] & 0x80) ? -1 : 0;
  for (std::uint8_t b : t.value) v = v << 8 | b;
  return v;
}

Bytes decode_integer_unsigned(const Tlv& t) {
  if (t.tag != kTagInteger || t.value.empty()) {
    throw std::invalid_argument("decode_integer_unsigned: not an INTEGER");
  }
  if (t.value[0] & 0x80) throw std::invalid_argument("decode_integer_unsigned: negative");
  std::size_t start = 0;
  while (start + 1 < t.value.size() && t.value[start] == 0) ++start;
  return Bytes(t.value.begin() + static_cast<std::ptrdiff_t>(start), t.value.end());
}

Oid decode_oid(const Tlv& t) {
  if (t.tag != kTagOid || t.value.empty()) throw std::invalid_argument("decode_oid: not an OID");
  Oid oid;
  std::uint64_t acc = 0;
  bool first_arc = true;
  for (std::size_t i = 0; i < t.value.size(); ++i) {
    acc = acc << 7 | (t.value[i] & 0x7f);
    if (acc > 0xffffffffULL) throw std::invalid_argument("decode_oid: arc too large");
    if (!(t.value[i] & 0x80)) {
      if (first_arc) {
        const std::uint32_t combined = static_cast<std::uint32_t>(acc);
        const std::uint32_t a0 = combined < 80 ? combined / 40 : 2;
        oid.arcs.push_back(a0);
        oid.arcs.push_back(combined - a0 * 40);
        first_arc = false;
      } else {
        oid.arcs.push_back(static_cast<std::uint32_t>(acc));
      }
      acc = 0;
    }
  }
  if (t.value.back() & 0x80) throw std::invalid_argument("decode_oid: truncated arc");
  return oid;
}

std::string decode_string(const Tlv& t) {
  if (t.tag != kTagUtf8String && t.tag != kTagPrintableString && t.tag != kTagIa5String) {
    throw std::invalid_argument("decode_string: not a string type");
  }
  return to_string(t.value);
}

SimTime decode_time(const Tlv& t) {
  const std::string s = to_string(t.value);
  CivilTime c;
  if (t.tag == kTagUtcTime) {
    if (s.size() != 13 || s.back() != 'Z') throw std::invalid_argument("decode_time: bad UTCTime");
    const int yy = std::stoi(s.substr(0, 2));
    c.year = yy >= 50 ? 1900 + yy : 2000 + yy;
    c.month = std::stoi(s.substr(2, 2));
    c.day = std::stoi(s.substr(4, 2));
    c.hour = std::stoi(s.substr(6, 2));
    c.minute = std::stoi(s.substr(8, 2));
    c.second = std::stoi(s.substr(10, 2));
  } else if (t.tag == kTagGeneralizedTime) {
    if (s.size() != 15 || s.back() != 'Z') {
      throw std::invalid_argument("decode_time: bad GeneralizedTime");
    }
    c.year = std::stoi(s.substr(0, 4));
    c.month = std::stoi(s.substr(4, 2));
    c.day = std::stoi(s.substr(6, 2));
    c.hour = std::stoi(s.substr(8, 2));
    c.minute = std::stoi(s.substr(10, 2));
    c.second = std::stoi(s.substr(12, 2));
  } else {
    throw std::invalid_argument("decode_time: not a time type");
  }
  return SimTime::from_civil(c);
}

BytesView decode_bit_string(const Tlv& t) {
  if (t.tag != kTagBitString || t.value.empty() || t.value[0] != 0) {
    throw std::invalid_argument("decode_bit_string: unsupported BIT STRING");
  }
  return t.value.subspan(1);
}

}  // namespace ctwatch::asn1
