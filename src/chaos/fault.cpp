#include "ctwatch/chaos/fault.hpp"

#include <cmath>

#include "ctwatch/obs/obs.hpp"
#include "ctwatch/util/rng.hpp"

namespace ctwatch::chaos {

namespace {

struct ChaosMetrics {
  obs::Counter& evaluations = obs::Registry::global().counter("chaos.evaluations");
  obs::Counter& faults = obs::Registry::global().counter("chaos.faults");
  obs::Counter& errors = obs::Registry::global().counter("chaos.errors");
  obs::Counter& timeouts = obs::Registry::global().counter("chaos.timeouts");
  obs::Histogram& latency_us = obs::Registry::global().histogram(
      "chaos.injected_latency_us", obs::exponential_bounds(1.0, 4.0, 16));
};

ChaosMetrics& chaos_metrics() {
  static ChaosMetrics metrics;
  return metrics;
}

// FNV-1a, implemented here rather than std::hash so the (seed, name, i)
// determinism contract holds across standard libraries.
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double to_unit(std::uint64_t x) { return static_cast<double>(x >> 11) * 0x1.0p-53; }

thread_local StreamScope* tl_scope = nullptr;

}  // namespace

StreamScope::StreamScope(std::uint64_t stream_id) : stream_id_(stream_id), prev_(tl_scope) {
  tl_scope = this;
}

StreamScope::~StreamScope() { tl_scope = prev_; }

StreamScope* StreamScope::current() { return tl_scope; }

void FaultInjector::plan(const std::string& point, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  point_for_locked(point).plan = std::make_shared<const FaultPlan>(std::move(plan));
}

FaultInjector::Point& FaultInjector::point_for_locked(const std::string& name) {
  auto& slot = points_[name];
  if (!slot) {
    slot = std::make_unique<Point>();
    slot->name_hash = fnv1a(name);
    slot->plan = std::make_shared<const FaultPlan>();  // healthy default
  }
  return *slot;
}

FaultDecision FaultInjector::evaluate(const std::string& point, std::uint64_t now_us) {
  Point* state = nullptr;
  std::shared_ptr<const FaultPlan> plan_ref;
  {
    // Snapshot the plan pointer under the lock: plan() may race evaluate()
    // from another thread, and points_ may rehash under insertion.
    std::lock_guard<std::mutex> lock(mu_);
    state = &point_for_locked(point);
    plan_ref = state->plan;
  }
  const FaultPlan& plan = *plan_ref;
  // The global ordinal always advances (it backs evaluations()); inside a
  // StreamScope the draw is instead keyed to (stream id, local ordinal),
  // making it independent of how concurrent chunks interleave.
  const std::uint64_t ordinal = state->ordinal.fetch_add(1, std::memory_order_relaxed);

  // The point's stream: four independent uniform draws per ordinal, each
  // a pure function of (seed, name, ordinal) — plus the scope's stream id
  // when one is active.
  std::uint64_t stream = seed_ ^ state->name_hash;
  if (StreamScope* scope = StreamScope::current()) {
    std::uint64_t id_state = scope->stream_id() ^ 0xd1b54a32d192ed03ULL;
    stream ^= splitmix64(id_state);
    stream += 0x9e3779b97f4a7c15ULL * (scope->next_ordinal(state->name_hash) + 1);
  } else {
    stream += 0x9e3779b97f4a7c15ULL * (ordinal + 1);
  }
  const double u_error = to_unit(splitmix64(stream));
  const double u_kind = to_unit(splitmix64(stream));
  const double u_jitter = to_unit(splitmix64(stream));
  const double u_tail = to_unit(splitmix64(stream));

  FaultDecision decision;
  decision.latency_us = plan.latency_base_us;
  if (plan.latency_jitter_us > 0) {
    decision.latency_us +=
        static_cast<std::uint64_t>(u_jitter * static_cast<double>(plan.latency_jitter_us + 1));
  }
  if (plan.latency_exp_mean_us > 0.0) {
    decision.latency_us +=
        static_cast<std::uint64_t>(-plan.latency_exp_mean_us * std::log(1.0 - u_tail));
  }

  bool in_outage = false;
  for (const OutageWindow& window : plan.outages) {
    if (window.contains(now_us)) {
      in_outage = true;
      break;
    }
  }
  if (in_outage) {
    decision.kind = plan.outage_kind;
  } else if (u_error < plan.error_probability) {
    decision.kind = u_kind < plan.timeout_fraction ? FaultKind::timeout : FaultKind::error;
  }

  ChaosMetrics& metrics = chaos_metrics();
  metrics.evaluations.inc();
  metrics.latency_us.observe(static_cast<double>(decision.latency_us));
  if (decision.faulted()) {
    state->faults.fetch_add(1, std::memory_order_relaxed);
    metrics.faults.inc();
    (decision.kind == FaultKind::timeout ? metrics.timeouts : metrics.errors).inc();
    // Anomalies land in the flight recorder: a post-mortem dump shows
    // which injected fault preceded the failure, with its point ordinal.
    obs::flight_note("chaos.fault", ordinal, static_cast<std::uint64_t>(decision.kind));
  }
  return decision;
}

std::uint64_t FaultInjector::evaluations(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second->ordinal.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultInjector::faults(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second->faults.load(std::memory_order_relaxed) : 0;
}

void FaultInjector::reset_ordinals() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, point] : points_) {
    point->ordinal.store(0, std::memory_order_relaxed);
    point->faults.store(0, std::memory_order_relaxed);
  }
}

}  // namespace ctwatch::chaos
