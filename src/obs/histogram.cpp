#include "ctwatch/obs/histogram.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>

namespace ctwatch::obs {

double LogLinearHistogram::bucket_lower(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kBucketCount) index = kBucketCount - 1;
  const std::size_t linear = index - 1;
  const std::size_t octave = linear / kSubBuckets;
  const std::size_t sub = linear % kSubBuckets;
  const double base = std::ldexp(1.0, static_cast<int>(octave));  // 2^octave
  return base * (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double LogLinearHistogram::bucket_upper(std::size_t index) {
  if (index + 1 >= kBucketCount) return std::ldexp(1.0, static_cast<int>(kOctaves));
  return bucket_lower(index + 1);
}

double LogLinearHistogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (!(q >= 0.0)) q = 0.0;  // also catches NaN
  if (q > 1.0) q = 1.0;
  // rank in [1, n]: the q-th order statistic, so q=0 targets the first
  // recorded value's bucket and q=1 the last.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5));
  std::uint64_t cumulative = 0;
  std::size_t last_occupied = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    last_occupied = i;
    cumulative += in_bucket;
    if (cumulative >= rank) {
      return 0.5 * (bucket_lower(i) + bucket_upper(i));
    }
  }
  // Concurrent writers can make the per-bucket sum lag count_; report the
  // highest bucket seen rather than inventing a value past it.
  return 0.5 * (bucket_lower(last_occupied) + bucket_upper(last_occupied));
}

void LogLinearHistogram::merge_from(const LogLinearHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed), std::memory_order_relaxed);
}

void LogLinearHistogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
