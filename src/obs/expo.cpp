#include "ctwatch/obs/expo.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "ctwatch/obs/metrics.hpp"
#include "ctwatch/obs/trace.hpp"

namespace ctwatch::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;  // header-only requests; no bodies
constexpr std::size_t kMaxConnections = 64;

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// One accepted connection: bytes in until a blank line, bytes out until
// the response drains, then either reset for keep-alive or close.
struct Connection {
  int fd = -1;
  std::string in;
  std::string out;
  std::size_t out_pos = 0;
  bool close_after_write = false;
};

std::string http_response(int status, const char* reason, const std::string& content_type,
                          const std::string& body, bool keep_alive) {
  std::ostringstream out;
  out << "HTTP/1.1 " << status << " " << reason << "\r\n"
      << "Content-Type: " << content_type << "\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: " << (keep_alive ? "keep-alive" : "close") << "\r\n\r\n"
      << body;
  return out.str();
}

std::string trace_json(std::size_t limit) {
  const std::vector<SpanRecord> spans = Tracer::global().recent_spans(limit);
  std::ostringstream out;
  out << "{\"spans\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":" << span.id << ",\"parent\":" << span.parent_id
        << ",\"trace\":" << span.trace_id << ",\"thread\":" << span.thread_id << ",\"name\":\""
        << span.name << "\",\"start_us\":" << span.start_us << ",\"dur_us\":" << span.duration_us
        << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace

ExpoServer::~ExpoServer() { stop(); }

bool ExpoServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      listen(listen_fd_, 16) != 0 || !set_nonblocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  // Resolve the ephemeral port before the caller can observe running().
  sockaddr_in bound = {};
  socklen_t bound_len = sizeof bound;
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (pipe(wake_fds_) != 0 || !set_nonblocking(wake_fds_[0])) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (wake_fds_[0] >= 0) close(wake_fds_[0]);
    if (wake_fds_[1] >= 0) close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    return false;
  }

  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void ExpoServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Poke the self-pipe so a parked poll() returns immediately.
  const char byte = 'x';
  (void)!write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  close(wake_fds_[0]);
  close(wake_fds_[1]);
  listen_fd_ = -1;
  wake_fds_[0] = wake_fds_[1] = -1;
  port_.store(0, std::memory_order_release);
}

std::string ExpoServer::respond(const std::string& method, const std::string& path,
                                bool keep_alive) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (method != "GET") {
    return http_response(405, "Method Not Allowed", "text/plain; charset=utf-8",
                         "method not allowed\n", keep_alive);
  }
  // Ignore any query string: /metrics?foo=1 is still /metrics.
  const std::string route = path.substr(0, path.find('?'));
  if (route == "/metrics") {
    return http_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                         Registry::global().render_prometheus(), keep_alive);
  }
  if (route == "/vars") {
    return http_response(200, "OK", "application/json", Registry::global().render_json(),
                         keep_alive);
  }
  if (route == "/trace") {
    return http_response(200, "OK", "application/json", trace_json(256), keep_alive);
  }
  if (route == "/" || route == "/healthz") {
    return http_response(200, "OK", "text/plain; charset=utf-8", "ctwatch obs\n", keep_alive);
  }
  return http_response(404, "Not Found", "text/plain; charset=utf-8", "not found\n", keep_alive);
}

void ExpoServer::serve_loop() {
  std::vector<Connection> connections;

  while (running_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_fds_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const Connection& connection : connections) {
      short events = POLLIN;
      if (connection.out_pos < connection.out.size()) events |= POLLOUT;
      fds.push_back({connection.fd, events, 0});
    }

    if (poll(fds.data(), static_cast<nfds_t>(fds.size()), 500) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;

    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      while (read(wake_fds_[0], drain, sizeof drain) > 0) {
      }
    }

    if ((fds[1].revents & POLLIN) != 0) {
      for (;;) {
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (connections.size() >= kMaxConnections || !set_nonblocking(fd)) {
          close(fd);
          continue;
        }
        Connection connection;
        connection.fd = fd;
        connections.push_back(std::move(connection));
      }
    }

    for (std::size_t i = 0; i < connections.size(); ++i) {
      Connection& connection = connections[i];
      // pollfd index: 2 fixed slots, then connections in order — but
      // accepts above may have grown the vector past what was polled.
      const std::size_t fd_index = i + 2;
      if (fd_index >= fds.size()) break;
      const short revents = fds[fd_index].revents;
      bool dead = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;

      if (!dead && (revents & POLLIN) != 0) {
        char buf[2048];
        for (;;) {
          const ssize_t n = read(connection.fd, buf, sizeof buf);
          if (n > 0) {
            connection.in.append(buf, static_cast<std::size_t>(n));
            if (connection.in.size() > kMaxRequestBytes) {
              dead = true;
              break;
            }
            continue;
          }
          if (n == 0) dead = true;  // peer closed
          break;                    // EAGAIN or EOF
        }
        // Parse complete requests off the front (clients may pipeline).
        std::size_t header_end;
        while (!dead && (header_end = connection.in.find("\r\n\r\n")) != std::string::npos) {
          const std::string head = connection.in.substr(0, header_end);
          connection.in.erase(0, header_end + 4);
          std::istringstream request(head);
          std::string method, path, version;
          request >> method >> path >> version;
          // Keep-alive is HTTP/1.1's default; honor an explicit close.
          bool keep_alive = version != "HTTP/1.0";
          std::string lowered = head;
          std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                         [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
          if (lowered.find("connection: close") != std::string::npos) keep_alive = false;
          connection.out += respond(method, path, keep_alive);
          if (!keep_alive) {
            connection.close_after_write = true;
            break;
          }
        }
      }

      if (!dead && connection.out_pos < connection.out.size()) {
        for (;;) {
          const ssize_t n = write(connection.fd, connection.out.data() + connection.out_pos,
                                  connection.out.size() - connection.out_pos);
          if (n <= 0) break;  // EAGAIN: poll will re-arm POLLOUT
          connection.out_pos += static_cast<std::size_t>(n);
          if (connection.out_pos == connection.out.size()) break;
        }
        if (connection.out_pos == connection.out.size()) {
          connection.out.clear();
          connection.out_pos = 0;
          if (connection.close_after_write) dead = true;
        }
      }

      if (dead) {
        close(connection.fd);
        connections.erase(connections.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
        // fds no longer lines up past this point; the next poll rebuilds it.
        break;
      }
    }
  }

  for (Connection& connection : connections) close(connection.fd);
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
