#include "ctwatch/obs/metrics.hpp"

#include "ctwatch/obs/obs.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace ctwatch::obs {

namespace {

// Default layout for ScopedTimer-fed histograms: 1us .. ~16s.
std::vector<double> default_latency_bounds() { return exponential_bounds(1.0, 2.0, 24); }

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// "logsvc.queue_wait_us" -> "ctwatch_logsvc_queue_wait_us". Prometheus
// names admit [a-zA-Z0-9_:]; our only other charset member is '.'.
std::string prometheus_name(const std::string& name) {
  std::string out = "ctwatch_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += (c == '.') ? '_' : c;
  return out;
}

}  // namespace

bool is_valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const char first = name.front();
  if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) return false;
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.')) return false;
  }
  return true;
}

std::vector<double> exponential_bounds(double start, double factor, std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // rank in [1, n]: q=0 targets the first observation's bucket instead of
  // interpolating below every recorded value, q=1 the last observation's.
  const double rank = std::max(1.0, q * static_cast<double>(n));
  double cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets_[i].load(std::memory_order_relaxed));
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      // Overflow bucket: clamp to the largest finite bound rather than
      // inventing a value past the layout.
      if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
      const double upper = bounds_[i];
      const double lower = i == 0 ? std::min(0.0, upper) : bounds_[i - 1];
      const double within = std::clamp((rank - cumulative) / in_bucket, 0.0, 1.0);
      return lower + (upper - lower) * within;
    }
    cumulative += in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  // Intentionally leaked: worker threads (ctwatch::par's global pool) may
  // still be incrementing counters while function-local statics are torn
  // down at exit. A heap singleton with no destructor call means metric
  // storage outlives every thread; the OS reclaims it at process end.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  assert(is_valid_metric_name(name));
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  assert(is_valid_metric_name(name));
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  assert(is_valid_metric_name(name));
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    if (bounds.empty()) bounds = default_latency_bounds();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

LogLinearHistogram& Registry::latency(const std::string& name) {
  assert(is_valid_metric_name(name));
  std::lock_guard lock(mu_);
  auto& slot = latencies_[name];
  if (!slot) slot = std::make_unique<LogLinearHistogram>();
  return *slot;
}

// One distribution row, whichever histogram type backs it. Snapshotting
// through this keeps the two maps rendering identically everywhere.
struct Registry::DistRow {
  std::string name;
  std::uint64_t count;
  double sum, mean, p50, p90, p99;
};

std::vector<Registry::DistRow> Registry::distribution_rows() const {
  std::vector<DistRow> rows;
  rows.reserve(histograms_.size() + latencies_.size());
  const auto snap = [&rows](const std::string& name, const auto& h) {
    rows.push_back({name, h.count(), h.sum(), h.mean(), h.quantile(0.50), h.quantile(0.90),
                    h.quantile(0.99)});
  };
  for (const auto& [name, h] : histograms_) snap(name, *h);
  for (const auto& [name, h] : latencies_) snap(name, *h);
  std::sort(rows.begin(), rows.end(),
            [](const DistRow& a, const DistRow& b) { return a.name < b.name; });
  return rows;
}

std::string Registry::render_text() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << name << " = " << g->value() << "\n";
  }
  for (const DistRow& row : distribution_rows()) {
    out << row.name << " count=" << row.count << " mean=" << format_number(row.mean)
        << " p50=" << format_number(row.p50) << " p90=" << format_number(row.p90)
        << " p99=" << format_number(row.p99) << "\n";
  }
  return out.str();
}

std::string Registry::render_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << c->value();
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << g->value();
  }
  out << "},\"histograms\":{";
  first = true;
  for (const DistRow& row : distribution_rows()) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(row.name) << "\":{\"count\":" << row.count
        << ",\"sum\":" << format_number(row.sum) << ",\"mean\":" << format_number(row.mean)
        << ",\"p50\":" << format_number(row.p50) << ",\"p90\":" << format_number(row.p90)
        << ",\"p99\":" << format_number(row.p99) << "}";
  }
  out << "}}";
  return out.str();
}

std::string Registry::render_prometheus() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " counter\n" << prom << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string prom = prometheus_name(name);
    out << "# TYPE " << prom << " gauge\n" << prom << " " << g->value() << "\n";
  }
  // Distributions render as precomputed summaries: quantile-labelled
  // samples plus _sum/_count, the format scrapers accept without needing
  // our bucket layouts.
  for (const DistRow& row : distribution_rows()) {
    const std::string prom = prometheus_name(row.name);
    out << "# TYPE " << prom << " summary\n";
    out << prom << "{quantile=\"0.5\"} " << format_number(row.p50) << "\n";
    out << prom << "{quantile=\"0.9\"} " << format_number(row.p90) << "\n";
    out << prom << "{quantile=\"0.99\"} " << format_number(row.p99) << "\n";
    out << prom << "_sum " << format_number(row.sum) << "\n";
    out << prom << "_count " << row.count << "\n";
  }
  return out.str();
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, h] : latencies_) h->reset();
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED

namespace ctwatch::obs {

void preregister_pipeline_metrics() {
#ifndef CTWATCH_OBS_DISABLED
  Registry& registry = Registry::global();
  for (const char* name : {
           "ct.log.submissions", "ct.log.accepted", "ct.log.rejected_invalid",
           "ct.log.overload_rejections", "ct.log.dedup_hits",
           "sim.timeline.issued", "sim.timeline.log_submissions", "sim.timeline.overloaded",
           "sim.timeline.ca_days",
           "monitor.connections", "monitor.sct.cert", "monitor.sct.tls", "monitor.sct.ocsp",
           "monitor.sct.valid", "monitor.sct.invalid", "monitor.cert_cache.hits",
           "monitor.cert_cache.misses",
           "dns.resolver.queries", "dns.resolver.answered", "dns.resolver.nxdomain",
           "dns.resolver.no_data", "dns.resolver.chain_too_long",
           "enum.funnel.candidates", "enum.funnel.test_replies", "enum.funnel.control_replies",
           "enum.funnel.confirmed", "enum.funnel.novel",
           "namepool.label_intern.hits", "namepool.name_intern.hits",
           "namepool.name_intern.misses",
           "par.tasks", "par.steals", "par.idle_ns",
       }) {
    registry.counter(name);
  }
  registry.gauge("sim.timeline.day");
  registry.gauge("namepool.bytes");
  registry.gauge("namepool.labels");
  registry.gauge("namepool.names");
  registry.gauge("par.workers");
  registry.gauge("par.imbalance.census");
  registry.gauge("par.imbalance.funnel");
  registry.histogram("ct.log.merkle_integrate_us");
  // Per-stage submission latencies (log-linear: auto-ranging, mergeable).
  // One certificate's journey: queue wait -> batch merge delay -> STH sign
  // -> fanout dispatch; enum.* mirror the §4 funnel stages.
  for (const char* name : {
           "logsvc.queue_wait_us", "logsvc.merge_delay_us", "logsvc.sign_us",
           "logsvc.fanout_dispatch_us", "logsvc.submit_us",
           "enum.funnel.stage_us", "multilog.submit_wall_us",
       }) {
    registry.latency(name);
  }
#endif
}

}  // namespace ctwatch::obs
