#include "ctwatch/obs/trace.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace ctwatch::obs {

namespace {

// Per-thread nesting state: the innermost live span and a small ordinal
// used as the chrome-trace tid.
thread_local std::uint32_t tls_current_span = 0;

std::uint64_t this_thread_ordinal() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* env = std::getenv("CTWATCH_TRACE"); env != nullptr && env[0] != '\0' &&
                                                      !(env[0] == '0' && env[1] == '\0')) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void Tracer::record(SpanRecord record) {
  std::lock_guard lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::string Tracer::chrome_trace_json() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans_) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\"ctwatch\",\"ph\":\"X\""
        << ",\"ts\":" << span.start_us << ",\"dur\":" << span.duration_us
        << ",\"pid\":1,\"tid\":" << span.thread_id << ",\"args\":{\"id\":" << span.id
        << ",\"parent\":" << span.parent_id << "}}";
  }
  out << "]}";
  return out.str();
}

std::string Tracer::aggregate_table() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard lock(mu_);
    for (const SpanRecord& span : spans_) {
      Agg& agg = by_name[span.name];
      ++agg.count;
      agg.total_us += span.duration_us;
      agg.max_us = std::max(agg.max_us, span.duration_us);
    }
  }
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof line, "%-36s %10s %14s %12s %12s\n", "span", "count", "total_ms",
                "mean_us", "max_us");
  out << line;
  for (const auto& [name, agg] : by_name) {
    std::snprintf(line, sizeof line, "%-36s %10llu %14.3f %12.1f %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_us) / 1000.0,
                  static_cast<double>(agg.total_us) / static_cast<double>(agg.count),
                  static_cast<unsigned long long>(agg.max_us));
    out << line;
  }
  return out.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
}

Span::Span(const char* name) : name_(name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  id_ = tracer.next_span_id();
  parent_id_ = tls_current_span;
  tls_current_span = id_;
  start_us_ = tracer.now_us();
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = tracer.now_us() - start_us_;
  record.thread_id = this_thread_ordinal();
  record.id = id_;
  record.parent_id = parent_id_;
  tls_current_span = parent_id_;
  tracer.record(std::move(record));
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
