#include "ctwatch/obs/trace.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace ctwatch::obs {

namespace {

// Per-thread nesting state: the innermost live span, the trace it belongs
// to, and a small ordinal used as the chrome-trace tid.
thread_local std::uint32_t tls_current_span = 0;
thread_local std::uint64_t tls_current_trace = 0;

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

TraceContext current_context() { return {tls_current_trace, tls_current_span}; }

std::uint64_t this_thread_ordinal() {
  static std::atomic<std::uint64_t> next{1};
  thread_local std::uint64_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

ContextScope::ContextScope(const TraceContext& ctx)
    : saved_trace_(tls_current_trace), saved_span_(tls_current_span) {
  if (ctx.active()) {
    tls_current_trace = ctx.trace_id;
    tls_current_span = ctx.parent_span;
  }
}

ContextScope::~ContextScope() {
  tls_current_trace = saved_trace_;
  tls_current_span = saved_span_;
}

std::vector<FlowLink> flow_links(const std::vector<SpanRecord>& spans) {
  std::unordered_map<std::uint32_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) by_id.emplace(span.id, &span);
  std::vector<FlowLink> links;
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) continue;
    const auto it = by_id.find(span.parent_id);
    if (it == by_id.end()) continue;
    if (it->second->thread_id != span.thread_id) {
      links.push_back({span.parent_id, span.id, span.trace_id});
    }
  }
  std::sort(links.begin(), links.end(),
            [](const FlowLink& a, const FlowLink& b) { return a.child_id < b.child_id; });
  return links;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* env = std::getenv("CTWATCH_TRACE"); env != nullptr && env[0] != '\0' &&
                                                      !(env[0] == '0' && env[1] == '\0')) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void Tracer::record(SpanRecord record) {
  std::lock_guard lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard lock(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::recent_spans(std::size_t limit) const {
  std::lock_guard lock(mu_);
  if (limit == 0 || limit >= spans_.size()) return spans_;
  return {spans_.end() - static_cast<std::ptrdiff_t>(limit), spans_.end()};
}

std::string Tracer::chrome_trace_json() const {
  std::vector<SpanRecord> spans;
  {
    std::lock_guard lock(mu_);
    spans = spans_;
  }
  std::unordered_map<std::uint32_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& span : spans) by_id.emplace(span.id, &span);

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << json_escape(span.name) << "\",\"cat\":\"ctwatch\",\"ph\":\"X\""
        << ",\"ts\":" << span.start_us << ",\"dur\":" << span.duration_us
        << ",\"pid\":1,\"tid\":" << span.thread_id << ",\"args\":{\"id\":" << span.id
        << ",\"parent\":" << span.parent_id << ",\"trace\":" << span.trace_id << "}}";
  }
  // Cross-thread parent->child edges as flow events: an "s" (start) on the
  // parent's slice, an "f" (finish, binding point "e" = enclosing slice)
  // on the child's. chrome://tracing draws them as arrows — a stolen task
  // or a batch hand-off becomes visible scheduling, not inference.
  for (const SpanRecord& span : spans) {
    if (span.parent_id == 0) continue;
    const auto it = by_id.find(span.parent_id);
    if (it == by_id.end() || it->second->thread_id == span.thread_id) continue;
    const SpanRecord& parent = *it->second;
    const std::uint64_t start_ts = std::min(parent.start_us, span.start_us);
    const std::uint64_t finish_ts = std::max(span.start_us, start_ts);
    out << ",{\"name\":\"handoff\",\"cat\":\"ctwatch.flow\",\"ph\":\"s\",\"id\":" << span.id
        << ",\"ts\":" << start_ts << ",\"pid\":1,\"tid\":" << parent.thread_id << "}"
        << ",{\"name\":\"handoff\",\"cat\":\"ctwatch.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
        << span.id << ",\"ts\":" << finish_ts << ",\"pid\":1,\"tid\":" << span.thread_id << "}";
  }
  out << "]}";
  return out.str();
}

std::string Tracer::aggregate_table() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard lock(mu_);
    for (const SpanRecord& span : spans_) {
      Agg& agg = by_name[span.name];
      ++agg.count;
      agg.total_us += span.duration_us;
      agg.max_us = std::max(agg.max_us, span.duration_us);
    }
  }
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof line, "%-36s %10s %14s %12s %12s\n", "span", "count", "total_ms",
                "mean_us", "max_us");
  out << line;
  for (const auto& [name, agg] : by_name) {
    std::snprintf(line, sizeof line, "%-36s %10llu %14.3f %12.1f %12llu\n", name.c_str(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_us) / 1000.0,
                  static_cast<double>(agg.total_us) / static_cast<double>(agg.count),
                  static_cast<unsigned long long>(agg.max_us));
    out << line;
  }
  return out.str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  spans_.clear();
}

Span::Span(const char* name) : name_(name) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  id_ = tracer.next_span_id();
  parent_id_ = tls_current_span;
  saved_trace_ = tls_current_trace;
  trace_id_ = saved_trace_ != 0 ? saved_trace_ : tracer.next_trace_id();
  tls_current_span = id_;
  tls_current_trace = trace_id_;
  start_us_ = tracer.now_us();
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.duration_us = tracer.now_us() - start_us_;
  record.thread_id = this_thread_ordinal();
  record.trace_id = trace_id_;
  record.id = id_;
  record.parent_id = parent_id_;
  tls_current_span = parent_id_;
  tls_current_trace = saved_trace_;
  tracer.record(std::move(record));
}

TraceContext Span::context() const {
  if (!active_) return {};
  return {trace_id_, id_};
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
