#include "ctwatch/obs/snapshot.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::obs {

std::string metrics_snapshot_path(const char* argv0) {
  if (const char* env = std::getenv("CTWATCH_METRICS_JSON"); env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string name = argv0 != nullptr ? argv0 : "bench";
  if (const std::size_t slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  return name + ".metrics.json";
}

bool dump_metrics_snapshot(const std::string& path) {
  preregister_pipeline_metrics();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[obs] cannot write metrics snapshot to %s\n", path.c_str());
    return false;
  }
  out << Registry::global().render_json() << "\n";
  return true;
}

}  // namespace ctwatch::obs
