#include "ctwatch/obs/flight.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <sstream>

#include <unistd.h>

#include "ctwatch/obs/trace.hpp"

namespace ctwatch::obs {

namespace {

// Set once by install_signal_handler; read from signal context, where a
// magic-static would not be safe to construct.
FlightRecorder* g_signal_recorder = nullptr;
struct sigaction g_previous_abrt = {};

}  // namespace

void flight_recorder_signal_dump(int signo) {
  if (g_signal_recorder != nullptr) {
    g_signal_recorder->dump_signal_safe(signo == SIGABRT ? "SIGABRT" : "SIGUSR1");
  }
  if (signo == SIGABRT) {
    // Restore whatever was installed before us and re-raise so the abort
    // still terminates (or reaches the prior handler).
    sigaction(SIGABRT, &g_previous_abrt, nullptr);
    raise(SIGABRT);
  }
}

FlightRecorder& FlightRecorder::global() {
  // Leaked for the same reason as Registry::global(): worker threads may
  // record during static teardown.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

FlightRecorder::ThreadRing& FlightRecorder::ring_for_this_thread() {
  thread_local ThreadRing* ring = [this]() -> ThreadRing* {
    const std::size_t index = ring_count_.fetch_add(1, std::memory_order_relaxed);
    if (index >= kMaxRings) {
      // Past capacity every extra thread shares the last ring; events stay
      // race-free (atomic slots), attribution degrades gracefully.
      return rings_[kMaxRings - 1].load(std::memory_order_acquire);
    }
    auto* fresh = new ThreadRing();
    fresh->thread_id = this_thread_ordinal();
    rings_[index].store(fresh, std::memory_order_release);
    return fresh;
  }();
  return *ring;
}

void FlightRecorder::record(const char* name, std::uint64_t a, std::uint64_t b) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadRing& ring = ring_for_this_thread();
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t pos = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[pos % kRingSize];
  // Seqlock write: guard goes odd, fields land, guard goes even. The
  // conservative orderings keep this correct (and TSAN-clean) even when a
  // dump races the writer; this path only runs at decision points (seals,
  // faults, rejections), never per-submission.
  const std::uint64_t guard = slot.guard.load(std::memory_order_relaxed);
  slot.guard.store(guard + 1, std::memory_order_seq_cst);
  slot.ts_us.store(Tracer::global().now_us(), std::memory_order_relaxed);
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.name.store(reinterpret_cast<std::uintptr_t>(name), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.guard.store(guard + 2, std::memory_order_seq_cst);
  ring.head.store(pos + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot(std::size_t last_n) const {
  std::vector<FlightEvent> events;
  const std::size_t rings = std::min(ring_count_.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < rings; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // registration in flight
    for (const Slot& slot : ring->slots) {
      const std::uint64_t before = slot.guard.load(std::memory_order_seq_cst);
      if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
      FlightEvent event;
      event.ts_us = slot.ts_us.load(std::memory_order_relaxed);
      event.seq = slot.seq.load(std::memory_order_relaxed);
      event.name = reinterpret_cast<const char*>(slot.name.load(std::memory_order_relaxed));
      event.a = slot.a.load(std::memory_order_relaxed);
      event.b = slot.b.load(std::memory_order_relaxed);
      event.thread_id = ring->thread_id;
      const std::uint64_t after = slot.guard.load(std::memory_order_seq_cst);
      if (after != before) continue;  // torn: overwritten while reading
      if (event.seq == 0 || event.name == nullptr) continue;
      events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  if (last_n != 0 && events.size() > last_n) {
    events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(last_n));
  }
  return events;
}

std::string FlightRecorder::dump_text(std::size_t last_n) const {
  std::ostringstream out;
  for (const FlightEvent& event : snapshot(last_n)) {
    char line[192];
    std::snprintf(line, sizeof line, "#%-8llu t=%-12llu tid=%-4llu %-32s a=%llu b=%llu\n",
                  static_cast<unsigned long long>(event.seq),
                  static_cast<unsigned long long>(event.ts_us),
                  static_cast<unsigned long long>(event.thread_id), event.name,
                  static_cast<unsigned long long>(event.a),
                  static_cast<unsigned long long>(event.b));
    out << line;
  }
  return out.str();
}

void FlightRecorder::dump_to_stderr(const char* reason) const {
  std::fprintf(stderr, "--- flight recorder (%s): last events ---\n%s--- end flight recorder ---\n",
               reason, dump_text().c_str());
}

void FlightRecorder::dump_signal_safe(const char* reason) const {
  // Signal context: no allocation, no locks, no streams — snprintf into a
  // stack buffer and write(2). Torn slots are skipped exactly as in
  // snapshot(); ordering is per-ring only (good enough post mortem).
  char line[192];
  int n = std::snprintf(line, sizeof line, "--- flight recorder (%s) ---\n", reason);
  (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(n));
  const std::size_t rings = std::min(ring_count_.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < rings; ++r) {
    const ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (const Slot& slot : ring->slots) {
      const std::uint64_t before = slot.guard.load(std::memory_order_seq_cst);
      if (before == 0 || (before & 1) != 0) continue;
      const std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
      const std::uint64_t ts = slot.ts_us.load(std::memory_order_relaxed);
      const auto* name = reinterpret_cast<const char*>(slot.name.load(std::memory_order_relaxed));
      const std::uint64_t a = slot.a.load(std::memory_order_relaxed);
      const std::uint64_t b = slot.b.load(std::memory_order_relaxed);
      if (slot.guard.load(std::memory_order_seq_cst) != before || name == nullptr) continue;
      n = std::snprintf(line, sizeof line, "#%llu t=%llu tid=%llu %s a=%llu b=%llu\n",
                        static_cast<unsigned long long>(seq),
                        static_cast<unsigned long long>(ts),
                        static_cast<unsigned long long>(ring->thread_id), name,
                        static_cast<unsigned long long>(a), static_cast<unsigned long long>(b));
      (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(n));
    }
  }
  n = std::snprintf(line, sizeof line, "--- end flight recorder ---\n");
  (void)!write(STDERR_FILENO, line, static_cast<std::size_t>(n));
}

void FlightRecorder::install_signal_handler() {
  static bool installed = [] {
    g_signal_recorder = &global();
    struct sigaction action = {};
    action.sa_handler = flight_recorder_signal_dump;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGUSR1, &action, nullptr);
    sigaction(SIGABRT, &action, &g_previous_abrt);
    return true;
  }();
  (void)installed;
}

void FlightRecorder::clear() {
  const std::size_t rings = std::min(ring_count_.load(std::memory_order_acquire), kMaxRings);
  for (std::size_t r = 0; r < rings; ++r) {
    ThreadRing* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (Slot& slot : ring->slots) {
      const std::uint64_t guard = slot.guard.load(std::memory_order_relaxed);
      slot.guard.store(guard + 1, std::memory_order_seq_cst);
      slot.seq.store(0, std::memory_order_relaxed);
      slot.name.store(0, std::memory_order_relaxed);
      slot.guard.store(guard + 2, std::memory_order_seq_cst);
    }
  }
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
