#include "ctwatch/obs/log.hpp"

#ifndef CTWATCH_OBS_DISABLED

#include <cstdio>
#include <cstdlib>

namespace ctwatch::obs {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "trace";
    case LogLevel::debug: return "debug";
    case LogLevel::info: return "info";
    case LogLevel::warn: return "warn";
    case LogLevel::error: return "error";
    case LogLevel::off: return "off";
  }
  return "off";
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "trace") return LogLevel::trace;
  if (text == "debug") return LogLevel::debug;
  if (text == "info") return LogLevel::info;
  if (text == "warn" || text == "warning") return LogLevel::warn;
  if (text == "error") return LogLevel::error;
  return LogLevel::off;
}

std::string Field::format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

Logger::Logger() {
  if (const char* env = std::getenv("CTWATCH_LOG"); env != nullptr) {
    set_level(parse_log_level(env));
  }
}

Logger& Logger::global() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::function<void(const std::string&)> sink) {
  std::lock_guard lock(mu_);
  sink_ = std::move(sink);
}

void Logger::set_rate_limit(std::uint64_t n) {
  rate_limit_.store(n, std::memory_order_relaxed);
}

void Logger::log(LogLevel level, std::string_view component, std::string_view message,
                 std::initializer_list<Field> fields) {
  if (!enabled(level)) return;

  std::string line;
  line.reserve(64 + component.size() + message.size());
  line += "level=";
  line += to_string(level);
  line += " component=";
  line += component;
  line += " msg=\"";
  line += message;
  line += "\"";
  for (const Field& field : fields) {
    line += " ";
    line += field.key;
    line += "=";
    if (field.quoted) {
      line += "\"";
      line += field.value;
      line += "\"";
    } else {
      line += field.value;
    }
  }

  std::lock_guard lock(mu_);
  if (const std::uint64_t limit = rate_limit_.load(std::memory_order_relaxed); limit > 0) {
    std::string key;
    key.reserve(component.size() + message.size() + 1);
    key += component;
    key += '/';
    key += message;
    if (++per_key_emits_[key] > limit) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  if (sink_) {
    sink_(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

void Logger::reset_counters() {
  std::lock_guard lock(mu_);
  emitted_.store(0, std::memory_order_relaxed);
  suppressed_.store(0, std::memory_order_relaxed);
  per_key_emits_.clear();
}

}  // namespace ctwatch::obs

#endif  // CTWATCH_OBS_DISABLED
