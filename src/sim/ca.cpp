#include "ctwatch/sim/ca.hpp"

#include <algorithm>
#include <stdexcept>

#include "ctwatch/x509/oids.hpp"
#include "ctwatch/x509/redaction.hpp"

namespace ctwatch::sim {

std::string to_string(IssuanceBug bug) {
  switch (bug) {
    case IssuanceBug::none:
      return "none";
    case IssuanceBug::san_reorder:
      return "san-reorder";
    case IssuanceBug::extension_reorder:
      return "extension-reorder";
    case IssuanceBug::name_swap:
      return "name-swap";
    case IssuanceBug::stale_sct_reissue:
      return "stale-sct-reissue";
  }
  return "?";
}

CertificateAuthority::CertificateAuthority(std::string name, std::string issuer_cn,
                                           crypto::SignatureScheme scheme)
    : name_(std::move(name)),
      // One leaf key pair per CA, shared across its issued certificates — a
      // simulation shortcut (and, amusingly, a real measured phenomenon:
      // private key sharing in the HTTPS ecosystem).
      signer_(crypto::make_signer("ca/" + name_, scheme)),
      subject_key_(crypto::make_signer("ca-leaf/" + name_, scheme)) {
  issuer_dn_.common_name = std::move(issuer_cn);
  issuer_dn_.organization = name_;
  issuer_dn_.country = "US";
}

x509::CertificateBuilder CertificateAuthority::base_builder(const IssuanceRequest& request) {
  x509::CertificateBuilder builder;
  builder.serial(next_serial())
      .issuer(issuer_dn_)
      .subject_cn(request.subject_cn)
      .validity(request.not_before, request.not_after)
      .subject_key(*subject_key_);
  // basicConstraints CA:FALSE — gives every certificate a second extension
  // so the D-Trust extension-reordering bug has something to reorder.
  builder.extension(x509::Extension{x509::oids::basic_constraints(), true,
                                    asn1::encode_sequence({})});
  for (const x509::SanEntry& san : request.sans) {
    if (san.kind == x509::SanEntry::Kind::dns) {
      builder.add_dns_san(san.dns_name);
    } else {
      builder.add_ip_san(san.ip);
    }
  }
  return builder;
}

IssuanceResult CertificateAuthority::issue(const IssuanceRequest& request, SimTime now) {
  IssuanceResult result;

  // 1. Precertificate: poisoned TBS signed by the CA. With redaction the
  //    precertificate (and hence the log) only sees "?" labels.
  x509::CertificateBuilder builder = base_builder(request);
  if (request.redact_subdomains) {
    builder.extension(
        x509::Extension{x509::redaction_marker_oid(), false, asn1::encode_null()});
  }
  const x509::TbsCertificate full_tbs = builder.build_tbs();
  x509::TbsCertificate pre_tbs =
      request.redact_subdomains ? x509::redacted_tbs(full_tbs) : full_tbs;
  pre_tbs.add_extension(
      x509::Extension{x509::oids::ct_poison(), true, asn1::encode_null()});
  result.precertificate.tbs = std::move(pre_tbs);
  result.precertificate.signature = signer_->sign(result.precertificate.tbs.encode());

  // 2. add-pre-chain to every requested log.
  const Bytes ca_key = public_key();
  for (ct::CtLog* log : request.logs) {
    const ct::SubmitResult submitted = log->add_pre_chain(result.precertificate, ca_key, now);
    if (submitted.status == ct::SubmitStatus::ok && submitted.sct) {
      result.scts.push_back(*submitted.sct);
    } else {
      result.failed_logs.push_back(log->name());
    }
  }

  // 3. Final certificate: the full (unredacted) TBS, SCT list in. Bugs are
  //    injected here, after the logs have signed — exactly where the real
  //    CAs broke.
  x509::TbsCertificate final_tbs = full_tbs;

  switch (request.bug) {
    case IssuanceBug::none:
    case IssuanceBug::stale_sct_reissue:  // handled by reissue_with_stale_scts()
      break;
    case IssuanceBug::san_reorder: {
      // GlobalSign: the SAN entry order changed in the final certificate.
      auto entries = final_tbs.san_entries();
      if (entries.size() >= 2) {
        std::rotate(entries.begin(), entries.begin() + 1, entries.end());
        for (auto& ext : final_tbs.extensions) {
          if (ext.oid == x509::oids::subject_alt_name()) {
            ext.value = x509::encode_san_value(entries);
          }
        }
      }
      break;
    }
    case IssuanceBug::extension_reorder: {
      // D-Trust: extension ordering differed between precert and final.
      if (final_tbs.extensions.size() >= 2) {
        std::swap(final_tbs.extensions[0], final_tbs.extensions[1]);
      }
      break;
    }
    case IssuanceBug::name_swap: {
      // NetLock: entirely different SAN names and issuer names.
      std::vector<x509::SanEntry> replacement{
          x509::SanEntry::dns("wrong." + request.subject_cn)};
      for (auto& ext : final_tbs.extensions) {
        if (ext.oid == x509::oids::subject_alt_name()) {
          ext.value = x509::encode_san_value(replacement);
        }
      }
      final_tbs.issuer.common_name += " Issuing CA 2";
      break;
    }
  }

  if (!result.scts.empty()) {
    final_tbs.add_extension(x509::Extension{x509::oids::ct_sct_list(), false,
                                            ct::serialize_sct_list(result.scts)});
  }
  result.final_certificate.tbs = final_tbs;
  result.final_certificate.signature = signer_->sign(final_tbs.encode());
  return result;
}

x509::Certificate CertificateAuthority::reissue_with_stale_scts(const IssuanceResult& previous,
                                                                SimTime now) {
  // Fresh serial and shifted validity, but the *old* certificate's SCTs —
  // which were signed over the old TBS and cannot verify against this one.
  x509::TbsCertificate tbs = previous.final_certificate.tbs;
  tbs.serial = x509::serial_bytes(next_serial());
  tbs.not_before = now;
  tbs.not_after = now + (previous.final_certificate.tbs.not_after -
                         previous.final_certificate.tbs.not_before);
  x509::Certificate cert;
  cert.tbs = tbs;
  cert.signature = signer_->sign(tbs.encode());
  return cert;
}

x509::Certificate CertificateAuthority::issue_unlogged(const IssuanceRequest& request,
                                                       SimTime now) {
  (void)now;
  return base_builder(request).sign(*signer_);
}

}  // namespace ctwatch::sim
