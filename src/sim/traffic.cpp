#include "ctwatch/sim/traffic.hpp"

#include <set>

namespace ctwatch::sim {

TrafficGenerator::TrafficGenerator(const ServerPopulation& population, TrafficOptions options,
                                   Rng rng)
    : population_(&population), options_(std::move(options)), rng_(rng) {}

TrafficStats TrafficGenerator::run(monitor::PassiveMonitor& monitor) {
  TrafficStats stats;
  const std::int64_t first_day = SimTime::parse(options_.start).day_index();
  const std::int64_t last_day = SimTime::parse(options_.end).day_index();
  const auto total_days = static_cast<std::uint64_t>(last_day - first_day);

  // Pick the facebook-burst days up front.
  std::set<std::int64_t> burst_days;
  while (burst_days.size() < options_.burst_days && total_days > 0) {
    burst_days.insert(first_day + static_cast<std::int64_t>(rng_.below(total_days)));
  }

  for (std::int64_t day = first_day; day < last_day; ++day) {
    ++stats.days;
    const bool burst = burst_days.contains(day);
    const std::uint64_t base = options_.connections_per_day;
    // Mild day-to-day variation.
    const auto volume = static_cast<std::uint64_t>(
        static_cast<double>(base) * (0.9 + 0.2 * rng_.uniform()));

    // Generate the whole day first (the rng draw order is exactly the
    // per-connection order), then hand the day to the monitor as one
    // batch: process_batch parallelizes the certificate validation and
    // replays the records in this same order.
    std::vector<tls::ConnectionRecord> records;
    records.reserve(volume);
    for (std::uint64_t i = 0; i < volume; ++i) {
      std::size_t rank = population_->popularity().sample(rng_);
      const SimTime when = SimTime{day * 86400 + static_cast<std::int64_t>(rng_.below(86400))};
      const bool signals = rng_.chance(options_.client_signal_rate);
      records.push_back(population_->connect(rank, when, signals));
      ++stats.connections;
    }
    if (burst) {
      // A request storm against graph.facebook.com (rank 0).
      const auto extra =
          static_cast<std::uint64_t>(static_cast<double>(base) * (options_.burst_factor - 1.0));
      for (std::uint64_t i = 0; i < extra; ++i) {
        const SimTime when =
            SimTime{day * 86400 + static_cast<std::int64_t>(rng_.below(86400))};
        records.push_back(population_->connect(0, when, rng_.chance(options_.client_signal_rate)));
        ++stats.connections;
      }
    }
    monitor.process_batch(records);
  }
  monitor.flush();
  return stats;
}

ScanStats ScanDriver::run(monitor::PassiveMonitor& monitor) {
  ScanStats stats;
  const SimTime when = SimTime::parse(options_.date) + 12 * 3600;
  std::vector<tls::ConnectionRecord> records;
  records.reserve(population_->size());
  for (std::size_t rank = 0; rank < population_->size(); ++rank) {
    // Ethics: honor the opt-out blacklist (§3.1 best scanning practices).
    if (options_.blacklist.contains(population_->site(rank).fqdn)) {
      ++stats.blacklist_skipped;
      continue;
    }
    // The scanner always offers the SCT extension.
    records.push_back(population_->connect(rank, when, true));
    ++stats.servers_scanned;
  }
  monitor.process_batch(records);
  monitor.flush();
  return stats;
}

}  // namespace ctwatch::sim
