#include "ctwatch/sim/timeline.hpp"

#include <cmath>

#include "ctwatch/obs/obs.hpp"

namespace ctwatch::sim {

namespace {

struct TimelineMetrics {
  obs::Counter& issued = obs::Registry::global().counter("sim.timeline.issued");
  obs::Counter& log_submissions = obs::Registry::global().counter("sim.timeline.log_submissions");
  obs::Counter& overloaded = obs::Registry::global().counter("sim.timeline.overloaded");
  obs::Counter& ca_days = obs::Registry::global().counter("sim.timeline.ca_days");
  obs::Gauge& day = obs::Registry::global().gauge("sim.timeline.day");
};

TimelineMetrics& timeline_metrics() {
  static TimelineMetrics metrics;
  return metrics;
}

}  // namespace

const std::vector<CaTimeline>& standard_timeline() {
  // Real-world certs/day per phase; shapes target Fig. 1a/1b. The final
  // phases starting 2018-03 model the pre-deadline jump.
  static const std::vector<CaTimeline> timeline = {
      {"DigiCert",
       {{"2015-01-10", "2016-06-01", 20000},
        {"2016-06-01", "2017-10-01", 40000},
        {"2017-10-01", "2018-03-01", 80000},
        {"2018-03-01", "2018-05-01", 250000}}},
      {"Comodo",
       {{"2016-03-01", "2017-04-01", 10000, true},
        {"2017-04-01", "2018-03-01", 30000, true},
        {"2018-03-01", "2018-05-01", 400000}}},
      {"GlobalSign",
       {{"2016-01-15", "2017-10-01", 8000, true},
        {"2017-10-01", "2018-03-01", 15000},
        {"2018-03-01", "2018-05-01", 60000}}},
      {"StartCom",
       {{"2016-02-01", "2017-06-01", 5000, true}}},
      {"Symantec",
       {{"2015-09-01", "2017-12-01", 15000},
        {"2017-12-01", "2018-05-01", 5000}}},
      {"Let's Encrypt",
       {{"2018-03-08", "2018-05-01", 2200000}}},
      // The small CAs of the §3.4 incidents: token volumes.
      {"TeliaSonera", {{"2017-06-01", "2018-05-01", 400}}},
      {"D-TRUST", {{"2017-09-01", "2018-05-01", 300}}},
      {"NetLock", {{"2017-11-01", "2018-05-01", 200}}},
  };
  return timeline;
}

TimelineSimulator::TimelineSimulator(Ecosystem& ecosystem, TimelineOptions options)
    : ecosystem_(&ecosystem), options_(std::move(options)) {}

TimelineStats TimelineSimulator::run() {
  CTWATCH_SPAN("sim.timeline.run");
  TimelineMetrics& metrics = timeline_metrics();
  TimelineStats stats;
  Rng& rng = ecosystem_->rng();
  const std::int64_t sim_start = SimTime::parse(options_.start).day_index();
  const std::int64_t sim_end = SimTime::parse(options_.end).day_index();

  for (const CaTimeline& schedule : standard_timeline()) {
    CTWATCH_SPAN("sim.timeline.ca");
    CertificateAuthority& ca = ecosystem_->ca(schedule.ca);
    const std::vector<ct::CtLog*> logs = ecosystem_->logs_of(schedule.ca);
    Rng ca_rng = rng.fork();
    const std::uint64_t ca_issued_before = stats.issued;

    for (const IssuancePhase& phase : schedule.phases) {
      const std::int64_t begin = std::max(sim_start, SimTime::parse(phase.start).day_index());
      const std::int64_t end = std::min(sim_end, SimTime::parse(phase.end).day_index());
      for (std::int64_t day = begin; day < end; ++day) {
        metrics.day.set(day);
        metrics.ca_days.inc();
        double expected = phase.certs_per_day * options_.scale;
        if (phase.bursty) {
          // Irregular batch behaviour: most days idle, occasional spikes
          // carrying the same average volume.
          if (ca_rng.chance(0.8)) continue;
          expected *= 5.0;
        }
        // Integer count with stochastic rounding of the fractional part.
        auto count = static_cast<std::uint64_t>(expected);
        if (ca_rng.uniform() < expected - std::floor(expected)) ++count;

        if (count > 0) {
          obs::log_debug("sim.timeline", "day simulated",
                         {{"ca", schedule.ca},
                          {"date", SimTime{day * 86400}.date_string()},
                          {"certs", count}});
        }

        for (std::uint64_t i = 0; i < count; ++i) {
          const SimTime when =
              SimTime{day * 86400 + static_cast<std::int64_t>(ca_rng.below(86400))};
          IssuanceRequest request;
          request.subject_cn =
              "site-" + std::to_string(ca.certificates_issued() + 1) + ".example.org";
          request.sans = {x509::SanEntry::dns(request.subject_cn)};
          request.not_before = when;
          request.not_after = when + 90 * 86400;
          request.logs = logs;
          const IssuanceResult issued = ca.issue(request, when);
          ++stats.issued;
          stats.log_submissions += logs.size();
          stats.overloaded += issued.failed_logs.size();
          metrics.issued.inc();
          metrics.log_submissions.inc(logs.size());
          metrics.overloaded.inc(issued.failed_logs.size());
        }
      }
    }
    obs::log_info("sim.timeline", "ca schedule complete",
                  {{"ca", schedule.ca}, {"issued", stats.issued - ca_issued_before}});
  }
  obs::log_info("sim.timeline", "timeline complete",
                {{"issued", stats.issued},
                 {"log_submissions", stats.log_submissions},
                 {"overloaded", stats.overloaded},
                 {"scale", options_.scale}});
  return stats;
}

}  // namespace ctwatch::sim
