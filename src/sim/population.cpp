#include "ctwatch/sim/population.hpp"

#include <algorithm>
#include <array>

namespace ctwatch::sim {

namespace {

struct LogShare {
  const char* log;
  double weight;
};

// Table 1, certificate-SCT column (share of SCT observations).
constexpr std::array<LogShare, 15> kCertShares{{
    {"Google Pilot", 28.69},
    {"Symantec log", 18.40},
    {"Google Rocketeer", 17.33},
    {"DigiCert Log Server", 10.01},
    {"Google Skydiver", 5.97},
    {"Google Aviator", 5.94},
    {"Venafi log", 5.58},
    {"DigiCert Log Server 2", 3.77},
    {"Symantec Vega", 3.71},
    {"Comodo Mammoth", 0.44},
    {"Cloudflare Nimbus2018", 0.05},
    {"Google Icarus", 0.04},
    {"Cloudflare Nimbus2020", 0.02},
    {"Comodo Sabre", 0.01},
    {"Certly.IO log", 0.01},
}};

// Table 1, TLS-extension column.
constexpr std::array<LogShare, 8> kTlsShares{{
    {"Symantec log", 40.19},
    {"Google Pilot", 26.03},
    {"Google Rocketeer", 23.30},
    {"Comodo Mammoth", 3.71},
    {"Venafi log", 2.45},
    {"Comodo Sabre", 1.98},
    {"DigiCert Log Server 2", 0.21},
    {"Google Skydiver", 0.89},
}};

// Which ecosystem CA plausibly issues a certificate logged to `log`.
std::string ca_for_log(const std::string& log) {
  if (log.rfind("Symantec", 0) == 0) return "Symantec";
  if (log.rfind("DigiCert", 0) == 0) return "DigiCert";
  if (log.rfind("Comodo", 0) == 0) return "Comodo";
  if (log == "Google Skydiver") return "GlobalSign";
  return "DigiCert";
}

// Deficit-weighted per-log accounting so the traffic-weighted Table 1
// shares match their targets per channel.
class LogDeficitState {
 public:
  template <std::size_t N>
  explicit LogDeficitState(const std::array<LogShare, N>& shares) {
    double sum = 0;
    for (const LogShare& s : shares) sum += s.weight;
    for (const LogShare& s : shares) {
      names_.emplace_back(s.log);
      targets_.push_back(s.weight / sum);
      assigned_.push_back(0);
    }
  }

  /// Picks `count` distinct logs with the largest weighted deficits.
  std::vector<std::string> pick(double weight, std::size_t count) {
    std::vector<std::size_t> order(names_.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const double da = targets_[a] * (total_ + weight) - assigned_[a];
      const double db = targets_[b] * (total_ + weight) - assigned_[b];
      return da > db;
    });
    std::vector<std::string> out;
    for (std::size_t i = 0; i < count && i < order.size(); ++i) {
      out.push_back(names_[order[i]]);
      assigned_[order[i]] += weight;
    }
    total_ += weight * static_cast<double>(count);
    return out;
  }

 private:
  std::vector<std::string> names_;
  std::vector<double> targets_;  // normalized
  std::vector<double> assigned_;
  double total_ = 0;
};

constexpr const char* kSuffixes[] = {"com", "net",   "org", "de",  "io",
                                     "app", "co.uk", "fr",  "xyz", "online"};

}  // namespace

ServerPopulation::ServerPopulation(Ecosystem& ecosystem, const PopulationOptions& options)
    : options_(options),
      popularity_(options.site_count, options.zipf_exponent, options.zipf_shift) {
  Rng rng = ecosystem.rng().fork();
  sites_.reserve(options.site_count);

  const SimTime legacy_issue_base = SimTime::parse("2016-09-01");
  // Deficit-weighted category accounting for the popular tier.
  double category_weight[4] = {0, 0, 0, 0};
  double category_weight_total = 0;
  LogDeficitState cert_log_state(kCertShares);
  LogDeficitState tls_log_state(kTlsShares);
  const SimTime replace_start = SimTime::parse(options.le_replacement_start);
  const SimTime replace_end = SimTime::parse(options.le_replacement_end);

  for (std::size_t rank = 0; rank < options.site_count; ++rank) {
    SiteProfile site;
    if (rank == 0) {
      site.fqdn = "graph.facebook.com";  // the Fig. 2 anomaly source
    } else {
      site.fqdn = "www.site" + std::to_string(rank) + "." + kSuffixes[rank % 10];
    }
    site.address = net::IPv4(static_cast<std::uint32_t>(0x42000000 + rank));

    const bool popular = rank < options.popular_tier;
    const SimTime issued = legacy_issue_base + static_cast<std::int64_t>(rng.below(300)) * 86400;

    auto issue_legacy = [&](const std::vector<std::string>& log_names,
                            bool embed) -> IssuanceResult {
      const std::string ca_name = log_names.empty() ? "DigiCert" : ca_for_log(log_names.front());
      CertificateAuthority& ca = ecosystem.ca(ca_name);
      IssuanceRequest request;
      request.subject_cn = site.fqdn;
      request.sans = {x509::SanEntry::dns(site.fqdn)};
      request.not_before = issued;
      request.not_after = issued + 2 * 365 * 86400;
      if (embed) {
        for (const std::string& name : log_names) request.logs.push_back(&ecosystem.log(name));
      }
      if (embed) return ca.issue(request, issued);
      IssuanceResult result;
      result.final_certificate = ca.issue_unlogged(request, issued);
      return result;
    };

    if (popular) {
      // Category assignment is deficit-weighted rather than i.i.d.: the
      // traffic-weighted share of each CT-delivery category must match its
      // target even though a handful of head sites carries much of the
      // traffic. Greedily give each site (in rank order, heaviest first)
      // the category with the largest weighted deficit.
      enum Category { kCert = 0, kTls = 1, kBoth = 2, kNone = 3 };
      const double targets[4] = {
          options.popular_cert_sct_rate, options.popular_tls_sct_rate,
          options.popular_both_rate,
          1.0 - options.popular_cert_sct_rate - options.popular_tls_sct_rate -
              options.popular_both_rate};
      // graph.facebook.com receives additional burst-day request storms on
      // top of its popularity weight (the Fig. 2 peaks), so its accounting
      // weight is amplified accordingly.
      const double weight = popularity_.pmf(rank) * (rank == 0 ? 1.8 : 1.0);
      int category = kNone;
      if (rank == 0) {
        category = kCert;  // graph.facebook.com serves embedded SCTs
      } else {
        double best_deficit = -1e300;
        for (int k = 0; k < 4; ++k) {
          const double deficit =
              targets[k] * (category_weight_total + weight) - category_weight[k];
          if (deficit > best_deficit) {
            best_deficit = deficit;
            category = k;
          }
        }
      }
      category_weight[category] += weight;
      category_weight_total += weight;
      const bool want_cert = category == kCert || category == kBoth;
      bool want_tls = category == kTls || category == kBoth;
      const bool want_ocsp = rng.uniform() < options.popular_ocsp_rate;
      // Most OCSP staplers also send the TLS extension (the paper finds
      // tls+ocsp overlap far more common than other combinations).
      if (want_ocsp && !want_tls && rng.chance(0.75)) want_tls = true;

      std::vector<std::string> embed_logs;
      if (want_cert) {
        embed_logs = cert_log_state.pick(weight, 2);
      }
      IssuanceResult issued_cert = issue_legacy(embed_logs, want_cert);
      site.legacy_certificate =
          std::make_shared<const x509::Certificate>(std::move(issued_cert.final_certificate));
      const std::string ca_name =
          embed_logs.empty() ? "DigiCert" : ca_for_log(embed_logs.front());
      site.issuer_public_key =
          std::make_shared<const Bytes>(ecosystem.ca(ca_name).public_key());

      if (want_tls || want_ocsp) {
        // The operator submits the final certificate itself and staples the
        // returned SCTs into the TLS extension / OCSP response.
        tls::SctList staple;
        const std::size_t count = 1 + rng.below(2);
        for (const std::string& log_name : tls_log_state.pick(weight, count)) {
          ct::CtLog& log = ecosystem.log(log_name);
          const auto submitted = log.add_chain(*site.legacy_certificate,
                                               *site.issuer_public_key, issued + 86400);
          if (submitted.sct) staple.push_back(*submitted.sct);
        }
        if (want_tls && !staple.empty()) {
          site.tls_extension_scts = std::make_shared<const tls::SctList>(staple);
        }
        if (want_ocsp && !staple.empty()) {
          site.ocsp_scts = std::make_shared<const tls::SctList>(std::move(staple));
        }
      }
    } else {
      // Long tail.
      if (rng.uniform() < options.tail_le_adoption) {
        CertificateAuthority& le = ecosystem.ca("Let's Encrypt");
        // Pre-replacement certificate: LE, but unlogged (LE logged nothing
        // before 2018-03).
        IssuanceRequest request;
        request.subject_cn = site.fqdn;
        request.sans = {x509::SanEntry::dns(site.fqdn)};
        request.not_before = issued;
        request.not_after = issued + 90 * 86400;
        site.legacy_certificate =
            std::make_shared<const x509::Certificate>(le.issue_unlogged(request, issued));
        site.issuer_public_key = std::make_shared<const Bytes>(le.public_key());

        // CT-logged replacement, rolled out between March and May 2018.
        const std::int64_t window = replace_end - replace_start;
        const SimTime replaced =
            replace_start + static_cast<std::int64_t>(rng.below(
                                static_cast<std::uint64_t>(window)));
        IssuanceRequest renewal = request;
        renewal.not_before = replaced;
        renewal.not_after = replaced + 90 * 86400;
        renewal.logs = {&ecosystem.log("Google Icarus"),
                        &ecosystem.log("Cloudflare Nimbus2018")};
        if (rng.uniform() < options.tail_extra_rocketeer) {
          renewal.logs.push_back(&ecosystem.log("Google Rocketeer"));
        }
        if (rng.uniform() < options.tail_extra_sabre) {
          renewal.logs.push_back(&ecosystem.log("Comodo Sabre"));
        }
        site.ct_certificate = std::make_shared<const x509::Certificate>(
            le.issue(renewal, replaced).final_certificate);
        site.ct_cert_active_from = replaced;
      } else {
        IssuanceResult plain = issue_legacy({}, false);
        site.legacy_certificate =
            std::make_shared<const x509::Certificate>(std::move(plain.final_certificate));
        site.issuer_public_key =
            std::make_shared<const Bytes>(ecosystem.ca("DigiCert").public_key());
      }
    }
    sites_.push_back(std::move(site));
  }
}

tls::ConnectionRecord ServerPopulation::connect(std::size_t rank, SimTime t,
                                                bool client_signals) const {
  const SiteProfile& site = sites_.at(rank);
  tls::ConnectionRecord record;
  record.time = t;
  record.server_name = site.fqdn;
  record.client_signals_sct = client_signals;
  record.certificate = site.certificate_at(t);
  record.issuer_public_key = site.issuer_public_key;
  record.tls_extension_scts = site.tls_extension_scts;
  record.ocsp_scts = site.ocsp_scts;
  return record;
}

}  // namespace ctwatch::sim
