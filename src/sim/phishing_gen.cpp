#include "ctwatch/sim/phishing_gen.hpp"

#include <array>

namespace ctwatch::sim {

namespace {

struct BrandPlan {
  const char* brand;
  double paper_count;
  // Suffixes with weights; calibrated to the paper's suffix observations.
  std::vector<std::pair<const char*, double>> suffixes;
};

const std::vector<BrandPlan>& plans() {
  static const std::vector<BrandPlan> kPlans = {
      // 42k of 63k Apple domains sit in com/ga/info/tk/ml.
      {"Apple", 63000, {{"com", .25}, {"ga", .14}, {"info", .12}, {"tk", .10}, {"ml", .08},
                        {"gq", .08}, {"cf", .07}, {"money", .06}, {"online", .05}, {"xyz", .05}}},
      {"PayPal", 58000, {{"money", .18}, {"com", .22}, {"ga", .12}, {"tk", .10}, {"info", .10},
                         {"ml", .08}, {"cf", .07}, {"online", .07}, {"site", .06}}},
      // 4 % of Microsoft Live phishing uses the live suffix.
      {"Microsoft", 4000, {{"live", .04}, {"com", .30}, {"online", .16}, {"site", .14},
                           {"xyz", .12}, {"info", .12}, {"tk", .12}}},
      {"Google", 1000, {{"co.am", .20}, {"com", .25}, {"ga", .15}, {"tk", .15}, {"cf", .15},
                        {"ml", .10}}},
      // 28 % of eBay phishing uses bid and review.
      {"eBay", 800, {{"bid", .16}, {"review", .12}, {"com", .30}, {"tk", .16}, {"info", .14},
                     {"xyz", .12}}},
      {"Taxation", 300, {{"com", .40}, {"cf", .25}, {"tk", .20}, {"info", .15}}},
  };
  return kPlans;
}

std::string make_name(const std::string& brand, const std::string& suffix, Rng& rng) {
  const std::string rand_token = rng.alnum_label(8);
  if (brand == "Apple") {
    switch (rng.below(3)) {
      case 0: return "appleid.apple.com-" + rand_token + "." + suffix;
      case 1: return "secure-appleid-" + rand_token + "." + suffix;
      default: return "apple.com." + rand_token + "." + suffix;
    }
  }
  if (brand == "PayPal") {
    switch (rng.below(3)) {
      case 0: return "paypal.com-account-security." + rand_token + "." + suffix;
      case 1: return "paypal-" + rand_token + "." + suffix;
      default: return "www.paypal.com." + rand_token + "." + suffix;
    }
  }
  if (brand == "Microsoft") {
    switch (rng.below(3)) {
      case 0: return "www-hotmail-login." + suffix;  // the paper's example shape
      case 1: return "login.live." + rand_token + "." + suffix;
      default: return "outlook-" + rand_token + "." + suffix;
    }
  }
  if (brand == "Google") {
    // accounts.google.com would be the genuine article; only non-com
    // suffixes make the lookalike (the paper's example: accounts.google.co.am).
    return (suffix != "com" && rng.chance(0.5))
               ? "accounts.google." + suffix
               : "google-signin-" + rand_token + "." + suffix;
  }
  if (brand == "eBay") {
    return rng.chance(0.5) ? "www.ebay.co.uk." + rand_token + "." + suffix
                           : "signin-ebay-" + rand_token + "." + suffix;
  }
  // Taxation offices.
  switch (rng.below(3)) {
    case 0: return "ato.gov.au.eng-atorefund-" + rand_token + "." + suffix;
    case 1: return "hmrc.gov.uk-refund-" + rand_token + "." + suffix;
    default: return "refund.irs.gov.my-irs-" + rand_token + "." + suffix;
  }
}

}  // namespace

PhishingCorpus generate_phishing_corpus(const PhishingGenOptions& options) {
  Rng rng(options.seed);
  PhishingCorpus corpus;

  for (const BrandPlan& plan : plans()) {
    const auto count = static_cast<std::uint64_t>(plan.paper_count * options.scale);
    std::vector<double> weights;
    weights.reserve(plan.suffixes.size());
    for (const auto& [suffix, weight] : plan.suffixes) weights.push_back(weight);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::size_t pick = rng.weighted(weights);
      corpus.names.push_back(make_name(plan.brand, plan.suffixes[pick].first, rng));
      ++corpus.planted_phishing;
    }
  }

  // Legitimate brand infrastructure: must NOT be flagged.
  const std::vector<std::string> legitimate = {
      "appleid.apple.com",   "itunes.apple.com",   "www.apple.com",
      "www.paypal.com",      "api.paypal.com",     "login.live.com",
      "outlook.live.com",    "www.microsoft.com",  "accounts.google.com",
      "mail.google.com",     "signin.ebay.com",    "www.ebay.co.uk",
      "www.ato.gov.au",      "online.hmrc.gov.uk", "www.irs.gov",
  };
  for (const std::string& name : legitimate) {
    corpus.names.push_back(name);
    ++corpus.planted_legitimate;
  }
  rng.shuffle(corpus.names);
  return corpus;
}

}  // namespace ctwatch::sim
