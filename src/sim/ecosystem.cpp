#include "ctwatch/sim/ecosystem.hpp"

#include <stdexcept>

#include "ctwatch/util/strings.hpp"

namespace ctwatch::sim {

const std::vector<LogSpec>& Ecosystem::standard_logs() {
  // Roster and Chrome inclusion dates as annotated in Table 1. Capacities
  // are in scaled submissions/hour; Nimbus2018's finite capacity models the
  // load incident the paper discusses.
  static const std::vector<LogSpec> logs = {
      {"Google Pilot", "Google", true, "2014-06-01", 0},
      {"Symantec log", "Symantec", false, "2015-09-01", 0},
      {"Google Rocketeer", "Google", true, "2015-04-01", 0},
      {"DigiCert Log Server", "DigiCert", false, "2015-01-01", 0},
      {"Google Skydiver", "Google", true, "2016-11-01", 0},
      {"Google Aviator", "Google", true, "2014-06-01", 0},
      {"Venafi log", "Venafi", false, "2015-10-01", 0},
      {"DigiCert Log Server 2", "DigiCert", false, "2017-06-01", 0},
      {"Symantec Vega", "Symantec", false, "2016-02-01", 0},
      {"Comodo Mammoth", "Comodo", false, "2017-07-01", 0},
      {"Cloudflare Nimbus2018", "Cloudflare", false, "2018-03-01", 60},
      {"Google Icarus", "Google", true, "2016-11-01", 0},
      {"Cloudflare Nimbus2020", "Cloudflare", false, "2018-03-01", 0},
      {"Comodo Sabre", "Comodo", false, "2017-07-01", 0},
      {"Certly.IO log", "Certly", false, "2015-04-01", 0},
  };
  return logs;
}

const std::vector<CaSpec>& Ecosystem::standard_cas() {
  // Publication matrix calibrated to Fig. 1c: sparse, with Let's Encrypt
  // landing on Google logs + Nimbus.
  static const std::vector<CaSpec> cas = {
      {"Let's Encrypt", "Let's Encrypt Authority X3",
       {"Google Icarus", "Cloudflare Nimbus2018"}},
      {"DigiCert", "DigiCert SHA2 Secure Server CA",
       {"DigiCert Log Server", "Google Pilot", "DigiCert Log Server 2", "Google Rocketeer"}},
      {"Comodo", "COMODO RSA Domain Validation Secure Server CA",
       {"Comodo Mammoth", "Comodo Sabre", "Google Rocketeer"}},
      {"GlobalSign", "GlobalSign Organization Validation CA",
       {"Google Pilot", "Google Rocketeer", "Google Skydiver"}},
      {"StartCom", "StartCom Class 1 DV Server CA", {"Google Pilot", "Venafi log"}},
      {"Symantec", "Symantec Class 3 Secure Server CA",
       {"Symantec log", "Symantec Vega", "Google Pilot", "Google Aviator"}},
      // Small CAs of the §3.4 incidents.
      {"TeliaSonera", "TeliaSonera Server CA v2", {"Google Pilot", "Venafi log"}},
      {"D-TRUST", "D-TRUST SSL Class 3 CA 1", {"Google Pilot", "Certly.IO log"}},
      {"NetLock", "NetLock Expressz SSL CA", {"Google Pilot", "Venafi log"}},
  };
  return cas;
}

Ecosystem::Ecosystem(const EcosystemOptions& options) : options_(options), rng_(options.seed) {
  for (const LogSpec& spec : standard_logs()) {
    ct::LogConfig config;
    config.name = spec.name;
    config.operator_name = spec.operator_name;
    config.url = "ct." + to_lower(spec.operator_name) + ".example/" + to_lower(spec.name);
    config.scheme = options_.scheme;
    config.verify_submissions = options_.verify_submissions;
    config.capacity_per_hour = spec.capacity_per_hour;
    config.store_bodies = options_.store_bodies;
    auto log = std::make_unique<ct::CtLog>(std::move(config));
    log_list_.add_log(*log, SimTime::parse(spec.chrome_inclusion), spec.google_operated);
    logs_[spec.name] = std::move(log);
  }
  for (const CaSpec& spec : standard_cas()) {
    cas_[spec.name] =
        std::make_unique<CertificateAuthority>(spec.name, spec.issuer_cn, options_.scheme);
    ca_logs_[spec.name] = spec.logs;
  }
}

ct::CtLog& Ecosystem::log(const std::string& name) {
  const auto it = logs_.find(name);
  if (it == logs_.end()) throw std::invalid_argument("Ecosystem: unknown log: " + name);
  return *it->second;
}

CertificateAuthority& Ecosystem::ca(const std::string& name) {
  const auto it = cas_.find(name);
  if (it == cas_.end()) throw std::invalid_argument("Ecosystem: unknown CA: " + name);
  return *it->second;
}

std::vector<ct::CtLog*> Ecosystem::logs_of(const std::string& ca_name) {
  const auto it = ca_logs_.find(ca_name);
  if (it == ca_logs_.end()) throw std::invalid_argument("Ecosystem: unknown CA: " + ca_name);
  std::vector<ct::CtLog*> out;
  out.reserve(it->second.size());
  for (const std::string& log_name : it->second) out.push_back(&log(log_name));
  return out;
}

std::vector<ct::CtLog*> Ecosystem::all_logs() {
  std::vector<ct::CtLog*> out;
  out.reserve(logs_.size());
  for (auto& [name, log] : logs_) out.push_back(log.get());
  return out;
}

std::vector<CertificateAuthority*> Ecosystem::all_cas() {
  std::vector<CertificateAuthority*> out;
  out.reserve(cas_.size());
  for (auto& [name, ca] : cas_) out.push_back(ca.get());
  return out;
}

}  // namespace ctwatch::sim
