#include "ctwatch/sim/domains.hpp"

#include <array>

#include "ctwatch/dns/name.hpp"
#include "ctwatch/x509/redaction.hpp"

namespace ctwatch::sim {

const std::vector<LabelSpec>& table2_labels() {
  // Table 2 of the paper, verbatim.
  static const std::vector<LabelSpec> labels = {
      {"www", 61.1e6},   {"mail", 14.4e6},        {"webdisk", 8.7e6}, {"webmail", 8.6e6},
      {"cpanel", 8.2e6}, {"autodiscover", 3.6e6}, {"m", 310e3},       {"shop", 303e3},
      {"whm", 280e3},    {"dev", 256e3},          {"remote", 253e3},  {"test", 249e3},
      {"api", 239e3},    {"blog", 235e3},         {"secure", 176e3},  {"admin", 158e3},
      {"mobile", 156e3}, {"server", 146e3},       {"cloud", 141e3},   {"smtp", 140e3},
  };
  return labels;
}

namespace {

struct SuffixShare {
  const char* suffix;
  double weight;
};

// Registrable domains per public suffix (roughly zone-file proportions,
// with the niche suffixes the paper highlights present in force).
constexpr std::array<SuffixShare, 40> kSuffixShares{{
    {"com", 0.34},   {"net", 0.06},    {"org", 0.05},    {"de", 0.05},     {"co.uk", 0.04},
    {"fr", 0.025},   {"it", 0.02},     {"nl", 0.02},     {"ru", 0.03},     {"com.br", 0.02},
    {"com.au", 0.02},{"io", 0.02},     {"info", 0.02},   {"xyz", 0.015},   {"online", 0.01},
    {"site", 0.01},  {"tech", 0.015},  {"email", 0.01},  {"cloud", 0.01},  {"design", 0.008},
    {"gov", 0.006},  {"gov.uk", 0.005},{"ga", 0.012},    {"tk", 0.015},    {"ml", 0.012},
    {"cf", 0.01},    {"gq", 0.008},    {"my", 0.008},    {"co.am", 0.005}, {"bid", 0.01},
    {"review", 0.008},{"live", 0.01},  {"money", 0.006}, {"biz", 0.012},   {"us", 0.012},
    {"ca", 0.012},   {"se", 0.012},    {"ch", 0.01},     {"pl", 0.012},    {"co.jp", 0.015},
}};

// Per-suffix signature labels (§4.2): the most common label under these
// suffixes reflects the services deployed there.
struct SuffixSignature {
  const char* suffix;
  const char* label;
};
constexpr std::array<SuffixSignature, 6> kSignatures{{
    {"tech", "git"},
    {"email", "autoconfig"},
    {"cloud", "api"},
    {"design", "ftp"},
    {"gov", "sip"},
    {"gov.uk", "dialin"},
}};

constexpr const char* kWords[] = {"acme",  "nova",  "atlas", "orbit", "cedar", "metro",
                                  "prime", "delta", "blue",  "vertex"};

// DNS ground-truth existence probability for a label on a zone that hosts
// services (independent of whether a certificate was ever issued).
double truth_probability(const std::string& label) {
  if (label == "www") return 0.62;
  if (label == "mail") return 0.16;
  if (label == "webmail" || label == "webdisk" || label == "cpanel") return 0.10;
  if (label == "autodiscover") return 0.05;
  if (label == "smtp" || label == "ftp") return 0.05;
  return 0.032;  // the api/dev/test/... tail
}

}  // namespace

DomainCorpus::DomainCorpus(const DomainCorpusOptions& options)
    : options_(options),
      psl_(dns::PublicSuffixList::bundled()),
      authoritative_(std::make_unique<dns::AuthoritativeServer>()) {
  Rng rng(options.seed);
  authoritative_->set_logging(false);
  universe_.add_server(*authoritative_);
  // Border-router routing table: the corpus' service prefix is routable;
  // misconfigured zones answer from outside it.
  routing_.add_route(*net::Prefix4::parse("100.64.0.0/10"));

  std::array<double, kSuffixShares.size()> suffix_weights{};
  for (std::size_t i = 0; i < kSuffixShares.size(); ++i) {
    suffix_weights[i] = kSuffixShares[i].weight;
  }

  // Label catalogue: Table 2 + signature labels + a long tail.
  std::vector<std::pair<std::string, double>> ct_probability;
  const double cert_domains =
      static_cast<double>(options.registrable_count) * 0.75;  // domains with certificates
  for (const LabelSpec& spec : table2_labels()) {
    ct_probability.emplace_back(spec.label,
                                spec.paper_count * options.label_scale / cert_domains);
  }
  // Small corpora can push several head labels past probability 1; rescale
  // so the head keeps its relative order instead of saturating into a tie.
  double max_p = 0;
  for (const auto& [label, p] : ct_probability) max_p = std::max(max_p, p);
  if (max_p > 0.95) {
    for (auto& [label, p] : ct_probability) p *= 0.95 / max_p;
  }

  std::uint32_t next_host = 0;
  auto fresh_address = [&](bool routable) {
    ++next_host;
    // 100.64.0.0/10 is the routable pool; 203.0.113.0/24-ish is not.
    return routable ? net::IPv4(0x64400000u + (next_host & 0x003fffffu))
                    : net::IPv4(0xcb007100u + (next_host & 0xffu));
  };

  // A tiny shared CDN zone provides CNAME targets.
  dns::Zone& cdn_zone = authoritative_->add_zone(dns::DnsName::parse_or_throw("cdn-fleet.net"));
  constexpr int kCdnHosts = 64;
  for (int i = 0; i < kCdnHosts; ++i) {
    cdn_zone.add(dns::ResourceRecord{
        dns::DnsName::parse_or_throw("edge" + std::to_string(i) + ".cdn-fleet.net"),
        dns::RrType::A, 300, fresh_address(true)});
  }
  // Chain hops for the deliberately-too-long CNAME paths.
  constexpr int kChainDepth = 12;
  for (int i = 0; i < kChainDepth; ++i) {
    const std::string owner = "hop" + std::to_string(i) + ".cdn-fleet.net";
    if (i == kChainDepth - 1) {
      cdn_zone.add(dns::ResourceRecord{dns::DnsName::parse_or_throw(owner), dns::RrType::A, 300,
                                       fresh_address(true)});
    } else {
      cdn_zone.add(dns::ResourceRecord{
          dns::DnsName::parse_or_throw(owner), dns::RrType::CNAME, 300,
          dns::DnsName::parse_or_throw("hop" + std::to_string(i + 1) + ".cdn-fleet.net")});
    }
  }

  registrable_.reserve(options.registrable_count);
  for (std::size_t i = 0; i < options.registrable_count; ++i) {
    const std::string suffix =
        kSuffixShares[rng.weighted(std::span<const double>{suffix_weights})].suffix;
    const std::string domain =
        std::string(kWords[rng.below(10)]) + std::to_string(i) + "." + suffix;
    registrable_.push_back(domain);

    const bool zone_exists = rng.chance(0.92);
    const bool has_cert = rng.chance(0.75);
    const bool redacts = rng.chance(options.redaction_fraction);
    const bool catch_all = zone_exists && rng.chance(options.default_a_fraction);
    const bool unroutable = zone_exists && rng.chance(options.unroutable_fraction);

    dns::Zone* zone = nullptr;
    if (zone_exists) {
      zone = &authoritative_->add_zone(dns::DnsName::parse_or_throw(domain));
      if (catch_all) zone->set_default_a(fresh_address(!unroutable));
      // Apex A record.
      zone->add(dns::ResourceRecord{dns::DnsName::parse_or_throw(domain), dns::RrType::A, 300,
                                    fresh_address(!unroutable)});
      if (rng.chance(0.82)) sonar_.push_back(domain);
    }
    if (has_cert) ct_names_.push_back(domain);

    auto add_subdomain = [&](const std::string& label, bool ct_listed) {
      const std::string fqdn = label + "." + domain;
      const bool exists = zone_exists && rng.chance(truth_probability(label));
      if (exists) {
        truth_.insert(fqdn);
        const dns::DnsName name = dns::DnsName::parse_or_throw(fqdn);
        if (rng.chance(options.cname_fraction)) {
          const bool too_long = rng.chance(options.long_chain_fraction);
          const std::string target = too_long
                                         ? "hop0.cdn-fleet.net"
                                         : "edge" + std::to_string(rng.below(kCdnHosts)) +
                                               ".cdn-fleet.net";
          zone->add(dns::ResourceRecord{name, dns::RrType::CNAME, 300,
                                        dns::DnsName::parse_or_throw(target)});
        } else {
          zone->add(dns::ResourceRecord{name, dns::RrType::A, 300, fresh_address(!unroutable)});
        }
        // Sonar coverage: strong for hostnames every crawler finds, weak
        // for the operational tail — that asymmetry is what makes CT an
        // *additional* source in §4.3.
        double sonar_p = 0.015;
        if (label == "www") sonar_p = 0.22;
        else if (label == "mail" || label == "smtp" || label == "ftp") sonar_p = 0.12;
        if (rng.chance(sonar_p)) sonar_.push_back(fqdn);
      }
      if (ct_listed && has_cert) {
        ct_names_.push_back(redacts ? x509::redact_dns_name(fqdn) : fqdn);
      }
    };

    // Niche suffixes (tech/email/cloud/design/gov/gov.uk) host developer
    // and service infrastructure rather than www-fronted sites — in the
    // paper their most common label is a signature label (git, autoconfig,
    // api, ftp, sip, dialin), not www.
    const SuffixSignature* signature = nullptr;
    for (const SuffixSignature& sig : kSignatures) {
      if (suffix == sig.suffix) signature = &sig;
    }
    const double generic_scale = signature != nullptr ? 0.12 : 1.0;
    for (const auto& [label, p_ct] : ct_probability) {
      add_subdomain(label, rng.chance(p_ct * generic_scale));
    }
    if (signature != nullptr) {
      add_subdomain(signature->label, rng.chance(0.45));
    }
    // Rare bespoke labels (never frequent enough to pass the 100k filter).
    if (rng.chance(0.02)) {
      add_subdomain("intranet-" + std::to_string(rng.below(50)), rng.chance(0.5));
    }
  }

  // Invalid CT strings the RFC 1035 filter must reject (the paper filters
  // with a validators library; we filter with dns::DnsName::parse).
  const std::size_t junk = options.registrable_count / 200;
  for (std::size_t i = 0; i < junk; ++i) {
    switch (i % 5) {
      case 0:
        ct_names_.push_back("*.wild" + std::to_string(i) + ".example.com");
        break;
      case 1:
        ct_names_.push_back("under_score" + std::to_string(i) + ".example.com");
        break;
      case 2:
        ct_names_.push_back("-lead" + std::to_string(i) + ".example.com");
        break;
      case 3:
        ct_names_.push_back("10.11.12." + std::to_string(i % 250));
        break;
      case 4:
        ct_names_.push_back("bad.." + std::to_string(i) + ".example.com");
        break;
    }
  }
}

}  // namespace ctwatch::sim
