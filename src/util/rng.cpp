#include "ctwatch/util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace ctwatch {

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  // Avoid log(0).
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal() {
  // Irwin–Hall approximation: sum of 12 uniforms minus 6.
  double acc = 0;
  for (int i = 0; i < 12; ++i) acc += uniform();
  return acc - 6.0;
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0 || alpha <= 0) throw std::invalid_argument("Rng::pareto: bad parameters");
  double u = uniform();
  if (u <= 0) u = 0x1.0p-53;
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::weighted(std::span<const double> weights) {
  double total = 0;
  for (double w : weights) {
    if (w < 0) throw std::invalid_argument("Rng::weighted: negative weight");
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("Rng::weighted: all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0) return i;
  }
  return weights.size() - 1;
}

std::string Rng::alnum_label(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) out.push_back(kAlphabet[below(36)]);
  return out;
}

ZipfSampler::ZipfSampler(std::size_t n, double s, double q) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  if (q < 0) throw std::invalid_argument("ZipfSampler: shift must be >= 0");
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1) + q, s);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::pmf");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ctwatch
