#include "ctwatch/util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "ctwatch/obs/log.hpp"

namespace ctwatch {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string human_count(double value, int decimals) {
  const char* suffix = "";
  double scaled = value;
  if (std::fabs(value) >= 1e9) {
    suffix = "G";
    scaled = value / 1e9;
  } else if (std::fabs(value) >= 1e6) {
    suffix = "M";
    scaled = value / 1e6;
  } else if (std::fabs(value) >= 1e3) {
    suffix = "k";
    scaled = value / 1e3;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", value);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%s", decimals, scaled, suffix);
  return buf;
}

std::string percent(double numerator, double denominator, int decimals) {
  if (denominator <= 0 && numerator > 0) {
    // A share of nothing usually means a study ran over an empty input.
    obs::log_trace("util.strings", "percent with zero denominator", {{"numerator", numerator}});
  }
  const double pct = denominator > 0 ? 100.0 * numerator / denominator : 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, pct);
  return buf;
}

std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

}  // namespace ctwatch
