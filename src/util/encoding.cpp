#include "ctwatch/util/encoding.hpp"

#include <array>
#include <stdexcept>

namespace ctwatch {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string hex_encode(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::optional<Bytes> try_hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) return std::nullopt;
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

Bytes hex_decode(const std::string& hex) {
  auto out = try_hex_decode(hex);
  if (!out) throw std::invalid_argument("hex_decode: malformed hex");
  return *std::move(out);
}

std::string base64_encode(BytesView data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8 | data[i + 2];
    out.push_back(kB64Digits[n >> 18 & 63]);
    out.push_back(kB64Digits[n >> 12 & 63]);
    out.push_back(kB64Digits[n >> 6 & 63]);
    out.push_back(kB64Digits[n & 63]);
  }
  const std::size_t rem = data.size() - i;
  if (rem == 1) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Digits[n >> 18 & 63]);
    out.push_back(kB64Digits[n >> 12 & 63]);
    out.append("==");
  } else if (rem == 2) {
    const std::uint32_t n = static_cast<std::uint32_t>(data[i]) << 16 |
                            static_cast<std::uint32_t>(data[i + 1]) << 8;
    out.push_back(kB64Digits[n >> 18 & 63]);
    out.push_back(kB64Digits[n >> 12 & 63]);
    out.push_back(kB64Digits[n >> 6 & 63]);
    out.push_back('=');
  }
  return out;
}

std::optional<Bytes> try_base64_decode(std::string_view b64) {
  if (b64.size() % 4 != 0) return std::nullopt;  // padding is mandatory
  Bytes out;
  out.reserve(b64.size() / 4 * 3);
  for (std::size_t i = 0; i < b64.size(); i += 4) {
    std::array<int, 4> v{};
    int pad = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = b64[i + j];
      if (c == '=') {
        // Padding is only allowed in the final two positions of the input.
        if (i + 4 != b64.size() || j < 2) return std::nullopt;
        ++pad;
        v[static_cast<std::size_t>(j)] = 0;
      } else {
        if (pad > 0) return std::nullopt;  // data after padding
        const int d = b64_value(c);
        if (d < 0) return std::nullopt;
        v[static_cast<std::size_t>(j)] = d;
      }
    }
    // Canonical form: the bits the padding discards must be zero
    // ("QR==" decodes to the same byte as "QQ==" but is not a valid
    // RFC 4648 encoding of it).
    if (pad == 1 && (v[2] & 0x3) != 0) return std::nullopt;
    if (pad == 2 && (v[1] & 0xf) != 0) return std::nullopt;
    const std::uint32_t n = static_cast<std::uint32_t>(v[0]) << 18 |
                            static_cast<std::uint32_t>(v[1]) << 12 |
                            static_cast<std::uint32_t>(v[2]) << 6 |
                            static_cast<std::uint32_t>(v[3]);
    out.push_back(static_cast<std::uint8_t>(n >> 16));
    if (pad < 2) out.push_back(static_cast<std::uint8_t>(n >> 8 & 0xff));
    if (pad < 1) out.push_back(static_cast<std::uint8_t>(n & 0xff));
  }
  return out;
}

Bytes base64_decode(const std::string& b64) {
  auto out = try_base64_decode(b64);
  if (!out) throw std::invalid_argument("base64_decode: malformed base64");
  return *std::move(out);
}

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string to_string(BytesView data) { return std::string(data.begin(), data.end()); }

}  // namespace ctwatch
