#include "ctwatch/util/time.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

#include "ctwatch/obs/log.hpp"

namespace ctwatch {

// Howard Hinnant's days-from-civil algorithm (public domain).
std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;            // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

void civil_from_days(std::int64_t z, int& year, int& month, int& day) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);                 // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;   // [0, 399]
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);                 // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                                      // [0, 11]
  day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  year = static_cast<int>(y + (month <= 2));
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 12> kDays{31, 28, 31, 30, 31, 30,
                                             31, 31, 30, 31, 30, 31};
  if (month < 1 || month > 12) throw std::invalid_argument("month out of range");
  if (month == 2) {
    const bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[static_cast<std::size_t>(month - 1)];
}

SimTime SimTime::from_civil(const CivilTime& c) {
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > days_in_month(c.year, c.month) ||
      c.hour < 0 || c.hour > 23 || c.minute < 0 || c.minute > 59 || c.second < 0 ||
      c.second > 60) {
    throw std::invalid_argument("invalid civil time");
  }
  const std::int64_t days = days_from_civil(c.year, c.month, c.day);
  return SimTime{days * 86400 + c.hour * 3600 + c.minute * 60 + c.second};
}

SimTime SimTime::parse(const std::string& text) {
  CivilTime c;
  int n = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d%n", &c.year, &c.month, &c.day, &c.hour,
                  &c.minute, &c.second, &n) == 6 &&
      static_cast<std::size_t>(n) == text.size()) {
    return from_civil(c);
  }
  c = CivilTime{};
  if (std::sscanf(text.c_str(), "%d-%d-%d%n", &c.year, &c.month, &c.day, &n) == 3 &&
      static_cast<std::size_t>(n) == text.size()) {
    return from_civil(c);
  }
  obs::log_debug("util.time", "unparseable time", {{"text", text}});
  throw std::invalid_argument("unparseable time: " + text);
}

CivilTime SimTime::civil() const {
  CivilTime c;
  const std::int64_t days = day_index();
  std::int64_t rem = secs_ - days * 86400;
  civil_from_days(days, c.year, c.month, c.day);
  c.hour = static_cast<int>(rem / 3600);
  rem %= 3600;
  c.minute = static_cast<int>(rem / 60);
  c.second = static_cast<int>(rem % 60);
  return c;
}

std::string SimTime::date_string() const {
  const CivilTime c = civil();
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d", c.year, c.month, c.day);
  return buf;
}

std::string SimTime::datetime_string() const {
  const CivilTime c = civil();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02d %02d:%02d:%02d", c.year, c.month, c.day, c.hour,
                c.minute, c.second);
  return buf;
}

std::string SimTime::short_string() const {
  const CivilTime c = civil();
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02d-%02d %02d:%02d:%02d", c.month, c.day, c.hour, c.minute,
                c.second);
  return buf;
}

std::string format_delta(std::int64_t seconds) {
  char buf[24];
  if (seconds < 180) {
    std::snprintf(buf, sizeof buf, "%llds", static_cast<long long>(seconds));
  } else if (seconds < 3 * 3600) {
    std::snprintf(buf, sizeof buf, "%lldm", static_cast<long long>(seconds / 60));
  } else if (seconds < 2 * 86400) {
    std::snprintf(buf, sizeof buf, "%lldh", static_cast<long long>(seconds / 3600));
  } else {
    std::snprintf(buf, sizeof buf, "%lldd", static_cast<long long>(seconds / 86400));
  }
  return buf;
}

void SimClock::advance_to(SimTime t) {
  if (t < now_) throw std::logic_error("SimClock cannot move backwards");
  now_ = t;
}

}  // namespace ctwatch
