#include "ctwatch/par/task_pool.hpp"

#include <chrono>
#include <cstdlib>

#include "ctwatch/obs/obs.hpp"

#ifndef CTWATCH_PAR_DEFAULT_THREADS
#define CTWATCH_PAR_DEFAULT_THREADS 0  // 0 = auto-detect
#endif

namespace ctwatch::par {

namespace {

struct PoolMetrics {
  obs::Counter& tasks = obs::Registry::global().counter("par.tasks");
  obs::Counter& steals = obs::Registry::global().counter("par.steals");
  obs::Counter& idle_ns = obs::Registry::global().counter("par.idle_ns");
  obs::Gauge& workers = obs::Registry::global().gauge("par.workers");
};

PoolMetrics& pool_metrics() {
  static PoolMetrics metrics;
  return metrics;
}

struct GlobalPool {
  std::mutex mu;
  bool resolved = false;
  unsigned threads = 1;
  std::unique_ptr<TaskPool> pool;
};

GlobalPool& global_state() {
  static GlobalPool state;
  return state;
}

/// Rebuilds the shared pool for `threads`; caller holds state.mu.
void rebuild_locked(GlobalPool& state, unsigned threads) {
  state.pool.reset();
  state.threads = threads == 0 ? 1 : threads;
  state.resolved = true;
  if (state.threads > 1) state.pool = std::make_unique<TaskPool>(state.threads);
  pool_metrics().workers.set(static_cast<std::int64_t>(state.threads));
}

}  // namespace

TaskPool::TaskPool(unsigned workers) {
  if (workers == 0) workers = 1;
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) workers_.push_back(std::make_unique<Worker>());
  for (unsigned i = 0; i < workers; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(park_mu_);
    stop_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void TaskPool::submit(Task task) {
  // Causal tracing across the pool boundary: capture the submitter's trace
  // context and restore it on whichever worker (or thief, or helper) runs
  // the task, so spans opened inside parent to the submitter's span even
  // after a steal. Only wraps when the tracer is live — the default path
  // submits the task untouched.
  if (obs::Tracer::global().enabled()) {
    if (const obs::TraceContext ctx = obs::current_context(); ctx.active()) {
      task = [ctx, inner = std::move(task)] {
        obs::ContextScope scope(ctx);
        inner();
      };
    }
  }
  const std::size_t target =
      next_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  workers_[target]->deque.push(std::move(task));
  pool_metrics().tasks.inc();
  // The queued_ increment and the notify decision happen under park_mu_,
  // the same mutex a worker holds while deciding to park (queued_ check +
  // parked_ increment). Either this section runs first — the worker then
  // sees queued_ > 0 and rescans — or the worker parked first and
  // parked_ > 0 forces the notify. Without the mutex both sides can read
  // stale values and a worker sleeps untimed with this task queued.
  std::lock_guard<std::mutex> lock(park_mu_);
  queued_.fetch_add(1, std::memory_order_release);
  if (parked_.load(std::memory_order_acquire) > 0) park_cv_.notify_one();
}

bool TaskPool::help_one() {
  // An outside thread has no own deque; drain from the front so helping
  // takes the oldest (coarsest) work.
  for (auto& worker : workers_) {
    Task task;
    if (worker->deque.take_front(task)) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      task();
      return true;
    }
  }
  return false;
}

bool TaskPool::find_task(unsigned self, Task& out) {
  if (workers_[self]->deque.pop(out)) {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  // Steal half of the first non-empty victim's queue into our own deque,
  // then run from there.
  const std::size_t n = workers_.size();
  std::deque<Task> loot;
  for (std::size_t offset = 1; offset < n; ++offset) {
    const std::size_t victim = (self + offset) % n;
    if (workers_[victim]->deque.steal_half(loot) > 0) {
      pool_metrics().steals.inc();
      out = std::move(loot.front());
      loot.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      for (auto& task : loot) workers_[self]->deque.push(std::move(task));
      return true;
    }
  }
  return false;
}

void TaskPool::worker_loop(unsigned index) {
  for (;;) {
    Task task;
    if (find_task(index, task)) {
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mu_);
    if (stop_.load(std::memory_order_acquire)) return;
    if (queued_.load(std::memory_order_acquire) > 0) continue;  // lost race: rescan
    parked_.fetch_add(1, std::memory_order_release);
    const auto idle_from = std::chrono::steady_clock::now();
    park_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    const auto idle = std::chrono::steady_clock::now() - idle_from;
    parked_.fetch_sub(1, std::memory_order_release);
    pool_metrics().idle_ns.inc(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(idle).count()));
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

unsigned TaskPool::configured_threads() {
  if (const char* env = std::getenv("CTWATCH_PAR_THREADS"); env != nullptr && env[0] != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
#if CTWATCH_PAR_DEFAULT_THREADS > 0
  return static_cast<unsigned>(CTWATCH_PAR_DEFAULT_THREADS);
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
#endif
}

TaskPool* TaskPool::global() {
  GlobalPool& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.resolved) rebuild_locked(state, configured_threads());
  return state.pool.get();
}

void TaskPool::set_global_threads(unsigned threads) {
  GlobalPool& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  rebuild_locked(state, threads == 0 ? configured_threads() : threads);
}

unsigned TaskPool::effective_threads() {
  GlobalPool& state = global_state();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.resolved) rebuild_locked(state, configured_threads());
  return state.threads;
}

void TaskGroup::wait() {
  if (pool_ != nullptr) {
    for (;;) {
      {
        // finish_one decrements pending_ under mu_, so seeing zero while
        // holding mu_ means every worker has left the group's critical
        // section — only then is it safe to return (and let the caller
        // destroy this stack-local group).
        std::lock_guard<std::mutex> lock(mu_);
        if (pending_.load(std::memory_order_acquire) == 0) break;
      }
      if (pool_->help_one()) continue;
      // Nothing to help with: our tasks are running on workers. Block
      // briefly; finish_one notifies under mu_, the timeout covers tasks
      // we could not see when help_one scanned the deques.
      std::unique_lock<std::mutex> lock(mu_);
      if (cv_.wait_for(lock, std::chrono::microseconds(200),
                       [this] { return pending_.load(std::memory_order_acquire) == 0; })) {
        break;
      }
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ctwatch::par
