#include "ctwatch/core/leakage.hpp"

#include <sstream>

#include "ctwatch/util/strings.hpp"

namespace ctwatch::core {

LeakageReport LeakageStudy::run(const enumeration::EnumerationOptions& options) const {
  LeakageReport report;

  enumeration::SubdomainCensus census(corpus_->psl());
  census.add_names(corpus_->ct_names());
  report.extraction = census.stats();
  report.top_labels = census.top_labels(20);
  report.suffix_signatures = census.top_label_per_suffix();

  const auto subbrute = enumeration::subbrute_like_wordlist();
  const auto dnsrecon = enumeration::dnsrecon_like_wordlist();
  report.subbrute = enumeration::compare_wordlist(subbrute, census);
  report.dnsrecon = enumeration::compare_wordlist(dnsrecon, census);

  const dns::RecursiveResolver resolver(
      corpus_->universe(),
      dns::RecursiveResolver::Identity{net::IPv4(192, 0, 2, 53), 64496, "measurement", false});
  const std::set<std::string> sonar(corpus_->sonar_names().begin(),
                                    corpus_->sonar_names().end());
  Rng rng(corpus_->options().seed ^ 0xabcdef);
  enumeration::SubdomainEnumerator enumerator(census, corpus_->psl(), options);
  report.funnel = enumerator.run(corpus_->registrable_domains(), sonar, resolver,
                                 corpus_->routing_table(), rng,
                                 SimTime::parse("2018-04-27"));
  report.interned_bytes = census.pool().bytes_used();
  report.interned_names = census.pool().size();
  report.interned_labels = census.pool().labels().size();
  return report;
}

std::string LeakageStudy::render_table2(const LeakageReport& report, std::size_t top_n) {
  std::ostringstream out;
  out << pad_right("rank", 6) << pad_right("label", 16) << pad_left("count", 10) << "\n";
  std::size_t rank = 1;
  for (const auto& [label, count] : report.top_labels) {
    if (rank > top_n) break;
    out << pad_right(std::to_string(rank), 6) << pad_right(label, 16)
        << pad_left(std::to_string(count), 10) << "\n";
    ++rank;
  }
  return out.str();
}

std::string LeakageStudy::render_funnel(const LeakageReport& report) {
  const auto& f = report.funnel;
  std::ostringstream out;
  out << "labels selected (>= threshold):   " << f.labels_selected << "\n";
  out << "(label, suffix) pairs:            " << f.label_suffix_pairs << "\n";
  out << "constructed FQDN candidates:      " << f.candidates << "\n";
  out << "replies to constructed names:     " << f.test_replies << "\n";
  out << "replies to pseudo-random control: " << f.control_replies << "\n";
  out << "dropped (answer unroutable):      " << f.unroutable_dropped << "\n";
  out << "dropped (CNAME chain > budget):   " << f.chain_too_long << "\n";
  out << "confirmed new FQDNs:              " << f.confirmed << "\n";
  out << "  already known via Sonar:        " << f.known_in_sonar << "\n";
  out << "  novel discoveries:              " << f.novel << "\n";
  return out.str();
}

}  // namespace ctwatch::core
