#include "ctwatch/core/invalid_sct.hpp"

#include <algorithm>
#include <sstream>

#include "ctwatch/tls/connection.hpp"
#include "ctwatch/util/strings.hpp"
#include "ctwatch/x509/oids.hpp"

namespace ctwatch::core {

std::string to_string(RootCause cause) {
  switch (cause) {
    case RootCause::valid:
      return "valid";
    case RootCause::san_reorder:
      return "san-reorder (GlobalSign class)";
    case RootCause::extension_reorder:
      return "extension-reorder (D-Trust class)";
    case RootCause::name_mismatch:
      return "name-mismatch (NetLock class)";
    case RootCause::stale_sct:
      return "stale-sct-reissue (TeliaSonera class)";
    case RootCause::unknown:
      return "unknown";
  }
  return "?";
}

RootCause classify_divergence(const x509::Certificate& final_cert,
                              const std::optional<x509::Certificate>& precert) {
  if (!precert) return RootCause::stale_sct;  // no precert with this serial was ever logged
  const x509::TbsCertificate& pre = precert->tbs;
  const x509::TbsCertificate& fin = final_cert.tbs;

  if (pre.serial != fin.serial) return RootCause::stale_sct;

  // Names: compare SAN multisets and issuer.
  auto san_names = [](const x509::TbsCertificate& tbs) {
    std::vector<std::string> out;
    for (const auto& entry : tbs.san_entries()) {
      out.push_back(entry.kind == x509::SanEntry::Kind::dns ? entry.dns_name
                                                            : entry.ip.to_string());
    }
    return out;
  };
  std::vector<std::string> pre_sans = san_names(pre);
  std::vector<std::string> fin_sans = san_names(fin);
  const bool order_differs = pre_sans != fin_sans;
  std::vector<std::string> pre_sorted = pre_sans;
  std::vector<std::string> fin_sorted = fin_sans;
  std::sort(pre_sorted.begin(), pre_sorted.end());
  std::sort(fin_sorted.begin(), fin_sorted.end());
  if (pre_sorted != fin_sorted || pre.issuer != fin.issuer) return RootCause::name_mismatch;
  if (order_differs) return RootCause::san_reorder;

  // Extension ordering (poison/SCT-list stripped on both sides).
  auto ext_oids = [](const x509::TbsCertificate& tbs) {
    std::vector<std::string> out;
    for (const auto& ext : tbs.extensions) {
      if (ext.oid == x509::oids::ct_poison() || ext.oid == x509::oids::ct_sct_list()) continue;
      out.push_back(ext.oid.to_string());
    }
    return out;
  };
  std::vector<std::string> pre_exts = ext_oids(pre);
  std::vector<std::string> fin_exts = ext_oids(fin);
  if (pre_exts != fin_exts) {
    std::vector<std::string> a = pre_exts;
    std::vector<std::string> b = fin_exts;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    return a == b ? RootCause::extension_reorder : RootCause::unknown;
  }
  return RootCause::unknown;
}

namespace {

/// Finds the precertificate entry with the given serial in any of the CA's
/// logs (requires stored bodies). Serial numbers are only unique per
/// issuer, and shared logs contain many issuers, so the issuer organization
/// must match too (the organization survives even the NetLock-style issuer
/// CN swap).
std::optional<x509::Certificate> find_precert(sim::Ecosystem& ecosystem,
                                              const std::string& ca_name,
                                              const x509::Certificate& final_cert) {
  for (ct::CtLog* log : ecosystem.logs_of(ca_name)) {
    for (const ct::LogEntry& entry : log->entries()) {
      if (entry.certificate.is_precertificate() &&
          entry.certificate.tbs.serial == final_cert.tbs.serial &&
          entry.certificate.tbs.issuer.organization == final_cert.tbs.issuer.organization) {
        return entry.certificate;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

InvalidSctReport InvalidSctStudy::run() {
  InvalidSctReport report;
  const SimTime when = SimTime::parse(options_.issue_date);

  struct BugPlan {
    const char* ca;
    sim::IssuanceBug bug;
    bool with_ip_san;
  };
  // One incident per CA, matching §3.4's attribution.
  const std::vector<BugPlan> bugs = {
      {"GlobalSign", sim::IssuanceBug::san_reorder, true},
      {"D-TRUST", sim::IssuanceBug::extension_reorder, false},
      {"NetLock", sim::IssuanceBug::name_swap, false},
      {"TeliaSonera", sim::IssuanceBug::stale_sct_reissue, false},
  };

  std::vector<std::pair<std::string, x509::Certificate>> to_check;  // (ca, final cert)

  std::uint64_t counter = 0;
  for (const BugPlan& plan : bugs) {
    sim::CertificateAuthority& ca = ecosystem_->ca(plan.ca);
    const auto logs = ecosystem_->logs_of(plan.ca);

    auto make_request = [&](const std::string& cn) {
      sim::IssuanceRequest request;
      request.subject_cn = cn;
      request.sans = {x509::SanEntry::dns(cn)};
      if (plan.with_ip_san) {
        // The GlobalSign incident involved SANs with both DNS names and IP
        // addresses whose order changed.
        request.sans.push_back(x509::SanEntry::address(net::IPv4(192, 0, 2, 7)));
        request.sans.push_back(x509::SanEntry::dns("alt-" + cn));
      }
      request.not_before = when;
      request.not_after = when + 365 * 86400;
      request.logs = logs;
      return request;
    };

    // Clean issuances.
    for (std::size_t i = 0; i < options_.clean_per_bug; ++i) {
      auto request = make_request("ok-" + std::to_string(++counter) + ".example.net");
      to_check.emplace_back(plan.ca, ca.issue(request, when).final_certificate);
    }
    // The buggy one.
    auto request = make_request("bug-" + std::to_string(++counter) + ".example.net");
    request.bug = plan.bug;
    if (plan.bug == sim::IssuanceBug::stale_sct_reissue) {
      request.bug = sim::IssuanceBug::none;
      const sim::IssuanceResult first = ca.issue(request, when);
      to_check.emplace_back(plan.ca, ca.reissue_with_stale_scts(first, when + 7 * 86400));
    } else {
      to_check.emplace_back(plan.ca, ca.issue(request, when).final_certificate);
    }
  }

  for (const auto& [ca_name, cert] : to_check) {
    ++report.certificates_checked;
    const auto scts = tls::embedded_scts(cert);
    const Bytes ca_key = ecosystem_->ca(ca_name).public_key();
    const ct::SignedEntry entry = ct::make_precert_entry(cert, ca_key);
    bool all_valid = !scts.empty();
    for (const auto& sct : scts) {
      const ct::LogListEntry* log = ecosystem_->log_list().find(sct.log_id);
      if (log == nullptr || !ct::verify_sct(sct, entry, log->public_key)) all_valid = false;
    }
    if (all_valid) continue;

    ++report.invalid;
    InvalidSctCase finding;
    finding.ca = ca_name;
    finding.subject = cert.tbs.subject.common_name;
    finding.sct_valid = false;
    finding.cause = classify_divergence(cert, find_precert(*ecosystem_, ca_name, cert));
    ++report.by_cause[to_string(finding.cause)];
    ++report.by_ca[ca_name];
    report.cases.push_back(std::move(finding));
  }
  return report;
}

std::string InvalidSctStudy::render(const InvalidSctReport& report) {
  std::ostringstream out;
  out << "certificates checked: " << report.certificates_checked
      << ", with invalid embedded SCTs: " << report.invalid << "\n";
  out << "by CA:\n";
  for (const auto& [ca, n] : report.by_ca) {
    out << "  " << pad_right(ca, 16) << n << "\n";
  }
  out << "by root cause (from precert/final comparison):\n";
  for (const auto& [cause, n] : report.by_cause) {
    out << "  " << pad_right(cause, 40) << n << "\n";
  }
  return out.str();
}

}  // namespace ctwatch::core
