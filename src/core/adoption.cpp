#include "ctwatch/core/adoption.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "ctwatch/util/strings.hpp"

namespace ctwatch::core {

std::string render_adoption_totals(const monitor::MonitorTotals& t) {
  std::ostringstream out;
  const auto conns = static_cast<double>(t.connections);
  out << "connections observed:            " << human_count(conns) << "\n";
  out << "with at least one SCT:           " << human_count(static_cast<double>(t.with_any_sct))
      << " (" << percent(static_cast<double>(t.with_any_sct), conns) << ")\n";
  out << "  SCT in certificate:            " << human_count(static_cast<double>(t.sct_in_cert))
      << " (" << percent(static_cast<double>(t.sct_in_cert), conns) << ")\n";
  out << "  SCT in TLS extension:          " << human_count(static_cast<double>(t.sct_in_tls))
      << " (" << percent(static_cast<double>(t.sct_in_tls), conns) << ")\n";
  out << "  SCT in stapled OCSP:           " << human_count(static_cast<double>(t.sct_in_ocsp))
      << " (" << percent(static_cast<double>(t.sct_in_ocsp), conns) << ")\n";
  out << "  cert + TLS extension overlap:  " << t.cert_and_tls << "\n";
  out << "  cert + OCSP overlap:           " << t.cert_and_ocsp << "\n";
  out << "  TLS extension + OCSP overlap:  " << t.tls_and_ocsp << "\n";
  out << "client signals SCT support:      "
      << human_count(static_cast<double>(t.client_signaled)) << " ("
      << percent(static_cast<double>(t.client_signaled), conns) << ")\n";
  out << "SCT validations (per conn):      valid "
      << human_count(static_cast<double>(t.valid_scts)) << ", invalid "
      << human_count(static_cast<double>(t.invalid_scts)) << "\n";
  return out.str();
}

std::string render_daily_series(const std::map<std::int64_t, monitor::DailyCounters>& daily,
                                int stride) {
  std::ostringstream out;
  out << pad_right("date", 12) << pad_left("conns", 10) << pad_left("total_sct%", 12)
      << pad_left("cert%", 9) << pad_left("tls%", 9) << "\n";
  int i = 0;
  for (const auto& [day, counters] : daily) {
    if (stride > 1 && i++ % stride != 0) continue;
    const auto conns = static_cast<double>(counters.connections);
    out << pad_right(SimTime{day * 86400}.date_string(), 12)
        << pad_left(std::to_string(counters.connections), 10)
        << pad_left(percent(static_cast<double>(counters.with_any_sct), conns), 12)
        << pad_left(percent(static_cast<double>(counters.sct_in_cert), conns), 9)
        << pad_left(percent(static_cast<double>(counters.sct_in_tls), conns), 9) << "\n";
  }
  return out.str();
}

std::string render_top_logs(const std::map<std::string, monitor::LogUsage>& usage,
                            std::size_t top_n) {
  // Sort by certificate-channel SCT count, as Table 1 does.
  std::vector<std::pair<std::string, monitor::LogUsage>> rows(usage.begin(), usage.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.cert_scts != b.second.cert_scts ? a.second.cert_scts > b.second.cert_scts
                                                    : a.first < b.first;
  });
  double cert_total = 0, tls_total = 0;
  for (const auto& [name, u] : rows) {
    cert_total += static_cast<double>(u.cert_scts);
    tls_total += static_cast<double>(u.tls_scts);
  }
  std::ostringstream out;
  out << pad_right("CT log", 26) << pad_left("Cert SCTs", 12) << pad_left("(share)", 10)
      << pad_left("TLS SCTs", 12) << pad_left("(share)", 10) << "\n";
  std::size_t emitted = 0;
  for (const auto& [name, u] : rows) {
    if (emitted++ >= top_n) break;
    out << pad_right(name, 26)
        << pad_left(human_count(static_cast<double>(u.cert_scts), 2), 12)
        << pad_left(percent(static_cast<double>(u.cert_scts), cert_total), 10)
        << pad_left(human_count(static_cast<double>(u.tls_scts), 2), 12)
        << pad_left(percent(static_cast<double>(u.tls_scts), tls_total), 10) << "\n";
  }
  return out.str();
}

std::string render_scan_view(const monitor::PassiveMonitor& monitor) {
  const monitor::MonitorTotals& t = monitor.totals();
  std::ostringstream out;
  out << "unique certificates encountered:  " << t.unique_certificates << "\n";
  out << "with embedded SCT:                " << t.unique_certs_with_embedded_sct << " ("
      << percent(static_cast<double>(t.unique_certs_with_embedded_sct),
                 static_cast<double>(t.unique_certificates))
      << ")\n";
  // Per-log: share of SCT-bearing certificates carrying an SCT of that log.
  // In a scan each certificate is observed once, so connection-level equals
  // certificate-level counting.
  std::vector<std::pair<std::string, std::uint64_t>> rows;
  for (const auto& [name, usage] : monitor.log_usage()) {
    if (usage.cert_scts > 0) rows.emplace_back(name, usage.cert_scts);
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out << "embedded SCTs by log (share of SCT-bearing certificates):\n";
  for (const auto& [name, count] : rows) {
    out << "  " << pad_right(name, 26)
        << pad_left(percent(static_cast<double>(count),
                            static_cast<double>(t.unique_certs_with_embedded_sct)),
                    10)
        << "\n";
  }
  return out.str();
}

std::vector<PeakFinding> detect_peaks(const monitor::PassiveMonitor& monitor, double sigma) {
  const auto& daily = monitor.daily();
  if (daily.size() < 3) return {};
  // Baseline over the whole series.
  double sum = 0, sum_sq = 0;
  for (const auto& [day, counters] : daily) {
    const double share = counters.connections > 0
                             ? static_cast<double>(counters.with_any_sct) /
                                   static_cast<double>(counters.connections)
                             : 0;
    sum += share;
    sum_sq += share * share;
  }
  const double n = static_cast<double>(daily.size());
  const double mean = sum / n;
  const double variance = std::max(0.0, sum_sq / n - mean * mean);
  const double stddev = std::sqrt(variance);

  std::vector<PeakFinding> peaks;
  const auto& tops = monitor.daily_top_sct_server();
  for (const auto& [day, counters] : daily) {
    if (counters.connections == 0) continue;
    const double share = static_cast<double>(counters.with_any_sct) /
                         static_cast<double>(counters.connections);
    if (share <= mean + sigma * stddev) continue;
    PeakFinding peak;
    peak.day = day;
    peak.sct_share = share;
    peak.baseline_share = mean;
    if (const auto it = tops.find(day); it != tops.end()) {
      peak.top_server = it->second.first;
      peak.top_count = it->second.second;
    }
    peaks.push_back(std::move(peak));
  }
  return peaks;
}

std::string render_peaks(const std::vector<PeakFinding>& peaks) {
  std::ostringstream out;
  if (peaks.empty()) {
    out << "no anomalous days detected\n";
    return out.str();
  }
  out << "anomalous days (SCT share >> baseline), attributed:\n";
  for (const PeakFinding& peak : peaks) {
    out << "  " << SimTime{peak.day * 86400}.date_string() << "  share "
        << percent(peak.sct_share, 1.0) << " (baseline " << percent(peak.baseline_share, 1.0)
        << ")  dominant server: " << (peak.top_server.empty() ? "?" : peak.top_server) << " ("
        << peak.top_count << " SCT conns)\n";
  }
  return out.str();
}

}  // namespace ctwatch::core
