#include "ctwatch/core/log_evolution.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ctwatch/obs/obs.hpp"
#include "ctwatch/util/strings.hpp"

namespace ctwatch::core {

std::string month_key(SimTime t) {
  const CivilTime c = t.civil();
  char buf[8];
  std::snprintf(buf, sizeof buf, "%04d-%02d", c.year, c.month);
  return buf;
}

LogEvolutionReport LogEvolutionStudy::run(const std::string& focus_month) const {
  CTWATCH_SPAN("core.log_evolution.run");
  LogEvolutionReport report;
  report.focus_month = focus_month;

  // Issuer CN -> CA name.
  std::map<std::string, std::string> issuer_to_ca;
  for (const sim::CaSpec& spec : sim::Ecosystem::standard_cas()) {
    issuer_to_ca[spec.issuer_cn] = spec.name;
  }

  // Gather (month, ca, fingerprint, log) across all logs.
  struct Row {
    std::string month;
    std::string ca;
    crypto::Digest fingerprint;
    const std::string* log;
  };
  std::vector<Row> rows;
  std::set<std::string> months_seen;
  for (ct::CtLog* log : ecosystem_->all_logs()) {
    report.overload_rejections[log->name()] = log->overload_rejections();
    for (const ct::LogEntry& entry : log->entries()) {
      Row row;
      row.month = month_key(SimTime{static_cast<std::int64_t>(entry.timestamp_ms / 1000)});
      const auto it = issuer_to_ca.find(entry.issuer_cn);
      row.ca = it != issuer_to_ca.end() ? it->second : "other";
      row.fingerprint = entry.fingerprint;
      row.log = &log->name();
      months_seen.insert(row.month);
      rows.push_back(std::move(row));
    }
  }
  report.months.assign(months_seen.begin(), months_seen.end());
  std::map<std::string, std::size_t> month_index;
  for (std::size_t i = 0; i < report.months.size(); ++i) month_index[report.months[i]] = i;

  // Fig. 1a/1b: unique certificates per (month, CA).
  std::map<std::string, std::vector<std::uint64_t>> monthly_unique;
  std::set<std::array<std::uint8_t, 32>> seen_fingerprints;
  std::uint64_t total_unique = 0;
  std::map<std::string, std::uint64_t> unique_per_ca;
  // Sort rows chronologically so "first sighting" attribution is stable.
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.month < b.month; });
  for (const Row& row : rows) {
    std::array<std::uint8_t, 32> key{};
    std::copy(row.fingerprint.begin(), row.fingerprint.end(), key.begin());
    const bool fresh = seen_fingerprints.insert(key).second;

    // Fig. 1c: log utilization counts every submission.
    if (row.month == focus_month) ++report.ca_log_matrix[row.ca][*row.log];

    if (!fresh) continue;
    ++total_unique;
    ++unique_per_ca[row.ca];
    auto& series = monthly_unique[row.ca];
    if (series.empty()) series.resize(report.months.size(), 0);
    ++series[month_index[row.month]];
  }

  // Cumulative sums and monthly shares.
  std::vector<std::uint64_t> monthly_totals(report.months.size(), 0);
  for (const auto& [ca, series] : monthly_unique) {
    for (std::size_t i = 0; i < series.size(); ++i) monthly_totals[i] += series[i];
  }
  for (const auto& [ca, series] : monthly_unique) {
    std::vector<std::uint64_t> cumulative(series.size(), 0);
    std::uint64_t acc = 0;
    std::vector<double> share(series.size(), 0);
    for (std::size_t i = 0; i < series.size(); ++i) {
      acc += series[i];
      cumulative[i] = acc;
      share[i] = monthly_totals[i] > 0
                     ? static_cast<double>(series[i]) / static_cast<double>(monthly_totals[i])
                     : 0.0;
    }
    report.cumulative_by_ca[ca] = std::move(cumulative);
    report.monthly_share_by_ca[ca] = std::move(share);
  }

  // Top-5 share.
  std::vector<std::uint64_t> counts;
  counts.reserve(unique_per_ca.size());
  for (const auto& [ca, n] : unique_per_ca) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t top5 = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(5, counts.size()); ++i) top5 += counts[i];
  report.top5_share = total_unique > 0
                          ? static_cast<double>(top5) / static_cast<double>(total_unique)
                          : 0.0;
  obs::log_info("core.log_evolution", "study complete",
                {{"entries", rows.size()},
                 {"unique_certificates", total_unique},
                 {"months", report.months.size()},
                 {"top5_share", report.top5_share}});

  // Matrix sparsity + Let's Encrypt load distribution.
  const auto log_count = sim::Ecosystem::standard_logs().size();
  const auto ca_count = sim::Ecosystem::standard_cas().size();
  std::size_t filled = 0;
  for (const auto& [ca, row] : report.ca_log_matrix) {
    for (const auto& [log, n] : row) {
      if (n > 0) ++filled;
    }
  }
  report.matrix_sparsity =
      1.0 - static_cast<double>(filled) / static_cast<double>(log_count * ca_count);
  if (const auto it = report.ca_log_matrix.find("Let's Encrypt");
      it != report.ca_log_matrix.end()) {
    std::uint64_t le_total = 0;
    for (const auto& [log, n] : it->second) le_total += n;
    for (const auto& [log, n] : it->second) {
      report.le_log_share[log] =
          le_total > 0 ? static_cast<double>(n) / static_cast<double>(le_total) : 0.0;
    }
  }
  return report;
}

std::string LogEvolutionStudy::render_cumulative(const LogEvolutionReport& report) {
  std::ostringstream out;
  out << pad_right("month", 10);
  std::vector<std::string> cas;
  for (const auto& [ca, series] : report.cumulative_by_ca) {
    cas.push_back(ca);
    out << pad_left(ca, 16);
  }
  out << "\n";
  for (std::size_t i = 0; i < report.months.size(); ++i) {
    out << pad_right(report.months[i], 10);
    for (const std::string& ca : cas) {
      out << pad_left(std::to_string(report.cumulative_by_ca.at(ca)[i]), 16);
    }
    out << "\n";
  }
  return out.str();
}

std::string LogEvolutionStudy::render_matrix(const LogEvolutionReport& report) {
  std::ostringstream out;
  // Column set: logs that appear at all in the focus month.
  std::set<std::string> logs;
  for (const auto& [ca, row] : report.ca_log_matrix) {
    for (const auto& [log, n] : row) logs.insert(log);
  }
  out << pad_right("CA \\ log", 16);
  for (const std::string& log : logs) out << pad_left(log.substr(0, 14), 16);
  out << "\n";
  for (const auto& [ca, row] : report.ca_log_matrix) {
    out << pad_right(ca.substr(0, 15), 16);
    for (const std::string& log : logs) {
      const auto it = row.find(log);
      out << pad_left(it != row.end() ? std::to_string(it->second) : ".", 16);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace ctwatch::core
